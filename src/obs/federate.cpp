#include "v6class/obs/federate.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "v6class/obs/http.h"
#include "v6class/obs/tsdb.h"

namespace v6::obs::federate {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

double unix_now() {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/// connect() bounded by `timeout`: non-blocking connect, poll for
/// writability, then check SO_ERROR. Returns a connected blocking fd
/// or -1.
int connect_with_timeout(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr && fd < 0; ai = ai->ai_next) {
        const int s = ::socket(ai->ai_family,
                               ai->ai_socktype | SOCK_NONBLOCK,
                               ai->ai_protocol);
        if (s < 0) continue;
        if (::connect(s, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd = s;
            break;
        }
        if (errno != EINPROGRESS) {
            ::close(s);
            continue;
        }
        pollfd pfd{s, POLLOUT, 0};
        if (::poll(&pfd, 1, static_cast<int>(timeout.count())) <= 0) {
            ::close(s);
            continue;
        }
        int soerr = 0;
        socklen_t len = sizeof soerr;
        if (::getsockopt(s, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
            soerr != 0) {
            ::close(s);
            continue;
        }
        fd = s;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return -1;
    // Back to blocking; per-send deadlines come from SO_SNDTIMEO.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    return fd;
}

void set_io_timeout(int fd, std::chrono::milliseconds ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

event_level parse_level(const std::string& name) {
    if (name == "error") return event_level::error;
    if (name == "warn") return event_level::warn;
    return event_level::info;
}

void add_stats(net::tel_decode_stats& into, const net::tel_decode_stats& s) {
    into.frames += s.frames;
    into.short_frame += s.short_frame;
    into.bad_magic += s.bad_magic;
    into.bad_version += s.bad_version;
    into.bad_kind += s.bad_kind;
    into.bad_node += s.bad_node;
    into.truncated += s.truncated;
    into.trailing += s.trailing;
    into.oversized += s.oversized;
    into.seq_gaps += s.seq_gaps;
    into.seq_reorder += s.seq_reorder;
}

}  // namespace

std::string node_label(const std::string& base_label,
                       const std::string& node) {
    if (base_label.empty()) return "node=" + node;
    return base_label + ",node=" + node;
}

std::vector<net::tel_sketch> serialize_seal_sketches(const seal_snapshot& s) {
    std::vector<net::tel_sketch> out;
    if (!s.has_sketches) return out;
    out.reserve(5);
    const auto put_hll = [&out](std::uint8_t id, const hyperloglog& h) {
        net::tel_sketch e;
        e.id = id;
        e.stype = net::kTelSketchTypeHll;
        h.serialize(e.payload);
        out.push_back(std::move(e));
    };
    const auto put_p2 = [&out](std::uint8_t id, const p2_quantile& p) {
        net::tel_sketch e;
        e.id = id;
        e.stype = net::kTelSketchTypeP2;
        p.serialize(e.payload);
        out.push_back(std::move(e));
    };
    put_hll(net::kTelSketchDayAddresses, s.addresses);
    put_hll(net::kTelSketchDay48s, s.p48s);
    put_hll(net::kTelSketchDay64s, s.p64s);
    put_p2(net::kTelSketchHitsP50, s.hits_p50);
    put_p2(net::kTelSketchHitsP99, s.hits_p99);
    return out;
}

// ------------------------------------------------------------- pusher

telemetry_pusher::telemetry_pusher(config cfg)
    : cfg_(std::move(cfg)),
      encoder_(cfg_.node.empty() ? "node" : cfg_.node) {
    if (cfg_.node.empty()) cfg_.node = "node";
}

telemetry_pusher::~telemetry_pusher() {
    std::lock_guard lock(mutex_);
    close_locked();
}

void telemetry_pusher::close_locked() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool telemetry_pusher::ensure_connected_locked() {
    if (fd_ >= 0) return true;
    const int fd = connect_with_timeout(cfg_.host, cfg_.port, cfg_.io_timeout);
    if (fd < 0) return false;
    set_io_timeout(fd, cfg_.io_timeout);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fd_ = fd;
    if (connected_once_) ++reconnects_;
    connected_once_ = true;
    return true;
}

bool telemetry_pusher::send_frame_locked(
    const std::vector<std::uint8_t>& frame) {
    if (!ensure_connected_locked()) {
        ++failures_;
        return false;
    }
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            // A dead peer is discovered here; the next push reconnects.
            close_locked();
            ++failures_;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    ++frames_;
    return true;
}

bool telemetry_pusher::push_status(const net::tel_status& s) {
    std::lock_guard lock(mutex_);
    std::vector<std::uint8_t> frame;
    encoder_.encode_status(s, frame);
    return send_frame_locked(frame);
}

bool telemetry_pusher::push_series(
    const std::vector<net::tel_sample>& samples) {
    if (samples.empty()) return true;
    std::lock_guard lock(mutex_);
    std::vector<std::uint8_t> frame;
    encoder_.encode_series(samples, frame);
    return send_frame_locked(frame);
}

bool telemetry_pusher::push_events(const std::vector<event>& events) {
    if (events.empty()) return true;
    std::vector<net::tel_event> wire;
    wire.reserve(events.size());
    for (const event& e : events) {
        net::tel_event t;
        t.unix_time = e.unix_time;
        t.level = event_level_name(e.level);
        t.kind = e.kind;
        t.message = e.message;
        t.fields = e.fields;
        wire.push_back(std::move(t));
    }
    std::lock_guard lock(mutex_);
    std::vector<std::uint8_t> frame;
    encoder_.encode_events(wire, frame);
    return send_frame_locked(frame);
}

bool telemetry_pusher::push_seal(const seal_snapshot& snap) {
    const std::vector<net::tel_sketch> sketches =
        serialize_seal_sketches(snap);
    std::lock_guard lock(mutex_);
    bool ok = true;
    std::vector<std::uint8_t> frame;
    if (!snap.series.empty()) {
        encoder_.encode_series(snap.series, frame);
        ok = send_frame_locked(frame) && ok;
    }
    if (!sketches.empty()) {
        encoder_.encode_sketches(snap.day, sketches, frame);
        ok = send_frame_locked(frame) && ok;
    }
    return ok;
}

std::uint64_t telemetry_pusher::frames_sent() const {
    std::lock_guard lock(mutex_);
    return frames_;
}

std::uint64_t telemetry_pusher::send_failures() const {
    std::lock_guard lock(mutex_);
    return failures_;
}

std::uint64_t telemetry_pusher::reconnects() const {
    std::lock_guard lock(mutex_);
    return reconnects_;
}

// --------------------------------------------------------- aggregator

telemetry_aggregator::telemetry_aggregator(config cfg)
    : cfg_(std::move(cfg)) {
    if (cfg_.keep_days < 1) cfg_.keep_days = 1;
    if (cfg_.metrics != nullptr) {
        frames_total_ = cfg_.metrics->get_counter(
            "v6fleet_frames_total", {},
            "telemetry frames accepted from all nodes");
        rejected_total_ = cfg_.metrics->get_counter(
            "v6fleet_frames_rejected_total", {},
            "telemetry frames rejected by the V6TEL1 decoder");
        points_total_ = cfg_.metrics->get_counter(
            "v6fleet_points_total", {},
            "series points merged into the fleet tsdb");
        events_total_ = cfg_.metrics->get_counter(
            "v6fleet_events_total", {}, "events forwarded by nodes");
        nodes_gauge_ = cfg_.metrics->get_gauge(
            "v6fleet_nodes", {}, "nodes ever seen by this aggregator");
        stale_gauge_ = cfg_.metrics->get_gauge(
            "v6fleet_nodes_stale", {}, "nodes past the staleness window");
        global_addresses_ = cfg_.metrics->get_dgauge(
            "v6fleet_day_distinct_addresses_estimate", {},
            "exact cross-node HLL union, newest day: distinct addresses");
        global_48s_ = cfg_.metrics->get_dgauge(
            "v6fleet_day_distinct_48s_estimate", {},
            "exact cross-node HLL union, newest day: distinct /48s");
        global_64s_ = cfg_.metrics->get_dgauge(
            "v6fleet_day_distinct_64s_estimate", {},
            "exact cross-node HLL union, newest day: distinct /64s");
    }
}

telemetry_aggregator::~telemetry_aggregator() { stop(); }

bool telemetry_aggregator::start(std::string* error) {
    const auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
        return fail("bind");
    if (::listen(listen_fd_, 16) != 0) return fail("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);
    running_.store(true);
    thread_ = std::thread([this] { rx_loop(); });
    return true;
}

void telemetry_aggregator::stop() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    std::lock_guard lock(mutex_);
    for (connection& c : conns_) {
        add_stats(closed_stats_, c.decoder.stats());
        ::close(c.fd);
    }
    conns_.clear();
    flush_days_locked(true);
    if (cfg_.tsdb != nullptr && tsdb_dirty_) {
        cfg_.tsdb->commit();
        tsdb_dirty_ = false;
    }
}

/// One rx thread: poll on the listener plus every connection (fd list
/// snapshotted under the mutex), then re-acquire the mutex to accept /
/// read / decode / sweep. Client fds are non-blocking, so the held
/// section never waits on a peer — readers (nodes_json, /api/nodes)
/// only ever contend with CPU-bound decode work.
void telemetry_aggregator::rx_loop() {
    std::vector<std::uint8_t> rxbuf(64 * 1024);
    while (running_.load(std::memory_order_relaxed)) {
        std::vector<pollfd> pfds;
        {
            std::lock_guard lock(mutex_);
            pfds.reserve(conns_.size() + 1);
            pfds.push_back({listen_fd_, POLLIN, 0});
            for (const connection& c : conns_)
                pfds.push_back({c.fd, POLLIN, 0});
        }
        const int ready =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
        if (!running_.load(std::memory_order_relaxed)) break;

        std::lock_guard lock(mutex_);
        if (ready > 0 && (pfds[0].revents & POLLIN) != 0) {
            for (;;) {
                const int fd =
                    ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
                if (fd < 0) break;
                conns_.push_back(connection{fd, {}, {}});
            }
        }

        std::vector<std::size_t> dead;
        // pfds indexes a snapshot: only positions that still match the
        // live conns_ prefix are read (accepts above only appended).
        const std::size_t scan =
            std::min(conns_.size(), pfds.size() > 0 ? pfds.size() - 1 : 0);
        for (std::size_t i = 0; ready > 0 && i < scan; ++i) {
            if ((pfds[i + 1].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
                continue;
            connection& c = conns_[i];
            const ssize_t n = ::recv(c.fd, rxbuf.data(), rxbuf.size(), 0);
            if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                           errno != EINTR)) {
                dead.push_back(i);
                continue;
            }
            if (n < 0) continue;
            c.buffer.insert(c.buffer.end(), rxbuf.data(), rxbuf.data() + n);
            net::tel_frame frame;
            bool fatal = false;
            for (;;) {
                const net::tel_pull r = c.decoder.pull(c.buffer, frame);
                if (r == net::tel_pull::frame) {
                    ingest_frame_locked(frame);
                    continue;
                }
                if (r == net::tel_pull::reject) {
                    rejected_total_.inc();
                    continue;
                }
                if (r == net::tel_pull::fatal) fatal = true;
                break;
            }
            if (fatal) dead.push_back(i);
        }
        for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
            connection& c = conns_[*it];
            add_stats(closed_stats_, c.decoder.stats());
            ::close(c.fd);
            conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(*it));
        }

        sweep_locked(std::chrono::steady_clock::now());
        if (cfg_.tsdb != nullptr && tsdb_dirty_) {
            cfg_.tsdb->commit();
            tsdb_dirty_ = false;
        }
    }
}

telemetry_aggregator::node_state& telemetry_aggregator::touch_node_locked(
    const std::string& name) {
    auto it = nodes_.find(name);
    if (it == nodes_.end()) {
        node_state state;
        state.status.name = name;
        state.was_fresh = true;
        state.status.fresh = true;
        if (cfg_.metrics != nullptr) {
            state.up = cfg_.metrics->get_gauge(
                "v6fleet_node_up", {{"node", name}},
                "1 while the node pushed within the staleness window");
            state.up.set(1);
        }
        it = nodes_.emplace(name, std::move(state)).first;
        if (cfg_.events != nullptr)
            cfg_.events->log(event_level::info, "fleet",
                             "node joined the fleet",
                             {{"node", event_field_string(name)}});
    }
    return it->second;
}

void telemetry_aggregator::ingest_frame_locked(const net::tel_frame& frame) {
    frames_total_.inc();
    node_state& n = touch_node_locked(frame.node);
    n.last_seen = std::chrono::steady_clock::now();
    n.status.last_seen_unix = unix_now();
    ++n.status.frames;
    // Node-level sequence accounting: frames are self-contained, so a
    // node reconnecting (new connection, fresh decoder) keeps one gap
    // history here.
    if (n.seen_any && frame.seq > n.high_seq + 1)
        n.status.seq_gaps += frame.seq - n.high_seq - 1;
    if (!n.seen_any || frame.seq > n.high_seq) n.high_seq = frame.seq;
    n.seen_any = true;

    switch (frame.kind) {
        case net::kTelKindStatus:
            n.status.records = frame.status.records;
            n.status.open_day = frame.status.open_day;
            n.status.sealed_day =
                std::max(n.status.sealed_day, frame.status.sealed_day);
            break;
        case net::kTelKindSeries:
            if (cfg_.tsdb != nullptr && !frame.samples.empty()) {
                for (const net::tel_sample& s : frame.samples)
                    cfg_.tsdb->append(s.name,
                                      node_label(s.label, frame.node), s.ts,
                                      s.value);
                tsdb_dirty_ = true;
            }
            points_total_.inc(frame.samples.size());
            break;
        case net::kTelKindSketches: {
            n.status.sealed_day =
                std::max(n.status.sealed_day, frame.sketch_day);
            day_state& d = days_[frame.sketch_day];
            for (const net::tel_sketch& s : frame.sketches) {
                if (s.stype != net::kTelSketchTypeHll) continue;
                if (s.id < net::kTelSketchDayAddresses ||
                    s.id > net::kTelSketchDay64s)
                    continue;
                auto hll = hyperloglog::deserialize(s.payload.data(),
                                                    s.payload.size());
                if (!hll) continue;
                const std::size_t slot = s.id - net::kTelSketchDayAddresses;
                hyperloglog& target = slot == 0   ? d.addresses
                                      : slot == 1 ? d.p48s
                                                  : d.p64s;
                if (!d.have[slot]) {
                    target = std::move(*hll);
                    d.have[slot] = true;
                } else {
                    // Register-wise max: exact union, idempotent under
                    // duplicated pushes after a reconnect.
                    target.merge(*hll);
                }
            }
            while (days_.size() > static_cast<std::size_t>(cfg_.keep_days))
                days_.erase(days_.begin());
            flush_days_locked(false);
            if (!days_.empty()) {
                const day_state& newest = days_.rbegin()->second;
                if (newest.have[0])
                    global_addresses_.set(newest.addresses.estimate());
                if (newest.have[1]) global_48s_.set(newest.p48s.estimate());
                if (newest.have[2]) global_64s_.set(newest.p64s.estimate());
            }
            break;
        }
        case net::kTelKindEvents:
            events_total_.inc(frame.events.size());
            if (cfg_.events != nullptr) {
                for (const net::tel_event& e : frame.events) {
                    event_fields fields = e.fields;
                    fields.emplace_back("node",
                                        event_field_string(frame.node));
                    cfg_.events->log(parse_level(e.level), e.kind, e.message,
                                     std::move(fields));
                }
            }
            break;
        default:
            break;
    }
    update_fleet_gauges_locked();
}

void telemetry_aggregator::sweep_locked(
    std::chrono::steady_clock::time_point now) {
    for (auto& [name, n] : nodes_) {
        const bool fresh = (now - n.last_seen) <= cfg_.staleness;
        n.status.fresh = fresh;
        n.status.age_seconds =
            std::chrono::duration<double>(now - n.last_seen).count();
        if (fresh != n.was_fresh) {
            n.was_fresh = fresh;
            n.up.set(fresh ? 1 : 0);
            if (cfg_.events != nullptr)
                cfg_.events->log(
                    fresh ? event_level::info : event_level::warn, "fleet",
                    fresh ? "node recovered" : "node went stale",
                    {{"node", event_field_string(name)},
                     {"age_seconds",
                      event_field_number(n.status.age_seconds)}});
        }
    }
    update_fleet_gauges_locked();
}

void telemetry_aggregator::update_fleet_gauges_locked() {
    std::int64_t stale = 0;
    for (const auto& [name, n] : nodes_)
        if (!n.status.fresh) ++stale;
    nodes_gauge_.set(static_cast<std::int64_t>(nodes_.size()));
    stale_gauge_.set(stale);
}

/// Persist global estimates once per day: the tsdb drops re-appends at
/// the same timestamp (the re-anchor contract), so a day's point is
/// written only after its union has settled — when a newer day appears
/// (every node seals forward) or at stop(). A laggard pushing an
/// already-flushed day still merges into the in-memory union (and
/// /api/nodes); only the stored chart point keeps its first-flush
/// value.
void telemetry_aggregator::flush_days_locked(bool include_newest) {
    if (cfg_.tsdb == nullptr || days_.empty()) return;
    const std::int64_t newest = days_.rbegin()->first;
    static const char* kNames[3] = {
        "v6fleet_day_distinct_addresses_estimate",
        "v6fleet_day_distinct_48s_estimate",
        "v6fleet_day_distinct_64s_estimate",
    };
    for (auto& [day, d] : days_) {
        if (d.flushed) continue;
        if (day == newest && !include_newest) continue;
        const hyperloglog* sketches[3] = {&d.addresses, &d.p48s, &d.p64s};
        for (int i = 0; i < 3; ++i)
            if (d.have[i])
                cfg_.tsdb->append(kNames[i], "", day,
                                  sketches[i]->estimate());
        d.flushed = true;
        tsdb_dirty_ = true;
    }
}

std::vector<node_status> telemetry_aggregator::nodes() const {
    std::lock_guard lock(mutex_);
    std::vector<node_status> out;
    out.reserve(nodes_.size());
    for (const auto& [name, n] : nodes_) out.push_back(n.status);
    return out;
}

std::string telemetry_aggregator::nodes_json() const {
    std::string out = "{\"nodes\":[";
    {
        std::lock_guard lock(mutex_);
        bool first = true;
        for (const auto& [name, n] : nodes_) {
            if (!first) out += ',';
            first = false;
            const node_status& s = n.status;
            out += "{\"node\":\"" + json_escape(s.name) + "\"";
            out += ",\"fresh\":" + std::string(s.fresh ? "true" : "false");
            out += ",\"age_seconds\":" + format_double(s.age_seconds);
            out += ",\"last_seen\":" + format_double(s.last_seen_unix);
            out += ",\"frames\":" + std::to_string(s.frames);
            out += ",\"records\":" + std::to_string(s.records);
            out += ",\"open_day\":" + std::to_string(s.open_day);
            out += ",\"sealed_day\":" + std::to_string(s.sealed_day);
            out += ",\"seq_gaps\":" + std::to_string(s.seq_gaps);
            out += "}";
        }
        out += "]";
        if (!days_.empty()) {
            const auto& [day, d] = *days_.rbegin();
            out += ",\"day\":" + std::to_string(day);
            out += ",\"global\":{";
            out += "\"distinct_addresses\":" +
                   (d.have[0] ? format_double(d.addresses.estimate())
                              : std::string("null"));
            out += ",\"distinct_48s\":" +
                   (d.have[1] ? format_double(d.p48s.estimate())
                              : std::string("null"));
            out += ",\"distinct_64s\":" +
                   (d.have[2] ? format_double(d.p64s.estimate())
                              : std::string("null"));
            out += "}";
        } else {
            out += ",\"day\":-1,\"global\":null";
        }
        net::tel_decode_stats stats = closed_stats_;
        for (const connection& c : conns_) add_stats(stats, c.decoder.stats());
        out += ",\"codec\":{\"frames\":" + std::to_string(stats.frames);
        out += ",\"rejected\":" + std::to_string(stats.rejected());
        out += ",\"seq_gaps\":" + std::to_string(stats.seq_gaps);
        out += "}}";
    }
    return out;
}

std::optional<hyperloglog> telemetry_aggregator::global_sketch(
    std::int64_t day, std::uint8_t id) const {
    if (id < net::kTelSketchDayAddresses || id > net::kTelSketchDay64s)
        return std::nullopt;
    std::lock_guard lock(mutex_);
    const auto it = days_.find(day);
    if (it == days_.end()) return std::nullopt;
    const std::size_t slot = id - net::kTelSketchDayAddresses;
    if (!it->second.have[slot]) return std::nullopt;
    switch (slot) {
        case 0: return it->second.addresses;
        case 1: return it->second.p48s;
        default: return it->second.p64s;
    }
}

std::optional<double> telemetry_aggregator::global_estimate(
    std::int64_t day, std::uint8_t id) const {
    const auto sketch = global_sketch(day, id);
    if (!sketch) return std::nullopt;
    return sketch->estimate();
}

std::int64_t telemetry_aggregator::newest_day() const {
    std::lock_guard lock(mutex_);
    return days_.empty() ? -1 : days_.rbegin()->first;
}

net::tel_decode_stats telemetry_aggregator::decode_stats() const {
    std::lock_guard lock(mutex_);
    net::tel_decode_stats stats = closed_stats_;
    for (const connection& c : conns_) add_stats(stats, c.decoder.stats());
    return stats;
}

std::optional<double> telemetry_aggregator::sample(
    const std::string& series, const std::string& label) const {
    std::lock_guard lock(mutex_);
    if (series == "v6fleet_nodes") return static_cast<double>(nodes_.size());
    if (series == "v6fleet_nodes_stale") {
        std::int64_t stale = 0;
        for (const auto& [name, n] : nodes_)
            if (!n.status.fresh) ++stale;
        return static_cast<double>(stale);
    }
    if (series == "v6fleet_node_up") {
        if (label.rfind("node=", 0) != 0) return std::nullopt;
        const auto it = nodes_.find(label.substr(5));
        if (it == nodes_.end() || !it->second.status.fresh)
            return std::nullopt;  // absent: the alert's missing sample
        return 1.0;
    }
    return std::nullopt;
}

void telemetry_aggregator::register_http(metrics_server& server) {
    server.add_handler("/api/nodes", [this](const query_params&) {
        http_reply reply;
        reply.body = nodes_json();
        return reply;
    });
}

}  // namespace v6::obs::federate
