#include "v6class/obs/dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace v6::obs {

namespace {

/// HTML text escaping for the few metacharacters that matter.
std::string html_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string format_uptime(double seconds) {
    char buf[64];
    if (seconds < 120) {
        std::snprintf(buf, sizeof buf, "%.0fs", seconds);
    } else if (seconds < 7200) {
        std::snprintf(buf, sizeof buf, "%.0fm%02.0fs", seconds / 60,
                      std::fmod(seconds, 60));
    } else {
        std::snprintf(buf, sizeof buf, "%.0fh%02.0fm", seconds / 3600,
                      std::fmod(seconds, 3600) / 60);
    }
    return buf;
}

const char* kStyle = R"(
 body{font:14px/1.45 system-ui,sans-serif;margin:0;background:#11151a;color:#d7dde4}
 header{display:flex;align-items:baseline;gap:1em;padding:12px 20px;border-bottom:1px solid #2a313a}
 header h1{font-size:17px;margin:0}
 .status{padding:1px 8px;border-radius:9px;font-size:12px;background:#1f4d2e;color:#9fe0b2}
 .status.draining{background:#5a4214;color:#f0cf8a}
 .status.starting{background:#203a55;color:#9cc6f0}
 header nav{margin-left:auto;display:flex;gap:12px;font-size:12px}
 header nav a{color:#5aa9e6;text-decoration:none}
 header nav a:hover{text-decoration:underline}
 .stats{display:flex;flex-wrap:wrap;gap:20px;padding:10px 20px;color:#9aa7b4}
 .stats b{color:#d7dde4;font-variant-numeric:tabular-nums}
 .grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(240px,1fr));gap:12px;padding:8px 20px 20px}
 .tile{background:#171c23;border:1px solid #2a313a;border-radius:8px;padding:10px 12px}
 .tile.alarmed{border-color:#a4502e}
 .tile .name{font-size:12px;color:#9aa7b4}
 .tile .val{font-size:20px;font-variant-numeric:tabular-nums}
 .tile .help{font-size:11px;color:#6d7884}
 .tile svg{display:block;margin-top:6px}
 .spark{stroke:#5aa9e6;fill:none;stroke-width:1.5}
 .alarmed .spark{stroke:#e6835a}
 .sparkfill{fill:#5aa9e622;stroke:none}
 .alarmed .sparkfill{fill:#e6835a22}
 h2{font-size:13px;color:#9aa7b4;margin:4px 20px}
 table{border-collapse:collapse;margin:0 20px 24px;font-size:13px}
 td,th{padding:3px 14px 3px 0;text-align:left;vertical-align:top}
 th{color:#6d7884;font-weight:normal}
 .lvl-warn{color:#f0cf8a}.lvl-error{color:#f09a8a}.lvl-info{color:#9cc6f0}
 .fields{color:#6d7884;font-family:ui-monospace,monospace;font-size:12px}
 .empty{color:#6d7884;margin:0 20px 24px}
)";

}  // namespace

std::string dashboard_value(double v) {
    char buf[48];
    if (std::abs(v) < 1e15 &&
        v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

std::string svg_sparkline(const std::vector<double>& values, unsigned width,
                          unsigned height) {
    char head[160];
    std::snprintf(head, sizeof head,
                  "<svg width=\"%u\" height=\"%u\" viewBox=\"0 0 %u %u\" "
                  "preserveAspectRatio=\"none\">",
                  width, height, width, height);
    std::string out = head;
    const double pad = 2.0;
    double lo = 0.0, hi = 1.0;
    if (!values.empty()) {
        lo = *std::min_element(values.begin(), values.end());
        hi = *std::max_element(values.begin(), values.end());
    }
    if (hi - lo < 1e-12) {  // flat (or empty) series: centred line
        lo -= 1.0;
        hi += 1.0;
    }
    const std::size_t n = std::max<std::size_t>(values.size(), 2);
    auto x_of = [&](std::size_t i) {
        return pad + (width - 2 * pad) * static_cast<double>(i) /
                         static_cast<double>(n - 1);
    };
    auto y_of = [&](double v) {
        return pad + (height - 2 * pad) * (1.0 - (v - lo) / (hi - lo));
    };
    std::string points;
    char pt[48];
    if (values.empty()) {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(0),
                      y_of(0.0), x_of(1), y_of(0.0));
        points = pt;
    } else if (values.size() == 1) {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(0),
                      y_of(values[0]), x_of(1), y_of(values[0]));
        points = pt;
    } else {
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::snprintf(pt, sizeof pt, "%s%.1f,%.1f", i ? " " : "", x_of(i),
                          y_of(values[i]));
            points += pt;
        }
    }
    // Soft area fill under the line, then the line itself.
    char base[48];
    std::snprintf(base, sizeof base, " %.1f,%u %.1f,%u",
                  x_of(values.empty() ? 1 : std::max<std::size_t>(values.size(), 2) - 1),
                  height, x_of(0), height);
    out += "<polygon class=\"sparkfill\" points=\"" + points + base + "\"/>";
    out += "<polyline class=\"spark\" points=\"" + points + "\"/>";
    out += "</svg>";
    return out;
}

std::string render_dashboard(const dashboard_model& model) {
    std::string out = "<!doctype html><html><head><meta charset=\"utf-8\">";
    if (model.refresh_seconds)
        out += "<meta http-equiv=\"refresh\" content=\"" +
               std::to_string(model.refresh_seconds) + "\">";
    out += "<title>" + html_escape(model.title) + "</title><style>";
    out += kStyle;
    out += "</style></head><body>";

    out += "<header><h1>" + html_escape(model.title) + "</h1>";
    out += "<span class=\"status " + html_escape(model.status) + "\">" +
           html_escape(model.status) + "</span>";
    out += "<span class=\"stats\">up " + format_uptime(model.uptime_seconds) +
           "</span>";
    if (!model.links.empty()) {
        out += "<nav>";
        for (const dashboard_link& l : model.links)
            out += "<a href=\"" + html_escape(l.href) + "\">" +
                   html_escape(l.label) + "</a>";
        out += "</nav>";
    }
    out += "</header>";

    out += "<div class=\"stats\">";
    for (const dashboard_stat& s : model.stats)
        out += "<span>" + html_escape(s.name) + " <b>" +
               html_escape(s.value) + "</b></span>";
    out += "</div>";

    out += "<div class=\"grid\">";
    for (const dashboard_series& s : model.series) {
        out += s.alarmed ? "<div class=\"tile alarmed\">" : "<div class=\"tile\">";
        out += "<div class=\"name\">" + html_escape(s.name) + "</div>";
        out += "<div class=\"val\">" + dashboard_value(s.current) + "</div>";
        out += svg_sparkline(s.history, 216, 36);
        out += "<div class=\"help\">" + html_escape(s.help) + "</div>";
        out += "</div>";
    }
    out += "</div>";

    out += "<h2>recent events</h2>";
    if (model.events.empty()) {
        out += "<p class=\"empty\">none</p>";
    } else {
        out += "<table><tr><th>#</th><th>level</th><th>kind</th>"
               "<th>message</th><th>fields</th></tr>";
        // Newest first: what an operator glances at.
        for (auto it = model.events.rbegin(); it != model.events.rend(); ++it) {
            const event& e = *it;
            out += "<tr><td>" + std::to_string(e.seq) + "</td>";
            out += std::string("<td class=\"lvl-") + event_level_name(e.level) +
                   "\">" + event_level_name(e.level) + "</td>";
            out += "<td>" + html_escape(e.kind) + "</td>";
            out += "<td>" + html_escape(e.message) + "</td><td class=\"fields\">";
            for (std::size_t i = 0; i < e.fields.size(); ++i) {
                if (i) out += " ";
                out += html_escape(e.fields[i].first) + "=" +
                       html_escape(e.fields[i].second);
            }
            out += "</td></tr>";
        }
        out += "</table>";
    }
    out += "</body></html>";
    return out;
}

}  // namespace v6::obs
