#include "v6class/obs/dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace v6::obs {

namespace {

/// HTML text escaping for the few metacharacters that matter.
std::string html_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string format_uptime(double seconds) {
    char buf[64];
    if (seconds < 120) {
        std::snprintf(buf, sizeof buf, "%.0fs", seconds);
    } else if (seconds < 7200) {
        std::snprintf(buf, sizeof buf, "%.0fm%02.0fs", seconds / 60,
                      std::fmod(seconds, 60));
    } else {
        std::snprintf(buf, sizeof buf, "%.0fh%02.0fm", seconds / 3600,
                      std::fmod(seconds, 3600) / 60);
    }
    return buf;
}

const char* kStyle = R"(
 body{font:14px/1.45 system-ui,sans-serif;margin:0;background:#11151a;color:#d7dde4}
 header{display:flex;align-items:baseline;gap:1em;padding:12px 20px;border-bottom:1px solid #2a313a}
 header h1{font-size:17px;margin:0}
 .status{padding:1px 8px;border-radius:9px;font-size:12px;background:#1f4d2e;color:#9fe0b2}
 .status.draining{background:#5a4214;color:#f0cf8a}
 .status.starting{background:#203a55;color:#9cc6f0}
 header nav{margin-left:auto;display:flex;gap:12px;font-size:12px}
 header nav a{color:#5aa9e6;text-decoration:none}
 header nav a:hover{text-decoration:underline}
 .stats{display:flex;flex-wrap:wrap;gap:20px;padding:10px 20px;color:#9aa7b4}
 .stats b{color:#d7dde4;font-variant-numeric:tabular-nums}
 .stats.runtime{padding-top:0;font-size:12px}
 .stats.runtime>span:first-child{color:#64748b;text-transform:uppercase;letter-spacing:.08em}
 .grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(240px,1fr));gap:12px;padding:8px 20px 20px}
 .tile{background:#171c23;border:1px solid #2a313a;border-radius:8px;padding:10px 12px}
 .tile.alarmed{border-color:#a4502e}
 .tile .name{font-size:12px;color:#9aa7b4}
 .tile .val{font-size:20px;font-variant-numeric:tabular-nums}
 .tile .help{font-size:11px;color:#6d7884}
 .tile svg{display:block;margin-top:6px}
 .spark{stroke:#5aa9e6;fill:none;stroke-width:1.5}
 .alarmed .spark{stroke:#e6835a}
 .sparkfill{fill:#5aa9e622;stroke:none}
 .alarmed .sparkfill{fill:#e6835a22}
 h2{font-size:13px;color:#9aa7b4;margin:4px 20px}
 table{border-collapse:collapse;margin:0 20px 24px;font-size:13px}
 td,th{padding:3px 14px 3px 0;text-align:left;vertical-align:top}
 th{color:#6d7884;font-weight:normal}
 .lvl-warn{color:#f0cf8a}.lvl-error{color:#f09a8a}.lvl-info{color:#9cc6f0}
 .fields{color:#6d7884;font-family:ui-monospace,monospace;font-size:12px}
 .empty{color:#6d7884;margin:0 20px 24px}
 .charts{display:grid;grid-template-columns:repeat(auto-fill,minmax(460px,1fr));gap:12px;padding:8px 20px 20px}
 .chartlabel{fill:#6d7884;font:10px ui-monospace,monospace}
 .node-fresh{color:#9fe0b2}.node-stale{color:#f09a8a;font-weight:bold}
 .alert-firing{color:#f09a8a;font-weight:bold}
 .alert-pending{color:#f0cf8a}
 .alert-resolved{color:#9fe0b2}
 .alert-inactive{color:#6d7884}
)";

}  // namespace

std::string dashboard_value(double v) {
    char buf[48];
    if (std::abs(v) < 1e15 &&
        v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

std::string svg_sparkline(const std::vector<double>& values, unsigned width,
                          unsigned height) {
    char head[160];
    std::snprintf(head, sizeof head,
                  "<svg width=\"%u\" height=\"%u\" viewBox=\"0 0 %u %u\" "
                  "preserveAspectRatio=\"none\">",
                  width, height, width, height);
    std::string out = head;
    const double pad = 2.0;
    double lo = 0.0, hi = 1.0;
    if (!values.empty()) {
        lo = *std::min_element(values.begin(), values.end());
        hi = *std::max_element(values.begin(), values.end());
    }
    if (hi - lo < 1e-12) {  // flat (or empty) series: centred line
        lo -= 1.0;
        hi += 1.0;
    }
    const std::size_t n = std::max<std::size_t>(values.size(), 2);
    auto x_of = [&](std::size_t i) {
        return pad + (width - 2 * pad) * static_cast<double>(i) /
                         static_cast<double>(n - 1);
    };
    auto y_of = [&](double v) {
        return pad + (height - 2 * pad) * (1.0 - (v - lo) / (hi - lo));
    };
    std::string points;
    char pt[48];
    if (values.empty()) {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(0),
                      y_of(0.0), x_of(1), y_of(0.0));
        points = pt;
    } else if (values.size() == 1) {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(0),
                      y_of(values[0]), x_of(1), y_of(values[0]));
        points = pt;
    } else {
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::snprintf(pt, sizeof pt, "%s%.1f,%.1f", i ? " " : "", x_of(i),
                          y_of(values[i]));
            points += pt;
        }
    }
    // Soft area fill under the line, then the line itself.
    char base[48];
    std::snprintf(base, sizeof base, " %.1f,%u %.1f,%u",
                  x_of(values.empty() ? 1 : std::max<std::size_t>(values.size(), 2) - 1),
                  height, x_of(0), height);
    out += "<polygon class=\"sparkfill\" points=\"" + points + base + "\"/>";
    out += "<polyline class=\"spark\" points=\"" + points + "\"/>";
    out += "</svg>";
    return out;
}

std::string svg_timechart(const std::vector<chart_point>& points,
                          unsigned width, unsigned height) {
    char head[160];
    std::snprintf(head, sizeof head,
                  "<svg width=\"%u\" height=\"%u\" viewBox=\"0 0 %u %u\" "
                  "preserveAspectRatio=\"none\">",
                  width, height, width, height);
    std::string out = head;
    const double pad = 3.0, label_h = 12.0;
    double lo = 0.0, hi = 1.0;
    std::int64_t t0 = 0, t1 = 1;
    if (!points.empty()) {
        lo = hi = points.front().value;
        t0 = points.front().ts;
        t1 = points.back().ts;
        for (const chart_point& p : points) {
            lo = std::min(lo, p.value);
            hi = std::max(hi, p.value);
        }
    }
    if (hi - lo < 1e-12) {
        lo -= 1.0;
        hi += 1.0;
    }
    if (t1 <= t0) t1 = t0 + 1;
    const double span = static_cast<double>(t1 - t0);
    auto x_of = [&](std::int64_t ts) {
        return pad + (width - 2 * pad) * static_cast<double>(ts - t0) / span;
    };
    auto y_of = [&](double v) {
        return pad +
               (height - 2 * pad - label_h) * (1.0 - (v - lo) / (hi - lo));
    };
    std::string poly;
    char pt[48];
    if (points.size() == 1) {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(t0),
                      y_of(points[0].value), x_of(t1), y_of(points[0].value));
        poly = pt;
    } else if (!points.empty()) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::snprintf(pt, sizeof pt, "%s%.1f,%.1f", i ? " " : "",
                          x_of(points[i].ts), y_of(points[i].value));
            poly += pt;
        }
    } else {
        std::snprintf(pt, sizeof pt, "%.1f,%.1f %.1f,%.1f", x_of(t0), y_of(0.0),
                      x_of(t1), y_of(0.0));
        poly = pt;
    }
    char base[48];
    const double floor_y = height - label_h;
    std::snprintf(base, sizeof base, " %.1f,%.1f %.1f,%.1f", x_of(t1), floor_y,
                  x_of(t0), floor_y);
    out += "<polygon class=\"sparkfill\" points=\"" + poly + base + "\"/>";
    out += "<polyline class=\"spark\" points=\"" + poly + "\"/>";
    // Corner labels: value range on the left edge, ts range along the
    // bottom. (No preserveAspectRatio distortion worry at this size.)
    char label[160];
    std::snprintf(label, sizeof label,
                  "<text class=\"chartlabel\" x=\"%.0f\" y=\"%.0f\">%s .. %s"
                  "</text>",
                  pad, static_cast<double>(height) - 2,
                  std::to_string(t0).c_str(), std::to_string(t1).c_str());
    out += label;
    std::snprintf(label, sizeof label,
                  "<text class=\"chartlabel\" x=\"%u\" y=\"%.0f\" "
                  "text-anchor=\"end\">%s .. %s</text>",
                  width - 4, static_cast<double>(height) - 2,
                  dashboard_value(lo).c_str(), dashboard_value(hi).c_str());
    out += label;
    out += "</svg>";
    return out;
}

std::string render_dashboard(const dashboard_model& model) {
    std::string out = "<!doctype html><html><head><meta charset=\"utf-8\">";
    if (model.refresh_seconds)
        out += "<meta http-equiv=\"refresh\" content=\"" +
               std::to_string(model.refresh_seconds) + "\">";
    out += "<title>" + html_escape(model.title) + "</title><style>";
    out += kStyle;
    out += "</style></head><body>";

    out += "<header><h1>" + html_escape(model.title) + "</h1>";
    out += "<span class=\"status " + html_escape(model.status) + "\">" +
           html_escape(model.status) + "</span>";
    out += "<span class=\"stats\">up " + format_uptime(model.uptime_seconds) +
           "</span>";
    if (!model.links.empty()) {
        out += "<nav>";
        for (const dashboard_link& l : model.links)
            out += "<a href=\"" + html_escape(l.href) + "\">" +
                   html_escape(l.label) + "</a>";
        out += "</nav>";
    }
    out += "</header>";

    out += "<div class=\"stats\">";
    for (const dashboard_stat& s : model.stats)
        out += "<span>" + html_escape(s.name) + " <b>" +
               html_escape(s.value) + "</b></span>";
    out += "</div>";

    if (!model.runtime.empty()) {
        // Process-level runtime facts (SIMD dispatch level, RSS, arena
        // occupancy, PMU availability) — one compact row, same style as
        // the headline stats but visually separated from the domain
        // counters above.
        out += "<div class=\"stats runtime\"><span>runtime</span>";
        for (const dashboard_stat& s : model.runtime)
            out += "<span>" + html_escape(s.name) + " <b>" +
                   html_escape(s.value) + "</b></span>";
        out += "</div>";
    }

    out += "<div class=\"grid\">";
    for (const dashboard_series& s : model.series) {
        out += s.alarmed ? "<div class=\"tile alarmed\">" : "<div class=\"tile\">";
        out += "<div class=\"name\">" + html_escape(s.name) + "</div>";
        out += "<div class=\"val\">" + dashboard_value(s.current) + "</div>";
        out += svg_sparkline(s.history, 216, 36);
        out += "<div class=\"help\">" + html_escape(s.help) + "</div>";
        out += "</div>";
    }
    out += "</div>";

    if (!model.charts.empty()) {
        out += "<h2>history (flight recorder)</h2><div class=\"charts\">";
        for (const dashboard_chart& c : model.charts) {
            out += "<div class=\"tile\">";
            out += "<div class=\"name\">" + html_escape(c.name) + "</div>";
            out += "<div class=\"val\">" +
                   (c.points.empty()
                        ? std::string("&ndash;")
                        : dashboard_value(c.points.back().value)) +
                   "</div>";
            out += svg_timechart(c.points, 452, 64);
            out += "<div class=\"help\">" + html_escape(c.help) + "</div>";
            out += "</div>";
        }
        out += "</div>";
    }

    if (model.show_nodes || !model.nodes.empty()) {
        out += "<h2>fleet</h2>";
        if (model.nodes.empty()) {
            out += "<p class=\"empty\">no collectors have pushed yet</p>";
        } else {
            out += "<table><tr><th>node</th><th>state</th><th>lag</th>"
                   "<th>sealed day</th><th>records</th><th>frames</th>"
                   "<th>detail</th></tr>";
            for (const dashboard_node& n : model.nodes) {
                out += "<tr><td>" + html_escape(n.name) + "</td>";
                out += n.fresh ? "<td class=\"node-fresh\">up</td>"
                               : "<td class=\"node-stale\">stale</td>";
                out += "<td>" + format_uptime(n.age_seconds) + "</td>";
                out += "<td>" +
                       (n.sealed_day < 0 ? std::string("&ndash;")
                                         : std::to_string(n.sealed_day)) +
                       "</td>";
                out += "<td>" + std::to_string(n.records) + "</td>";
                out += "<td>" + std::to_string(n.frames) + "</td>";
                out += "<td class=\"fields\">" + html_escape(n.detail) +
                       "</td></tr>";
            }
            out += "</table>";
        }
    }

    if (model.show_alerts || !model.alerts.empty()) {
        out += "<h2>alerts</h2>";
        if (model.alerts.empty()) {
            out += "<p class=\"empty\">no rules loaded</p>";
        } else {
            out += "<table><tr><th>rule</th><th>state</th><th>value</th>"
                   "<th>definition</th></tr>";
            for (const dashboard_alert& a : model.alerts) {
                out += "<tr><td>" + html_escape(a.name) + "</td>";
                out += "<td class=\"alert-" + html_escape(a.state) + "\">" +
                       html_escape(a.state) + "</td>";
                out += "<td>" +
                       (a.has_value ? dashboard_value(a.value)
                                    : std::string("&ndash;")) +
                       "</td>";
                out += "<td class=\"fields\">" + html_escape(a.detail) +
                       "</td></tr>";
            }
            out += "</table>";
        }
    }

    out += "<h2>recent events</h2>";
    if (model.events.empty()) {
        out += "<p class=\"empty\">none</p>";
    } else {
        out += "<table><tr><th>#</th><th>level</th><th>kind</th>"
               "<th>message</th><th>fields</th></tr>";
        // Newest first: what an operator glances at.
        for (auto it = model.events.rbegin(); it != model.events.rend(); ++it) {
            const event& e = *it;
            out += "<tr><td>" + std::to_string(e.seq) + "</td>";
            out += std::string("<td class=\"lvl-") + event_level_name(e.level) +
                   "\">" + event_level_name(e.level) + "</td>";
            out += "<td>" + html_escape(e.kind) + "</td>";
            out += "<td>" + html_escape(e.message) + "</td><td class=\"fields\">";
            for (std::size_t i = 0; i < e.fields.size(); ++i) {
                if (i) out += " ";
                out += html_escape(e.fields[i].first) + "=" +
                       html_escape(e.fields[i].second);
            }
            out += "</td></tr>";
        }
        out += "</table>";
    }
    out += "</body></html>";
    return out;
}

}  // namespace v6::obs
