#include "v6class/obs/introspect.h"

#include <cstdio>

#include "v6class/obs/metrics.h"
#include "v6class/obs/pmu.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace v6::obs {

std::uint64_t process_rss_bytes() {
#if defined(__linux__)
    // statm field 2 is resident pages; cheaper to parse than status.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (!f) return 0;
    unsigned long long size = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2) return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
    return 0;
#endif
}

void update_process_gauges(registry& reg) {
    // Re-interning per call keeps this correct for any registry; the
    // call sites (day seals, final dumps) are far off the hot path.
    reg.get_gauge("v6_process_rss_bytes", {},
                  "Resident set size of this process in bytes")
        .set(static_cast<std::int64_t>(process_rss_bytes()));
    // Hardware-counter availability and per-site derived rates ride
    // the same cadence so /metrics and dumps always carry them.
    pmu::export_gauges(reg);
}

}  // namespace v6::obs
