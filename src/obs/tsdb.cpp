#include "v6class/obs/tsdb.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include "v6class/obs/http.h"
#include "v6class/obs/pmu.h"

namespace v6::obs::tsdb {

namespace {

// Frames larger than this are rejected as corruption during recovery:
// no writer here produces one (a point batch is bounded by the commit
// buffer, an event by the log's own limits), so an absurd length is a
// torn or garbage header, not data.
constexpr std::uint32_t kMaxFrame = 1u << 24;

constexpr std::uint8_t kKindDef = 1;
constexpr std::uint8_t kKindPoints = 2;
constexpr std::uint8_t kKindEvent = 3;

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) {
    put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(out, bits);
}

/// Bounds-checked little-endian reader over one decoded payload.
struct reader {
    const std::uint8_t* p;
    std::size_t left;

    bool u8(std::uint8_t& v) {
        if (left < 1) return false;
        v = *p;
        ++p;
        --left;
        return true;
    }
    bool u16(std::uint16_t& v) {
        if (left < 2) return false;
        v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
        p += 2;
        left -= 2;
        return true;
    }
    bool u32(std::uint32_t& v) {
        if (left < 4) return false;
        v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        p += 4;
        left -= 4;
        return true;
    }
    bool u64(std::uint64_t& v) {
        if (left < 8) return false;
        v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        left -= 8;
        return true;
    }
    bool i64(std::int64_t& v) {
        std::uint64_t u;
        if (!u64(u)) return false;
        v = static_cast<std::int64_t>(u);
        return true;
    }
    bool f64(double& v) {
        std::uint64_t bits;
        if (!u64(bits)) return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }
    bool str(std::string& out, std::size_t n) {
        if (left < n) return false;
        out.assign(reinterpret_cast<const char*>(p), n);
        p += n;
        left -= n;
        return true;
    }
};

bool write_all(int fd, const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

event_level level_of(std::uint8_t v) {
    switch (v) {
        case 1: return event_level::warn;
        case 2: return event_level::error;
        default: return event_level::info;
    }
}

std::uint8_t level_byte(event_level l) {
    switch (l) {
        case event_level::warn: return 1;
        case event_level::error: return 2;
        default: return 0;
    }
}

/// Renders an event's fields as one JSON object string (values are
/// already JSON tokens, same as event_json's "fields" member).
std::string fields_json_of(const event_fields& fields) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out += ',';
        out += '"';
        for (char c : fields[i].first) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        out += "\":" + fields[i].second;
    }
    out += '}';
    return out;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::vector<point> downsample(const std::vector<point>& pts, std::int64_t step) {
    if (step <= 1 || pts.empty()) return pts;
    std::vector<point> out;
    // Floor-divide toward -inf so negative timestamps bucket correctly.
    const auto bucket_of = [step](std::int64_t ts) {
        std::int64_t q = ts / step;
        if (ts % step != 0 && ts < 0) --q;
        return q * step;
    };
    std::int64_t bucket = bucket_of(pts.front().ts);
    double sum = 0;
    std::uint64_t n = 0;
    for (const point& p : pts) {
        const std::int64_t b = bucket_of(p.ts);
        if (b != bucket && n > 0) {
            out.push_back({bucket, sum / static_cast<double>(n)});
            sum = 0;
            n = 0;
        }
        bucket = b;
        sum += p.value;
        ++n;
    }
    if (n > 0) out.push_back({bucket, sum / static_cast<double>(n)});
    return out;
}

std::string database::segment_path(std::uint64_t seq) const {
    char name[32];
    std::snprintf(name, sizeof name, "seg-%06llu.v6t",
                  static_cast<unsigned long long>(seq));
    return dir_ + "/" + name;
}

std::unique_ptr<database> database::open(const std::string& dir,
                                         const options& opt,
                                         std::string* error) {
    std::unique_ptr<database> db(new database());
    db->dir_ = dir;
    db->opt_ = opt;
    if (opt.metrics) {
        registry& reg = *opt.metrics;
        db->commits_ = reg.get_counter("v6_tsdb_commits_total", {},
                                       "tsdb commit() calls that wrote frames.");
        db->rotations_ = reg.get_counter("v6_tsdb_segment_rotations_total", {},
                                         "Segments sealed by size rotation.");
        db->retired_ = reg.get_counter("v6_tsdb_segments_retired_total", {},
                                       "Segments unlinked by retention.");
        db->duplicates_ = reg.get_counter(
            "v6_tsdb_duplicate_points_total", {},
            "Appends dropped by the monotone-timestamp re-anchor check.");
        db->write_errors_ = reg.get_counter("v6_tsdb_write_errors_total", {},
                                            "Failed frame writes.");
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (error) *error = dir + ": " + ec.message();
        return nullptr;
    }
    // Discover segments. Anything not matching the name pattern is
    // ignored (a crashed atomic_file temp, an operator's notes).
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        unsigned long long seq = 0;
        char suffix[8] = {0};
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (std::sscanf(name.c_str(), "seg-%6llu.v6%3s", &seq, suffix) == 2 &&
            std::strcmp(suffix, "t") == 0)
            db->segments_.push_back(seq);
    }
    if (ec) {
        if (error) *error = dir + ": " + ec.message();
        return nullptr;
    }
    std::sort(db->segments_.begin(), db->segments_.end());
    for (std::size_t i = 0; i < db->segments_.size(); ++i) {
        if (!db->scan_segment(db->segments_[i], i + 1 == db->segments_.size(),
                              error))
            return nullptr;
    }
    std::lock_guard lock(db->mutex_);
    if (!db->open_active_locked(error)) return nullptr;
    return db;
}

bool database::scan_segment(std::uint64_t seq, bool newest, std::string* error) {
    const std::string path = segment_path(seq);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error) *error = path + ": " + std::strerror(errno);
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> payload;
    std::uint64_t offset = 0;
    std::int64_t seg_max_ts = 0;
    bool seg_any_ts = false;
    for (;;) {
        std::uint8_t head[8];
        const std::size_t got = std::fread(head, 1, sizeof head, f);
        if (got == 0) break;  // clean end
        bool ok = got == sizeof head;
        std::uint32_t len = 0, crc = 0;
        if (ok) {
            for (int i = 0; i < 4; ++i) {
                len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
                crc |= static_cast<std::uint32_t>(head[4 + i]) << (8 * i);
            }
            ok = len >= 1 && len <= kMaxFrame;
        }
        if (ok) {
            payload.resize(len);
            ok = std::fread(payload.data(), 1, len, f) == len &&
                 crc32(payload.data(), len) == crc;
        }
        if (ok) {
            // Decode. A structurally bad payload with a valid CRC is a
            // writer bug, not a torn tail; treat it the same way —
            // truncate here rather than guess at the rest.
            reader r{payload.data() + 1, payload.size() - 1};
            switch (payload[0]) {
                case kKindDef: {
                    std::uint32_t id;
                    std::uint16_t nlen, llen;
                    std::string name, label;
                    ok = r.u32(id) && r.u16(nlen) && r.u16(llen) &&
                         r.str(name, nlen) && r.str(label, llen) && r.left == 0;
                    if (ok) {
                        // Ids are assigned densely by this writer; a
                        // foreign id is corruption.
                        const auto key = std::make_pair(name, label);
                        const auto it = by_key_.find(key);
                        if (it == by_key_.end()) {
                            ok = id == series_.size();
                            if (ok) {
                                series_state s;
                                s.name = name;
                                s.label = label;
                                series_.push_back(std::move(s));
                                by_key_.emplace(key, id);
                            }
                        } else {
                            ok = it->second == id;  // re-definition must agree
                        }
                    }
                    if (ok && newest) active_seg_defs_.push_back(id);
                    break;
                }
                case kKindPoints: {
                    std::uint32_t id, count;
                    ok = r.u32(id) && r.u32(count) && id < series_.size() &&
                         r.left == count * 16u && count > 0;
                    if (ok) {
                        block b;
                        b.series = id;
                        b.count = count;
                        b.segment = seq;
                        b.offset = offset;
                        b.len = len;
                        series_state& s = series_[id];
                        for (std::uint32_t i = 0; ok && i < count; ++i) {
                            std::int64_t ts;
                            double v;
                            ok = r.i64(ts) && r.f64(v);
                            if (!ok) break;
                            if (i == 0) b.min_ts = ts;
                            b.max_ts = ts;
                            if (s.points == 0) s.first_ts = ts;
                            s.last_ts = ts;
                            ++s.points;
                            ++recovered_points_;
                            if (!seg_any_ts || ts > seg_max_ts) seg_max_ts = ts;
                            seg_any_ts = true;
                            if (!any_ts_ || ts > newest_ts_) newest_ts_ = ts;
                            any_ts_ = true;
                        }
                        if (ok) s.blocks.push_back(b);
                    }
                    break;
                }
                case kKindEvent: {
                    std::uint8_t level;
                    double time;
                    std::uint16_t klen, mlen;
                    std::uint32_t flen;
                    std::string kind, msg, fields;
                    ok = r.u8(level) && r.f64(time) && r.u16(klen) &&
                         r.u16(mlen) && r.u32(flen) && r.str(kind, klen) &&
                         r.str(msg, mlen) && r.str(fields, flen) && r.left == 0;
                    if (ok) {
                        event_ref e;
                        e.time = time;
                        e.level = level_of(level);
                        e.segment = seq;
                        e.offset = offset;
                        e.len = len;
                        events_.push_back(e);
                    }
                    break;
                }
                default:
                    ok = false;
            }
        }
        if (!ok) {
            // Torn or corrupt frame. On the newest segment this is the
            // expected crash shape: truncate back to the last whole
            // record and resume appending there. On an older segment it
            // means data after this point is unreachable; truncating is
            // still the honest representation (the committed prefix).
            std::fclose(f);
            f = nullptr;
            truncated_bytes_ +=
                static_cast<std::uint64_t>(file_size) - offset;
            if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
                if (error) *error = path + ": truncate: " + std::strerror(errno);
                return false;
            }
            break;
        }
        offset += 8 + len;
    }
    if (f) std::fclose(f);
    segment_bytes_[seq] = offset;
    if (seg_any_ts) segment_max_ts_[seq] = seg_max_ts;
    return true;
}

bool database::open_active_locked(std::string* error) {
    if (segments_.empty()) {
        active_seq_ = 1;
        segments_.push_back(active_seq_);
        segment_bytes_[active_seq_] = 0;
        active_size_ = 0;
        active_fd_ = ::open(segment_path(active_seq_).c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (active_fd_ < 0) {
            if (error)
                *error = segment_path(active_seq_) + ": " + std::strerror(errno);
            return false;
        }
        // A fresh segment opens with every known definition (none on a
        // brand-new directory; all of them after a rotation).
        for (std::uint32_t id = 0; id < series_.size(); ++id)
            series_[id].persisted = false;
        return true;
    }
    active_seq_ = segments_.back();
    active_size_ = segment_bytes_[active_seq_];
    active_fd_ = ::open(segment_path(active_seq_).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (active_fd_ < 0) {
        if (error)
            *error = segment_path(active_seq_) + ": " + std::strerror(errno);
        return false;
    }
    // Only the definitions recovery actually saw in this (the resumed
    // active) segment are persisted here. Everything else — typically
    // after a crash right between rotate_locked() creating the fresh
    // segment and the next commit() rewriting the definitions — must be
    // written again by the next commit, or retention could unlink the
    // older segments holding the only copy of those defs and a later
    // open() would truncate this segment at its first unknown series id.
    for (series_state& s : series_) s.persisted = false;
    for (const std::uint32_t id : active_seg_defs_)
        if (id < series_.size()) series_[id].persisted = true;
    return true;
}

std::uint32_t database::intern_locked(const std::string& name,
                                      const std::string& label) {
    const auto key = std::make_pair(name, label);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(series_.size());
    series_state s;
    s.name = name;
    s.label = label;
    s.persisted = false;
    series_.push_back(std::move(s));
    by_key_.emplace(key, id);
    return id;
}

std::uint32_t database::series_id(const std::string& name,
                                  const std::string& label) {
    std::lock_guard lock(mutex_);
    return intern_locked(name, label);
}

void database::append(std::uint32_t id, std::int64_t ts, double value) {
    std::lock_guard lock(mutex_);
    if (id >= series_.size()) return;
    series_state& s = series_[id];
    if (s.points > 0 && ts <= s.last_ts) {
        ++duplicate_points_;
        duplicates_.inc();
        return;
    }
    // last_ts must also cover the pending buffer, so two appends of the
    // same ts in one commit window still dedup.
    if (s.points == 0) s.first_ts = ts;
    s.last_ts = ts;
    ++s.points;
    s.pending.push_back({ts, value});
    if (!any_ts_ || ts > newest_ts_) newest_ts_ = ts;
    any_ts_ = true;
}

void database::append_event(const event& e) {
    std::lock_guard lock(mutex_);
    pending_events_.push_back(e);
}

bool database::write_frame_locked(std::uint8_t kind, const std::string& body,
                                  std::uint64_t* offset) {
    std::string payload;
    payload.reserve(1 + body.size());
    payload.push_back(static_cast<char>(kind));
    payload += body;
    std::string frame;
    frame.reserve(8 + payload.size());
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    put_u32(frame, crc32(payload.data(), payload.size()));
    frame += payload;
    if (offset) *offset = active_size_;
    if (!write_all(active_fd_, frame.data(), frame.size())) {
        write_errors_.inc();
        // A partial write (e.g. ENOSPC mid-frame) leaves garbage past
        // the last whole frame; with O_APPEND the retried frame would
        // land after it, desyncing every indexed offset and poisoning
        // restart recovery. Cut the file back to the committed tail
        // before any further write; if even that fails the tail is
        // unknowable, so fail the handle rather than corrupt (commit()
        // refuses a closed handle).
        if (::ftruncate(active_fd_, static_cast<off_t>(active_size_)) != 0) {
            ::close(active_fd_);
            active_fd_ = -1;
        }
        return false;
    }
    active_size_ += frame.size();
    segment_bytes_[active_seq_] = active_size_;
    return true;
}

bool database::rotate_locked() {
    ::fsync(active_fd_);
    ::close(active_fd_);
    active_fd_ = -1;
    if (any_ts_) segment_max_ts_[active_seq_] = newest_ts_;
    ++active_seq_;
    segments_.push_back(active_seq_);
    segment_bytes_[active_seq_] = 0;
    active_size_ = 0;
    active_fd_ = ::open(segment_path(active_seq_).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_TRUNC, 0644);
    if (active_fd_ < 0) return false;
    rotations_.inc();
    // Self-contained segments: every definition goes again at the top.
    for (series_state& s : series_) s.persisted = false;
    apply_retention_locked();
    return true;
}

void database::apply_retention_locked() {
    // Only sealed segments are candidates; the active one never goes.
    const auto drop_front = [&] {
        const std::uint64_t seq = segments_.front();
        ::unlink(segment_path(seq).c_str());
        // Forget the retired segment's blocks and events.
        for (series_state& s : series_) {
            auto& b = s.blocks;
            b.erase(std::remove_if(b.begin(), b.end(),
                                   [&](const block& x) { return x.segment == seq; }),
                    b.end());
        }
        events_.erase(std::remove_if(events_.begin(), events_.end(),
                                     [&](const event_ref& e) {
                                         return e.segment == seq;
                                     }),
                      events_.end());
        segment_bytes_.erase(seq);
        segment_max_ts_.erase(seq);
        segments_.erase(segments_.begin());
        ++retired_segments_;
        retired_.inc();
    };
    if (opt_.retain_bytes > 0) {
        const auto total = [&] {
            std::uint64_t t = 0;
            for (const auto& [seq, bytes] : segment_bytes_) t += bytes;
            return t;
        };
        // The newest sealed segment is exempt alongside the active one:
        // a cap smaller than one commit must not erase the newest data.
        while (segments_.size() > 2 && total() > opt_.retain_bytes) drop_front();
    }
    if (opt_.retain_age > 0 && any_ts_) {
        while (segments_.size() > 1) {
            const auto it = segment_max_ts_.find(segments_.front());
            if (it == segment_max_ts_.end()) break;  // no points: keep
            if (newest_ts_ - it->second <= opt_.retain_age) break;
            drop_front();
        }
    }
}

bool database::commit() {
    obs::pmu_scope commit_pmu("tsdb.commit");
    std::lock_guard lock(mutex_);
    if (active_fd_ < 0) return false;
    bool wrote = false;
    bool ok = true;
    // Definitions first: a points frame must never precede its series'
    // definition within a segment.
    for (std::uint32_t id = 0; id < series_.size() && ok; ++id) {
        series_state& s = series_[id];
        if (s.persisted) continue;
        std::string body;
        put_u32(body, id);
        put_u16(body, static_cast<std::uint16_t>(s.name.size()));
        put_u16(body, static_cast<std::uint16_t>(s.label.size()));
        body += s.name;
        body += s.label;
        ok = write_frame_locked(kKindDef, body, nullptr);
        if (ok) {
            s.persisted = true;
            wrote = true;
        }
    }
    for (std::uint32_t id = 0; id < series_.size() && ok; ++id) {
        series_state& s = series_[id];
        if (s.pending.empty()) continue;
        std::string body;
        put_u32(body, id);
        put_u32(body, static_cast<std::uint32_t>(s.pending.size()));
        for (const point& p : s.pending) {
            put_i64(body, p.ts);
            put_f64(body, p.value);
        }
        std::uint64_t offset = 0;
        ok = write_frame_locked(kKindPoints, body, &offset);
        if (!ok) break;
        block b;
        b.series = id;
        b.count = static_cast<std::uint32_t>(s.pending.size());
        b.min_ts = s.pending.front().ts;
        b.max_ts = s.pending.back().ts;
        b.segment = active_seq_;
        b.offset = offset;
        b.len = static_cast<std::uint32_t>(1 + body.size());
        s.blocks.push_back(b);
        s.pending.clear();
        wrote = true;
    }
    std::size_t events_written = 0;
    for (std::size_t i = 0; ok && i < pending_events_.size(); ++i) {
        const event& e = pending_events_[i];
        const std::string fields = fields_json_of(e.fields);
        std::string body;
        body.push_back(static_cast<char>(level_byte(e.level)));
        put_f64(body, e.unix_time);
        put_u16(body, static_cast<std::uint16_t>(e.kind.size()));
        put_u16(body, static_cast<std::uint16_t>(e.message.size()));
        put_u32(body, static_cast<std::uint32_t>(fields.size()));
        body += e.kind;
        body += e.message;
        body += fields;
        std::uint64_t offset = 0;
        ok = write_frame_locked(kKindEvent, body, &offset);
        if (!ok) break;
        event_ref ref;
        ref.time = e.unix_time;
        ref.level = e.level;
        ref.segment = active_seq_;
        ref.offset = offset;
        ref.len = static_cast<std::uint32_t>(1 + body.size());
        events_.push_back(ref);
        ++events_written;
        wrote = true;
    }
    // Written events are durably indexed in events_; drop exactly that
    // prefix. On a failed write the loop stops early and the unwritten
    // tail stays buffered for the next commit — the same retry contract
    // the point buffers follow.
    if (events_written > 0)
        pending_events_.erase(
            pending_events_.begin(),
            pending_events_.begin() +
                static_cast<std::ptrdiff_t>(events_written));
    if (ok && wrote) {
        commits_.inc();
        if (opt_.fsync_commit) ::fsync(active_fd_);
        if (active_size_ >= opt_.segment_bytes) ok = rotate_locked();
    }
    return ok;
}

std::vector<series_info> database::list_series() const {
    std::lock_guard lock(mutex_);
    std::vector<series_info> out;
    out.reserve(series_.size());
    for (const series_state& s : series_) {
        series_info info;
        info.name = s.name;
        info.label = s.label;
        info.first_ts = s.first_ts;
        info.last_ts = s.last_ts;
        info.points = s.points;
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(), [](const series_info& a, const series_info& b) {
        return a.name != b.name ? a.name < b.name : a.label < b.label;
    });
    return out;
}

std::optional<std::int64_t> database::last_ts(const std::string& name,
                                              const std::string& label) const {
    std::lock_guard lock(mutex_);
    const auto it = by_key_.find(std::make_pair(name, label));
    if (it == by_key_.end()) return std::nullopt;
    const series_state& s = series_[it->second];
    if (s.points == 0) return std::nullopt;
    return s.last_ts;
}

std::vector<point> database::query(const std::string& name,
                                   const std::string& label, std::int64_t from,
                                   std::int64_t to) const {
    std::lock_guard lock(mutex_);
    std::vector<point> out;
    const auto it = by_key_.find(std::make_pair(name, label));
    if (it == by_key_.end()) return out;
    const series_state& s = series_[it->second];
    std::vector<std::uint8_t> payload;
    for (const block& b : s.blocks) {
        if (b.max_ts < from || b.min_ts > to) continue;  // the index at work
        const std::string path = segment_path(b.segment);
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (!f) continue;  // retired between index snapshot and read
        bool ok = std::fseek(f, static_cast<long>(b.offset + 8), SEEK_SET) == 0;
        payload.resize(b.len);
        ok = ok && std::fread(payload.data(), 1, b.len, f) == b.len;
        std::fclose(f);
        if (!ok || payload[0] != kKindPoints) continue;
        reader r{payload.data() + 1, payload.size() - 1};
        std::uint32_t id, count;
        if (!r.u32(id) || !r.u32(count)) continue;
        for (std::uint32_t i = 0; i < count; ++i) {
            std::int64_t ts;
            double v;
            if (!r.i64(ts) || !r.f64(v)) break;
            if (ts >= from && ts <= to) out.push_back({ts, v});
        }
    }
    for (const point& p : s.pending)
        if (p.ts >= from && p.ts <= to) out.push_back(p);
    std::sort(out.begin(), out.end(),
              [](const point& a, const point& b) { return a.ts < b.ts; });
    return out;
}

std::vector<stored_event> database::query_events(event_level min_level,
                                                 double from, double to,
                                                 std::size_t limit) const {
    std::lock_guard lock(mutex_);
    std::vector<stored_event> out;
    const auto decode_into = [&](const std::uint8_t* data, std::size_t len) {
        reader r{data + 1, len - 1};
        std::uint8_t level;
        double time;
        std::uint16_t klen, mlen;
        std::uint32_t flen;
        stored_event e;
        if (!r.u8(level) || !r.f64(time) || !r.u16(klen) || !r.u16(mlen) ||
            !r.u32(flen) || !r.str(e.kind, klen) || !r.str(e.message, mlen) ||
            !r.str(e.fields_json, flen))
            return;
        e.unix_time = time;
        e.level = level_of(level);
        out.push_back(std::move(e));
    };
    std::vector<std::uint8_t> payload;
    for (const event_ref& ref : events_) {
        if (ref.time < from || ref.time > to) continue;
        if (static_cast<int>(ref.level) < static_cast<int>(min_level)) continue;
        const std::string path = segment_path(ref.segment);
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (!f) continue;
        bool ok = std::fseek(f, static_cast<long>(ref.offset + 8), SEEK_SET) == 0;
        payload.resize(ref.len);
        ok = ok && std::fread(payload.data(), 1, ref.len, f) == ref.len;
        std::fclose(f);
        if (ok && payload[0] == kKindEvent) decode_into(payload.data(), payload.size());
    }
    for (const event& e : pending_events_) {
        if (e.unix_time < from || e.unix_time > to) continue;
        if (static_cast<int>(e.level) < static_cast<int>(min_level)) continue;
        stored_event se;
        se.unix_time = e.unix_time;
        se.level = e.level;
        se.kind = e.kind;
        se.message = e.message;
        se.fields_json = fields_json_of(e.fields);
        out.push_back(std::move(se));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const stored_event& a, const stored_event& b) {
                         return a.unix_time < b.unix_time;
                     });
    if (out.size() > limit)
        out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(limit));
    return out;
}

std::uint64_t database::recovered_points() const {
    std::lock_guard lock(mutex_);
    return recovered_points_;
}

std::uint64_t database::truncated_bytes() const {
    std::lock_guard lock(mutex_);
    return truncated_bytes_;
}

std::uint64_t database::duplicate_points() const {
    std::lock_guard lock(mutex_);
    return duplicate_points_;
}

std::size_t database::segment_count() const {
    std::lock_guard lock(mutex_);
    return segments_.size();
}

std::uint64_t database::retired_segments() const {
    std::lock_guard lock(mutex_);
    return retired_segments_;
}

database::~database() {
    commit();
    std::lock_guard lock(mutex_);
    if (active_fd_ >= 0) {
        ::fsync(active_fd_);
        ::close(active_fd_);
        active_fd_ = -1;
    }
}

void register_history_api(metrics_server& server, const database* db) {
    server.add_handler("/api/series", [db](const query_params& q) {
        http_reply reply;
        const auto get = [&q](const char* k) {
            const auto it = q.find(k);
            return it == q.end() ? std::string() : it->second;
        };
        const std::string name = get("name");
        if (name.empty()) {
            // No name: the series directory, so a client can discover
            // what to chart.
            reply.body = "[";
            bool first = true;
            for (const series_info& s : db->list_series()) {
                reply.body += std::string(first ? "" : ",") + "{\"name\":" +
                              event_field_string(s.name) + ",\"label\":" +
                              event_field_string(s.label) + ",\"from\":" +
                              std::to_string(s.first_ts) + ",\"to\":" +
                              std::to_string(s.last_ts) + ",\"points\":" +
                              std::to_string(s.points) + "}";
                first = false;
            }
            reply.body += "]";
            return reply;
        }
        constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
        constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
        const std::string from_s = get("from"), to_s = get("to"),
                          step_s = get("step");
        const std::int64_t from =
            from_s.empty() ? kMin : std::atoll(from_s.c_str());
        const std::int64_t to = to_s.empty() ? kMax : std::atoll(to_s.c_str());
        const std::int64_t step =
            step_s.empty() ? 0 : std::atoll(step_s.c_str());
        if (step < 0) {
            reply.status = 400;
            reply.body = "{\"error\":\"step must be >= 0\"}";
            return reply;
        }
        std::vector<point> pts = db->query(name, get("label"), from, to);
        if (step > 1) pts = downsample(pts, step);
        reply.body = "{\"name\":" + event_field_string(name) + ",\"label\":" +
                     event_field_string(get("label")) + ",\"points\":[";
        for (std::size_t i = 0; i < pts.size(); ++i)
            reply.body += std::string(i ? "," : "") + "[" +
                          std::to_string(pts[i].ts) + "," +
                          event_field_number(pts[i].value) + "]";
        reply.body += "]}";
        return reply;
    });
    server.add_handler("/api/events", [db](const query_params& q) {
        http_reply reply;
        const auto get = [&q](const char* k) {
            const auto it = q.find(k);
            return it == q.end() ? std::string() : it->second;
        };
        const std::string level_s = get("level");
        event_level min_level = event_level::info;
        if (level_s == "warn")
            min_level = event_level::warn;
        else if (level_s == "error")
            min_level = event_level::error;
        else if (!level_s.empty() && level_s != "info") {
            reply.status = 400;
            reply.body = "{\"error\":\"level must be info|warn|error\"}";
            return reply;
        }
        const std::string from_s = get("from"), to_s = get("to"),
                          limit_s = get("limit");
        const double from = from_s.empty() ? -1e300 : std::atof(from_s.c_str());
        const double to = to_s.empty() ? 1e300 : std::atof(to_s.c_str());
        const std::size_t limit =
            limit_s.empty()
                ? 1024
                : static_cast<std::size_t>(std::atoll(limit_s.c_str()));
        reply.body = "[";
        bool first = true;
        for (const stored_event& e :
             db->query_events(min_level, from, to, limit)) {
            reply.body += std::string(first ? "" : ",") + "{\"time\":" +
                          event_field_number(e.unix_time) + ",\"level\":\"" +
                          event_level_name(e.level) + "\",\"kind\":" +
                          event_field_string(e.kind) + ",\"message\":" +
                          event_field_string(e.message) + ",\"fields\":" +
                          (e.fields_json.empty() ? "{}" : e.fields_json) + "}";
            first = false;
        }
        reply.body += "]";
        return reply;
    });
}

}  // namespace v6::obs::tsdb
