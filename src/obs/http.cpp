#include "v6class/obs/http.h"

namespace v6::obs {

query_params parse_query_string(const std::string& query) {
    query_params out;
    std::size_t pos = 0;
    const auto decode = [](const std::string& s) {
        std::string d;
        d.reserve(s.size());
        for (std::size_t i = 0; i < s.size(); ++i) {
            if (s[i] == '+') {
                d += ' ';
            } else if (s[i] == '%' && i + 2 < s.size()) {
                const auto hex = [](char c) -> int {
                    if (c >= '0' && c <= '9') return c - '0';
                    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
                    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
                    return -1;
                };
                const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
                if (hi >= 0 && lo >= 0) {
                    d += static_cast<char>(hi * 16 + lo);
                    i += 2;
                } else {
                    d += s[i];
                }
            } else {
                d += s[i];
            }
        }
        return d;
    };
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos) amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos)
            out[decode(pair.substr(0, eq))] = decode(pair.substr(eq + 1));
        else if (!pair.empty())
            out[decode(pair)] = "";
        pos = amp + 1;
    }
    return out;
}

}  // namespace v6::obs

#if defined(_WIN32)

namespace v6::obs {
// The scrape endpoint is POSIX-only; the registry and file dumps work
// everywhere.
bool metrics_server::start(std::uint16_t, const registry*, std::string* error) {
    if (error) *error = "metrics server unsupported on this platform";
    return false;
}
void metrics_server::stop() {}
void metrics_server::serve_loop() {}
void metrics_server::set_state(const std::string&) {}
std::string metrics_server::state() const { return "starting"; }
double metrics_server::uptime_seconds() const { return 0.0; }
std::string metrics_server::health_json() const { return "{}"; }
}  // namespace v6::obs

#else

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "v6class/obs/pmu.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/trace.h"

namespace v6::obs {

namespace {

/// Writes the whole buffer, tolerating short writes; MSG_NOSIGNAL so a
/// scraper hanging up mid-response cannot SIGPIPE the process.
void send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
    }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.0 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

const char* status_line(int status) {
    switch (status) {
        case 200: return "200 OK";
        case 400: return "400 Bad Request";
        case 404: return "404 Not Found";
        case 500: return "500 Internal Server Error";
        default: return "200 OK";
    }
}

}  // namespace

void metrics_server::set_state(const std::string& state) {
    std::lock_guard lock(state_mutex_);
    state_ = state;
}

std::string metrics_server::state() const {
    std::lock_guard lock(state_mutex_);
    return state_;
}

double metrics_server::uptime_seconds() const {
    std::lock_guard lock(state_mutex_);
    if (started_ == std::chrono::steady_clock::time_point{}) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
        .count();
}

std::string metrics_server::health_json() const {
    char head[96];
    std::snprintf(head, sizeof head, "\",\"uptime_seconds\":%.3f",
                  uptime_seconds());
    std::string body = "{\"status\":\"" + state() + head;
    if (health_) {
        const std::string extra = health_();
        if (!extra.empty()) body += "," + extra;
    }
    body += "}\n";
    return body;
}

bool metrics_server::start(std::uint16_t port, const registry* reg,
                           std::string* error) {
    reg_ = reg;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error) *error = std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(listen_fd_, 8) < 0) {
        if (error) *error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
        port_ = ntohs(addr.sin_port);
    {
        std::lock_guard lock(state_mutex_);
        started_ = std::chrono::steady_clock::now();
        if (state_ == "starting") state_ = "serving";
    }
    running_.store(true);
    thread_ = std::thread([this] { serve_loop(); });
    return true;
}

void metrics_server::serve_loop() {
    for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            if (!running_.load()) return;  // stop() closed the socket
            if (errno == EINTR) continue;
            return;
        }
        // One serial acceptor thread means a stalled client would wedge
        // every later scrape: bound both directions of the socket.
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(read_timeout_.count() / 1000);
        tv.tv_usec =
            static_cast<suseconds_t>((read_timeout_.count() % 1000) * 1000);
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        // Read the request head until the first line is complete: enough
        // to see "GET <path> ...". The scraper protocol needs nothing
        // past the first line. A head that exceeds kMaxRequestBytes
        // without one is answered 400; a timeout just drops the
        // connection.
        std::string head;
        bool have_line = false, oversized = false;
        char buf[2048];
        for (;;) {
            const ssize_t n = ::recv(client, buf, sizeof buf, 0);
            if (n <= 0) break;  // peer closed, error, or SO_RCVTIMEO
            head.append(buf, static_cast<std::size_t>(n));
            if (head.find('\n') != std::string::npos) {
                have_line = true;
                break;
            }
            if (head.size() >= kMaxRequestBytes) {
                oversized = true;
                break;
            }
        }
        if (oversized) {
            send_all(client, http_response("400 Bad Request", "text/plain",
                                           "request too large\n"));
            ::close(client);
            continue;
        }
        if (have_line) {
            std::string path;
            if (head.rfind("GET ", 0) == 0) {
                std::size_t end = 4;
                while (end < head.size() && head[end] != ' ' &&
                       head[end] != '\r' && head[end] != '\n')
                    ++end;
                path.assign(head, 4, end - 4);
            }
            // Split "?query" off before routing; only custom handlers
            // consume it.
            std::string query;
            if (const std::size_t q = path.find('?'); q != std::string::npos) {
                query = path.substr(q + 1);
                path.erase(q);
            }
            if (path == "/metrics") {
                send_all(client,
                         http_response(
                             "200 OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             reg_ ? reg_->prometheus_text() : std::string{}));
            } else if (path == "/healthz") {
                send_all(client, http_response("200 OK", "application/json",
                                               health_json()));
            } else if ((path == "/dashboard" || path == "/") && dashboard_) {
                send_all(client,
                         http_response("200 OK", "text/html; charset=utf-8",
                                       dashboard_()));
            } else if (path == "/trace") {
                // The full span trace so far; loads in chrome://tracing
                // and Perfetto. Empty traceEvents until tracing is
                // enabled (v6stream enables it with --metrics-port).
                send_all(client, http_response("200 OK", "application/json",
                                               tracer::chrome_json()));
            } else if (path == "/pmu") {
                // Hardware counter snapshot: JSON by default, a
                // topdown-style per-thread table with ?format=html.
                // Always answers — an unavailable PMU reports its
                // reason instead of counters.
                const auto params = parse_query_string(query);
                const auto fmt = params.find("format");
                if (fmt != params.end() && fmt->second == "html") {
                    send_all(client,
                             http_response("200 OK",
                                           "text/html; charset=utf-8",
                                           pmu::topdown_html()));
                } else {
                    send_all(client,
                             http_response("200 OK", "application/json",
                                           pmu::snapshot_json()));
                }
            } else if (path == "/profile") {
                // Folded stacks for flamegraph.pl; empty until the
                // sampling profiler has run.
                send_all(client,
                         http_response("200 OK", "text/plain; charset=utf-8",
                                       profiler::folded_text()));
            } else if (const auto it = handlers_.find(path);
                       it != handlers_.end()) {
                const http_reply reply = it->second(parse_query_string(query));
                send_all(client,
                         http_response(status_line(reply.status),
                                       reply.content_type.c_str(), reply.body));
            } else {
                send_all(client, http_response("404 Not Found", "text/plain",
                                               "not found\n"));
            }
        }
        ::close(client);
    }
}

void metrics_server::stop() {
    if (listen_fd_ < 0) return;
    running_.store(false);
    // shutdown() then close() unblocks the acceptor on every platform
    // we build on (close() alone does not wake a blocked accept on
    // Linux).
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
    listen_fd_ = -1;
}

}  // namespace v6::obs

#endif
