// pmu.cpp — perf_event_open(2) counter groups: one lazily-opened group
// per counting thread, single-read() snapshots, multiplexing-aware
// scaling, and lock-free per-site delta accumulation.
//
// Group layout (PERF_FORMAT_GROUP | ID | TOTAL_TIME_ENABLED |
// TOTAL_TIME_RUNNING): read() returns
//   { nr, time_enabled, time_running, { value, id } * nr }
// and the ids recorded at open time map values back to counter slots,
// so a member the kernel rejected (missing PMU event) just leaves its
// slot absent instead of shifting everything.
#include "v6class/obs/pmu.h"

#include "v6class/obs/metrics.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define V6CLASS_HAVE_PERF 1
#endif

namespace v6::obs {

namespace pmu {

std::atomic<bool> detail::pmu_enabled{false};

namespace {

constexpr unsigned slot_of(counter c) noexcept {
    return static_cast<unsigned>(c);
}

const char* const kCounterNames[counter_slots] = {
    "cycles",        "instructions", "cache_references", "cache_misses",
    "branches",      "branch_misses", "task_clock_ns",    "page_faults",
};

int read_paranoid() {
    std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
    if (!f) return -100;
    int v = -100;
    if (std::fscanf(f, "%d", &v) != 1) v = -100;
    std::fclose(f);
    return v;
}

#if defined(V6CLASS_HAVE_PERF)

struct event_spec {
    counter slot;
    std::uint32_t type;
    std::uint64_t config;
};

// Hardware tier: cycles leads; software members always schedule, so
// they ride in the same group without consuming PMU slots.
const event_spec kHardwareGroup[] = {
    {counter::cycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {counter::instructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {counter::cache_references, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_REFERENCES},
    {counter::cache_misses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {counter::branches, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {counter::branch_misses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {counter::task_clock_ns, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {counter::page_faults, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
};

// Software tier (VMs without a PMU, restrictive paranoid levels that
// still admit software clocks): task-clock leads.
const event_spec kSoftwareGroup[] = {
    {counter::task_clock_ns, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {counter::page_faults, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
};

int open_event(std::uint32_t type, std::uint64_t config, int group_fd,
               bool lead) noexcept {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = lead ? 1 : 0;  // the whole group starts via ioctl
    attr.exclude_kernel = 1;       // required at perf_event_paranoid >= 2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0, -1,
                                      group_fd, PERF_FLAG_FD_CLOEXEC));
}

#endif  // V6CLASS_HAVE_PERF

/// One thread's open counter group. Owned by a thread_local holder;
/// registered in a process-wide list so /pmu can read every thread's
/// fds from the snapshotting thread (perf fds read cross-thread).
struct thread_group {
    int lead = -1;
    std::array<int, counter_slots> fd;
    std::array<std::uint64_t, counter_slots> id{};
    std::array<bool, counter_slots> present{};
    std::uint32_t tid = 0;
    std::string name;

    thread_group() { fd.fill(-1); }

#if defined(V6CLASS_HAVE_PERF)
    bool open(mode tier) noexcept {
        const event_spec* specs = kHardwareGroup;
        std::size_t n = std::size(kHardwareGroup);
        if (tier != mode::hardware) {
            specs = kSoftwareGroup;
            n = std::size(kSoftwareGroup);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const bool is_lead = (lead == -1);
            int f = open_event(specs[i].type, specs[i].config, lead, is_lead);
            if (f < 0) {
                if (is_lead) return false;  // lead must open
                continue;  // optional member the CPU lacks: slot absent
            }
            const unsigned slot = slot_of(specs[i].slot);
            fd[slot] = f;
            if (is_lead) lead = f;
            if (::ioctl(f, PERF_EVENT_IOC_ID, &id[slot]) != 0) {
                ::close(f);
                fd[slot] = -1;
                if (is_lead) {
                    lead = -1;
                    return false;
                }
                continue;
            }
            present[slot] = true;
        }
        ::ioctl(lead, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ::ioctl(lead, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        return true;
    }

    bool read_sample(sample& out) const noexcept {
        // nr + time_enabled + time_running + {value,id} per member.
        std::uint64_t buf[3 + 2 * counter_slots];
        ssize_t n;
        do {
            n = ::read(lead, buf, sizeof(buf));
        } while (n < 0 && errno == EINTR);
        if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return false;
        const std::uint64_t nr = buf[0];
        out.time_enabled = buf[1];
        out.time_running = buf[2];
        for (std::uint64_t i = 0;
             i < nr && 3 + 2 * i + 1 < std::size(buf); ++i) {
            const std::uint64_t value = buf[3 + 2 * i];
            const std::uint64_t ev_id = buf[3 + 2 * i + 1];
            for (unsigned slot = 0; slot < counter_slots; ++slot) {
                if (present[slot] && id[slot] == ev_id) {
                    out.raw[slot] = value;
                    out.present[slot] = true;
                    break;
                }
            }
        }
        out.ok = true;
        return true;
    }
#else
    bool open(mode) noexcept { return false; }
    bool read_sample(sample&) const noexcept { return false; }
#endif

    void close_all() noexcept {
#if defined(V6CLASS_HAVE_PERF)
        for (int& f : fd) {
            if (f >= 0) ::close(f);
            f = -1;
        }
#endif
        lead = -1;
        present.fill(false);
    }
};

// Never-destroyed registries: thread_local holder destructors (thread
// exit) must be able to deregister safely however late they run.
std::mutex& groups_mutex() {
    static std::mutex m;
    return m;
}
std::vector<thread_group*>& groups() {
    static auto* v = new std::vector<thread_group*>;
    return *v;
}

std::mutex& probe_mutex() {
    static std::mutex m;
    return m;
}
availability& probe_cache() {
    static auto* a = new availability;
    return *a;
}
bool g_probed = false;

availability run_probe() {
    availability out;
    const char* env = std::getenv("V6CLASS_DISABLE_PMU");
    if (env && *env && std::strcmp(env, "0") != 0) {
        out.tier = mode::unavailable;
        out.reason = "disabled by V6CLASS_DISABLE_PMU";
        return out;
    }
#if defined(V6CLASS_HAVE_PERF)
    int f = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1, true);
    if (f >= 0) {
        ::close(f);
        out.tier = mode::hardware;
        out.reason = "ok";
        return out;
    }
    const int hw_errno = errno;
    f = open_event(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, -1, true);
    char msg[160];
    if (f >= 0) {
        ::close(f);
        out.tier = mode::software;
        std::snprintf(msg, sizeof(msg),
                      "no hardware PMU (%s); perf_event_paranoid=%d",
                      std::strerror(hw_errno), read_paranoid());
        out.reason = msg;
        return out;
    }
    std::snprintf(msg, sizeof(msg),
                  "perf_event_open denied (%s); perf_event_paranoid=%d",
                  std::strerror(errno), read_paranoid());
    out.tier = mode::unavailable;
    out.reason = msg;
    return out;
#else
    out.tier = mode::unavailable;
    out.reason = "perf_event_open unsupported on this platform";
    return out;
#endif
}

thread_local std::string tls_thread_name;

struct tls_group_holder {
    thread_group* g = nullptr;
    bool attempted = false;
    ~tls_group_holder() { release(); }
    void release() noexcept {
        attempted = false;
        if (!g) return;
        {
            std::lock_guard<std::mutex> lk(groups_mutex());
            auto& v = groups();
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (v[i] == g) {
                    v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
                    break;
                }
            }
        }
        g->close_all();
        delete g;
        g = nullptr;
    }
};
thread_local tls_group_holder tls_group;

thread_group* current_group() noexcept {
    if (tls_group.attempted) return tls_group.g;
    tls_group.attempted = true;
    const availability& a = available();
    if (!a.counting()) return nullptr;
    auto g = std::make_unique<thread_group>();
    if (!g->open(a.tier)) return nullptr;  // per-thread failure (fd limit)
#if defined(V6CLASS_HAVE_PERF)
    g->tid = static_cast<std::uint32_t>(::syscall(SYS_gettid));
#endif
    g->name = tls_thread_name;
    tls_group.g = g.release();
    std::lock_guard<std::mutex> lk(groups_mutex());
    groups().push_back(tls_group.g);
    return tls_group.g;
}

// ---- site accumulation: fixed static slots, lock-free lookup.

constexpr std::size_t kMaxSites = 64;

}  // namespace

namespace detail {

struct site_rec {
    const char* name = nullptr;
    std::atomic<std::uint64_t> spans{0};
    std::array<std::atomic<std::uint64_t>, counter_slots> total{};
    std::atomic<unsigned> present_mask{0};
};

namespace {
site_rec g_sites[kMaxSites];
std::atomic<std::size_t> g_site_count{0};
std::mutex g_site_mutex;
}  // namespace

site_rec* intern_site(const char* name) noexcept {
    std::size_t n = g_site_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i)  // fast path: literal identity
        if (g_sites[i].name == name) return &g_sites[i];
    for (std::size_t i = 0; i < n; ++i)  // same literal, other TU
        if (std::strcmp(g_sites[i].name, name) == 0) return &g_sites[i];
    std::lock_guard<std::mutex> lk(g_site_mutex);
    n = g_site_count.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i)
        if (std::strcmp(g_sites[i].name, name) == 0) return &g_sites[i];
    if (n == kMaxSites) return nullptr;  // full: further sites uncounted
    g_sites[n].name = name;
    g_site_count.store(n + 1, std::memory_order_release);
    return &g_sites[n];
}

void scope_end(site_rec* site, const sample& begin) noexcept {
    sample end_s = read_current();
    if (!end_s.ok || !begin.ok) return;
    const std::uint64_t d_en = end_s.time_enabled - begin.time_enabled;
    const std::uint64_t d_run = end_s.time_running - begin.time_running;
    unsigned mask = 0;
    for (unsigned i = 0; i < counter_slots; ++i) {
        if (!end_s.present[i] || !begin.present[i]) continue;
        const std::uint64_t d =
            end_s.raw[i] >= begin.raw[i] ? end_s.raw[i] - begin.raw[i] : 0;
        site->total[i].fetch_add(scale_value(d, d_en, d_run),
                                 std::memory_order_relaxed);
        mask |= 1u << i;
    }
    site->present_mask.fetch_or(mask, std::memory_order_relaxed);
    site->spans.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

const char* counter_name(counter c) noexcept {
    return kCounterNames[slot_of(c)];
}

const char* mode_name(mode m) noexcept {
    switch (m) {
        case mode::hardware: return "hardware";
        case mode::software: return "software";
        case mode::unavailable: return "unavailable";
    }
    return "unavailable";
}

const availability& available() {
    std::lock_guard<std::mutex> lk(probe_mutex());
    if (!g_probed) {
        probe_cache() = run_probe();
        g_probed = true;
    }
    return probe_cache();
}

void enable() noexcept {
    if (available().counting())
        detail::pmu_enabled.store(true, std::memory_order_relaxed);
}

void disable() noexcept {
    detail::pmu_enabled.store(false, std::memory_order_relaxed);
}

bool enabled() noexcept {
    return detail::pmu_enabled.load(std::memory_order_relaxed);
}

std::uint64_t scale_value(std::uint64_t raw, std::uint64_t enabled,
                          std::uint64_t running) noexcept {
    if (running == 0) return enabled == 0 ? raw : 0;
    if (enabled == running) return raw;
    const double scaled = static_cast<double>(raw) *
                          (static_cast<double>(enabled) /
                           static_cast<double>(running));
    return static_cast<std::uint64_t>(scaled + 0.5);
}

sample read_current() noexcept {
    sample s{};
    thread_group* g = current_group();
    if (g) g->read_sample(s);
    return s;
}

double site_stats::ipc() const noexcept {
    const std::uint64_t cyc = (*this)[counter::cycles];
    if (!has(counter::cycles) || !has(counter::instructions) || cyc == 0)
        return 0.0;
    return static_cast<double>((*this)[counter::instructions]) /
           static_cast<double>(cyc);
}

double site_stats::cache_miss_rate() const noexcept {
    const std::uint64_t refs = (*this)[counter::cache_references];
    if (!has(counter::cache_references) || !has(counter::cache_misses) ||
        refs == 0)
        return 0.0;
    return static_cast<double>((*this)[counter::cache_misses]) /
           static_cast<double>(refs);
}

double site_stats::branch_miss_rate() const noexcept {
    const std::uint64_t br = (*this)[counter::branches];
    if (!has(counter::branches) || !has(counter::branch_misses) || br == 0)
        return 0.0;
    return static_cast<double>((*this)[counter::branch_misses]) /
           static_cast<double>(br);
}

namespace {

site_stats load_site(const detail::site_rec& rec) {
    site_stats st;
    st.name = rec.name;
    st.spans = rec.spans.load(std::memory_order_relaxed);
    const unsigned mask = rec.present_mask.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < counter_slots; ++i) {
        st.total[i] = rec.total[i].load(std::memory_order_relaxed);
        st.present[i] = (mask >> i) & 1u;
    }
    return st;
}

}  // namespace

std::vector<site_stats> site_snapshot() {
    std::vector<site_stats> out;
    const std::size_t n =
        detail::g_site_count.load(std::memory_order_acquire);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(load_site(detail::g_sites[i]));
    return out;
}

site_stats site_totals(const char* name) {
    const std::size_t n =
        detail::g_site_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i)
        if (std::strcmp(detail::g_sites[i].name, name) == 0)
            return load_site(detail::g_sites[i]);
    site_stats st;
    st.name = name;
    return st;
}

std::vector<thread_sample> thread_snapshot() {
    std::vector<thread_sample> out;
    std::lock_guard<std::mutex> lk(groups_mutex());
    out.reserve(groups().size());
    for (const thread_group* g : groups()) {
        thread_sample ts;
        ts.tid = g->tid;
        ts.name = g->name;
        if (ts.name.empty()) ts.name = "tid-" + std::to_string(g->tid);
        g->read_sample(ts.s);
        out.push_back(std::move(ts));
    }
    return out;
}

void note_thread_name(const std::string& name) {
    tls_thread_name = name;
    if (tls_group.g) {
        std::lock_guard<std::mutex> lk(groups_mutex());
        tls_group.g->name = name;
    }
}

void reset_for_test() {
    disable();
    tls_group.release();
    {
        std::lock_guard<std::mutex> lk(detail::g_site_mutex);
        const std::size_t n =
            detail::g_site_count.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i) {
            detail::g_sites[i].spans.store(0, std::memory_order_relaxed);
            detail::g_sites[i].present_mask.store(0,
                                                  std::memory_order_relaxed);
            for (auto& t : detail::g_sites[i].total)
                t.store(0, std::memory_order_relaxed);
        }
        detail::g_site_count.store(0, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lk(probe_mutex());
    g_probed = false;
}

// ---- rendering -----------------------------------------------------

namespace {

void json_escape_to(std::string& out, const std::string& s) {
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

void append_num(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void append_counters_json(std::string& out,
                          const std::array<std::uint64_t, counter_slots>& v,
                          const std::array<bool, counter_slots>& present) {
    out += "{";
    bool first = true;
    for (unsigned i = 0; i < counter_slots; ++i) {
        if (!present[i]) continue;
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += kCounterNames[i];
        out += "\":";
        append_u64(out, v[i]);
    }
    out += "}";
}

double sample_ipc(const sample& s) {
    if (!s.has(counter::cycles) || !s.has(counter::instructions)) return 0.0;
    const std::uint64_t cyc = s.scaled(counter::cycles);
    if (cyc == 0) return 0.0;
    return static_cast<double>(s.scaled(counter::instructions)) /
           static_cast<double>(cyc);
}

void html_escape_to(std::string& out, const std::string& s) {
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
}

}  // namespace

std::string snapshot_json() {
    const availability& a = available();
    std::string out;
    out.reserve(2048);
    out += "{\"mode\":\"";
    out += mode_name(a.tier);
    out += "\",\"reason\":\"";
    json_escape_to(out, a.reason);
    out += "\",\"enabled\":";
    out += enabled() ? "true" : "false";
    out += ",\"threads\":[";
    bool first = true;
    for (const thread_sample& ts : thread_snapshot()) {
        if (!ts.s.ok) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"tid\":";
        append_u64(out, ts.tid);
        out += ",\"name\":\"";
        json_escape_to(out, ts.name);
        out += "\",\"time_enabled\":";
        append_u64(out, ts.s.time_enabled);
        out += ",\"time_running\":";
        append_u64(out, ts.s.time_running);
        std::array<std::uint64_t, counter_slots> scaled{};
        for (unsigned i = 0; i < counter_slots; ++i)
            scaled[i] = ts.s.scaled(static_cast<counter>(i));
        out += ",\"counters\":";
        append_counters_json(out, scaled, ts.s.present);
        out += ",\"ipc\":";
        append_num(out, sample_ipc(ts.s));
        out += "}";
    }
    out += "],\"sites\":[";
    first = true;
    for (const site_stats& st : site_snapshot()) {
        if (st.spans == 0) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"site\":\"";
        json_escape_to(out, st.name);
        out += "\",\"spans\":";
        append_u64(out, st.spans);
        out += ",\"counters\":";
        append_counters_json(out, st.total, st.present);
        out += ",\"ipc\":";
        append_num(out, st.ipc());
        out += ",\"cache_miss_rate\":";
        append_num(out, st.cache_miss_rate());
        out += ",\"branch_miss_rate\":";
        append_num(out, st.branch_miss_rate());
        out += "}";
    }
    out += "]}";
    return out;
}

std::string topdown_html() {
    const availability& a = available();
    std::string out;
    out.reserve(4096);
    out +=
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        "<title>v6class pmu</title><style>"
        "body{font-family:system-ui,sans-serif;background:#11161d;"
        "color:#d5dde6;margin:24px}"
        "h1{font-size:20px}h2{font-size:15px;color:#8fa3b8;margin-top:28px}"
        "table{border-collapse:collapse;font-size:13px;font-variant-numeric:"
        "tabular-nums}"
        "th,td{padding:4px 12px;text-align:right;border-bottom:1px solid "
        "#273243}"
        "th{color:#8fa3b8;font-weight:600}"
        "td:first-child,th:first-child{text-align:left}"
        ".muted{color:#64748b}</style></head><body>"
        "<h1>hardware counters</h1><p class=\"muted\">mode: ";
    html_escape_to(out, mode_name(a.tier));
    out += " &middot; ";
    html_escape_to(out, a.reason);
    out += " &middot; scopes ";
    out += enabled() ? "enabled" : "disabled";
    out += "</p>";

    auto fmt_cell = [](std::string& o, std::uint64_t v, bool present) {
        o += "<td>";
        if (present)
            append_u64(o, v);
        else
            o += "&mdash;";
        o += "</td>";
    };
    auto pct = [](std::string& o, double v) {
        o += "<td>";
        append_num(o, v * 100.0);
        o += "%</td>";
    };

    out += "<h2>threads</h2><table><tr><th>thread</th><th>tid</th>"
           "<th>task-clock ms</th><th>cycles</th><th>instr</th><th>IPC</th>"
           "<th>cache refs</th><th>cache miss%</th><th>branches</th>"
           "<th>branch miss%</th><th>faults</th><th>mux%</th></tr>";
    for (const thread_sample& ts : thread_snapshot()) {
        if (!ts.s.ok) continue;
        out += "<tr><td>";
        html_escape_to(out, ts.name);
        out += "</td><td>";
        append_u64(out, ts.tid);
        out += "</td><td>";
        append_num(out, static_cast<double>(
                            ts.s.scaled(counter::task_clock_ns)) /
                            1e6);
        out += "</td>";
        fmt_cell(out, ts.s.scaled(counter::cycles), ts.s.has(counter::cycles));
        fmt_cell(out, ts.s.scaled(counter::instructions),
                 ts.s.has(counter::instructions));
        out += "<td>";
        append_num(out, sample_ipc(ts.s));
        out += "</td>";
        fmt_cell(out, ts.s.scaled(counter::cache_references),
                 ts.s.has(counter::cache_references));
        const std::uint64_t refs = ts.s.scaled(counter::cache_references);
        pct(out, refs ? static_cast<double>(
                            ts.s.scaled(counter::cache_misses)) /
                            static_cast<double>(refs)
                      : 0.0);
        fmt_cell(out, ts.s.scaled(counter::branches),
                 ts.s.has(counter::branches));
        const std::uint64_t br = ts.s.scaled(counter::branches);
        pct(out, br ? static_cast<double>(
                          ts.s.scaled(counter::branch_misses)) /
                          static_cast<double>(br)
                    : 0.0);
        fmt_cell(out, ts.s.scaled(counter::page_faults),
                 ts.s.has(counter::page_faults));
        pct(out, ts.s.time_enabled
                     ? static_cast<double>(ts.s.time_running) /
                           static_cast<double>(ts.s.time_enabled)
                     : 1.0);
        out += "</tr>";
    }
    out += "</table>";

    out += "<h2>sites</h2><table><tr><th>site</th><th>spans</th>"
           "<th>task-clock ms</th><th>cycles</th><th>instr</th><th>IPC</th>"
           "<th>cache miss%</th><th>branch miss%</th><th>faults</th></tr>";
    for (const site_stats& st : site_snapshot()) {
        if (st.spans == 0) continue;
        out += "<tr><td>";
        html_escape_to(out, st.name);
        out += "</td><td>";
        append_u64(out, st.spans);
        out += "</td><td>";
        append_num(out,
                   static_cast<double>(st[counter::task_clock_ns]) / 1e6);
        out += "</td>";
        fmt_cell(out, st[counter::cycles], st.has(counter::cycles));
        fmt_cell(out, st[counter::instructions],
                 st.has(counter::instructions));
        out += "<td>";
        append_num(out, st.ipc());
        out += "</td>";
        pct(out, st.cache_miss_rate());
        pct(out, st.branch_miss_rate());
        fmt_cell(out, st[counter::page_faults], st.has(counter::page_faults));
        out += "</tr>";
    }
    out += "</table></body></html>";
    return out;
}

void export_gauges(registry& reg) {
    const availability& a = available();
    reg.get_gauge("v6class_pmu_available",
                  {{"mode", mode_name(a.tier)}, {"reason", a.reason}},
                  "PMU availability tier (0 unavailable, 1 software-only, "
                  "2 hardware)")
        .set(static_cast<int>(a.tier));
    for (const site_stats& st : site_snapshot()) {
        if (st.spans == 0) continue;
        const label_list labels{{"site", st.name}};
        reg.get_gauge("v6class_pmu_site_spans", labels,
                      "pmu_scope activations recorded per site")
            .set(static_cast<std::int64_t>(st.spans));
        if (st.has(counter::task_clock_ns))
            reg.get_dgauge("v6class_pmu_task_clock_seconds", labels,
                           "CPU seconds attributed to the site")
                .set(static_cast<double>(st[counter::task_clock_ns]) / 1e9);
        if (st.has(counter::cycles) && st.has(counter::instructions))
            reg.get_dgauge("v6class_pmu_ipc", labels,
                           "instructions per cycle inside the site")
                .set(st.ipc());
        if (st.has(counter::cache_references) &&
            st.has(counter::cache_misses))
            reg.get_dgauge("v6class_pmu_cache_miss_rate", labels,
                           "cache misses / cache references inside the site")
                .set(st.cache_miss_rate());
        if (st.has(counter::branches) && st.has(counter::branch_misses))
            reg.get_dgauge("v6class_pmu_branch_miss_rate", labels,
                           "branch misses / branches inside the site")
                .set(st.branch_miss_rate());
    }
}

}  // namespace pmu

void pmu_scope::begin(const char* site) noexcept {
    pmu::sample s = pmu::read_current();
    if (!s.ok) return;
    pmu::detail::site_rec* rec = pmu::detail::intern_site(site);
    if (!rec) return;
    begin_ = s;
    site_ = rec;
}

}  // namespace v6::obs
