#include "v6class/obs/event_log.h"

#include <chrono>
#include <cstdio>

#include "v6class/obs/atomic_file.h"

namespace v6::obs {

namespace {

/// JSON string escaping; same character set the metrics exporters use.
std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

}  // namespace

const char* event_level_name(event_level level) noexcept {
    switch (level) {
        case event_level::info: return "info";
        case event_level::warn: return "warn";
        case event_level::error: return "error";
    }
    return "info";
}

std::string event_field_number(double v) {
    char buf[64];
    // %.17g round-trips but is noisy; %.12g is plenty for event payloads.
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

std::string event_field_string(const std::string& v) {
    return "\"" + escape(v) + "\"";
}

std::string event_json(const event& e) {
    char head[96];
    std::snprintf(head, sizeof head, "{\"seq\":%llu,\"time\":%.3f,",
                  static_cast<unsigned long long>(e.seq), e.unix_time);
    std::string out = head;
    out += "\"level\":\"";
    out += event_level_name(e.level);
    out += "\",\"kind\":\"" + escape(e.kind) + "\",\"message\":\"" +
           escape(e.message) + "\",\"fields\":{";
    for (std::size_t i = 0; i < e.fields.size(); ++i) {
        if (i) out += ',';
        out += "\"" + escape(e.fields[i].first) + "\":" + e.fields[i].second;
    }
    out += "}}";
    return out;
}

event_log::~event_log() {
    std::lock_guard lock(mutex_);
    if (file_) std::fclose(file_);
}

void event_log::log(event_level level, std::string kind, std::string message,
                    event_fields fields) {
    event e;
    e.unix_time = std::chrono::duration<double>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
    e.level = level;
    e.kind = std::move(kind);
    e.message = std::move(message);
    e.fields = std::move(fields);
    std::lock_guard lock(mutex_);
    e.seq = ++total_;
    if (file_) {
        const std::string line = event_json(e) + "\n";
        if (file_max_bytes_ > 0 && file_bytes_ + line.size() > file_max_bytes_ &&
            file_bytes_ > 0)
            rotate_file_locked();
        if (file_) {
            if (std::fwrite(line.data(), 1, line.size(), file_) == line.size())
                file_bytes_ += line.size();
            std::fflush(file_);
            file_bytes_gauge_.set(static_cast<std::int64_t>(file_bytes_));
        }
    }
    events_.push_back(std::move(e));
    if (events_.size() > keep_) events_.pop_front();
}

void event_log::rotate_file_locked() {
    std::fclose(file_);
    file_ = nullptr;
    const std::string old = file_path_ + ".1";
    std::remove(old.c_str());
    std::rename(file_path_.c_str(), old.c_str());
    file_ = std::fopen(file_path_.c_str(), "w");
    file_bytes_ = 0;
    ++rotation_count_;
    rotations_.inc();
    file_bytes_gauge_.set(0);
    // When the reopen fails (directory vanished) streaming stops; the
    // in-memory log is unaffected.
}

bool event_log::enable_file(const std::string& path, std::uint64_t max_bytes,
                            registry* reg) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::lock_guard lock(mutex_);
    if (file_) std::fclose(file_);
    file_ = f;
    file_path_ = path;
    file_max_bytes_ = max_bytes;
    file_bytes_ = 0;
    if (reg) {
        rotations_ = reg->get_counter(
            "v6class_event_log_rotations_total", {},
            "Size-capped rotations of the streaming --events-out file.");
        file_bytes_gauge_ = reg->get_gauge(
            "v6class_event_log_file_bytes", {},
            "Current size of the streaming --events-out file.");
    }
    for (const event& e : events_) {
        const std::string line = event_json(e) + "\n";
        if (std::fwrite(line.data(), 1, line.size(), file_) == line.size())
            file_bytes_ += line.size();
    }
    std::fflush(file_);
    file_bytes_gauge_.set(static_cast<std::int64_t>(file_bytes_));
    return true;
}

bool event_log::file_enabled() const {
    std::lock_guard lock(mutex_);
    return file_ != nullptr;
}

std::uint64_t event_log::rotations() const {
    std::lock_guard lock(mutex_);
    return rotation_count_;
}

std::uint64_t event_log::file_bytes() const {
    std::lock_guard lock(mutex_);
    return file_bytes_;
}

std::vector<event> event_log::since(std::uint64_t after_seq) const {
    std::lock_guard lock(mutex_);
    std::vector<event> out;
    for (const event& e : events_)
        if (e.seq > after_seq) out.push_back(e);
    return out;
}

std::uint64_t event_log::total() const {
    std::lock_guard lock(mutex_);
    return total_;
}

std::vector<event> event_log::recent(std::size_t n) const {
    std::lock_guard lock(mutex_);
    const std::size_t count = std::min(n, events_.size());
    return {events_.end() - static_cast<std::ptrdiff_t>(count), events_.end()};
}

std::string event_log::json_lines() const {
    std::lock_guard lock(mutex_);
    std::string out;
    for (const event& e : events_) {
        out += event_json(e);
        out += '\n';
    }
    return out;
}

bool event_log::dump(const std::string& path) const {
    return atomic_write_file(path, json_lines());
}

event_log& event_log::global() {
    static event_log log;
    return log;
}

}  // namespace v6::obs
