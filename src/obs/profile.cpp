// profile.cpp — SIGPROF sampling profiler.
//
// Shape: one sampler thread wakes at the configured rate and
// pthread_kill()s every registered thread; the SIGPROF handler runs on
// the signaled thread, walks its own stack with ::backtrace() into a
// stack-local array, and copies the frames into that thread's sample
// buffer with relaxed atomic stores (single writer per buffer — a
// thread's handler cannot race itself, SIGPROF does not nest).
//
// Registration is cheap: register_thread() records the thread handle
// and name only. Sample buffers (~2 MB each) are allocated by start()
// for every registered thread and handed to the owning thread through a
// per-thread atomic pointer slot — so pipelines that name their workers
// unconditionally pay nothing until a profile is actually requested.
//
// Safety invariants:
//  - ::backtrace() is warmed (called once) before the first signal, so
//    its lazy dynamic-linker initialization never runs in the handler.
//  - The handler finds its buffer through a trivially-destructible
//    thread_local atomic pointer, cleared FIRST in the unregister path,
//    so a signal landing during thread teardown drops the sample
//    instead of touching freed state.
//  - The sampler only signals threads while holding the registry mutex;
//    unregistration removes the entry under the same mutex before the
//    thread exits, so pthread_kill never targets a joined thread.
//  - Buffers are shared_ptr-held and moved to a retired list at thread
//    exit, so folded_text() still sees samples from finished workers.
#include "v6class/obs/profile.h"

#if defined(__has_include)
#if __has_include(<execinfo.h>) && __has_include(<dlfcn.h>) && \
    __has_include(<pthread.h>)
#define V6CLASS_PROFILER_SUPPORTED 1
#endif
#endif

#ifndef V6CLASS_PROFILER_SUPPORTED
#define V6CLASS_PROFILER_SUPPORTED 0
#endif

#if V6CLASS_PROFILER_SUPPORTED
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cxxabi.h>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace v6::obs {

namespace {

struct sample_buffer {
    // Flat frame storage: sample k occupies pcs[k*max_depth ..]; head
    // published last (release) so the reader never sees a half-written
    // sample. No wraparound: once full, samples are counted as dropped
    // — early samples are kept, which suits one-shot profile-a-run use.
    std::vector<std::atomic<void*>> pcs;
    std::vector<std::atomic<std::uint16_t>> depths;
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> dropped{0};
    std::string name;

    sample_buffer()
        : pcs(profiler::samples_per_thread * profiler::max_depth),
          depths(profiler::samples_per_thread) {}
};

// The handler's only route to its buffer: a per-thread atomic slot.
// start() (another thread) stores the buffer pointer here; the handler
// loads it. Trivially destructible, so it stays readable even during
// thread_local destruction; unregistration nulls it before anything is
// released.
thread_local std::atomic<sample_buffer*> tl_slot{nullptr};

struct live_thread {
    pthread_t handle{};
    std::atomic<sample_buffer*>* slot = nullptr;  // &tl_slot of that thread
    std::string name;
    std::shared_ptr<sample_buffer> buf;  // null until a profile starts
};

struct prof_registry {
    std::mutex mutex;
    std::vector<live_thread> live;
    std::vector<std::shared_ptr<sample_buffer>> retired;
    std::atomic<bool> running{false};
    std::thread sampler;
};

prof_registry& reg() {
    static prof_registry* r = new prof_registry;  // leaked: see trace.cpp
    return *r;
}

void prof_signal_handler(int, siginfo_t*, void*) {
    sample_buffer* buf = tl_slot.load(std::memory_order_relaxed);
    if (buf == nullptr) return;
    const std::uint64_t h = buf->head.load(std::memory_order_relaxed);
    if (h >= profiler::samples_per_thread) {
        buf->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    void* frames[profiler::max_depth];
    const int depth = ::backtrace(frames, profiler::max_depth);
    if (depth <= 0) return;
    std::atomic<void*>* slot = buf->pcs.data() + h * profiler::max_depth;
    for (int i = 0; i < depth; ++i)
        slot[i].store(frames[i], std::memory_order_relaxed);
    buf->depths[h].store(static_cast<std::uint16_t>(depth),
                         std::memory_order_relaxed);
    buf->head.store(h + 1, std::memory_order_release);
}

struct thread_guard {
    ~thread_guard() {
        tl_slot.store(nullptr, std::memory_order_relaxed);
        prof_registry& r = reg();
        std::lock_guard<std::mutex> lock(r.mutex);
        const pthread_t self = pthread_self();
        for (auto it = r.live.begin(); it != r.live.end(); ++it) {
            if (pthread_equal(it->handle, self)) {
                if (it->buf) {
                    it->buf->name = it->name;
                    r.retired.push_back(std::move(it->buf));
                }
                r.live.erase(it);
                break;
            }
        }
    }
};

void sampler_loop(unsigned hz) {
    prof_registry& r = reg();
    const auto period =
        std::chrono::nanoseconds(1'000'000'000ull / std::max(1u, hz));
    while (r.running.load(std::memory_order_relaxed)) {
        {
            std::lock_guard<std::mutex> lock(r.mutex);
            for (const live_thread& t : r.live)
                if (t.buf) pthread_kill(t.handle, SIGPROF);
        }
        std::this_thread::sleep_for(period);
    }
}

std::string frame_name(void* pc) {
    Dl_info info{};
    if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
        int status = 0;
        char* demangled =
            abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
        if (status == 0 && demangled != nullptr) {
            std::string out(demangled);
            std::free(demangled);
            return out;
        }
        return info.dli_sname;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(
                      reinterpret_cast<std::uintptr_t>(pc)));
    return buf;
}

/// Gives `t` its buffer and publishes it to the owning thread's slot.
/// Registry mutex held.
void arm_thread(live_thread& t) {
    if (t.buf) return;
    t.buf = std::make_shared<sample_buffer>();
    t.buf->name = t.name;
    t.slot->store(t.buf.get(), std::memory_order_release);
}

}  // namespace

bool profiler::start(unsigned hz) {
    prof_registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (r.running.load(std::memory_order_relaxed)) return false;

        struct sigaction sa{};
        sa.sa_sigaction = prof_signal_handler;
        sa.sa_flags = SA_RESTART | SA_SIGINFO;
        sigemptyset(&sa.sa_mask);
        if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;

        // Warm ::backtrace outside the handler: its first call may
        // dlopen libgcc, which is not async-signal-safe.
        void* warm[4];
        ::backtrace(warm, 4);

        // Fresh run: drop samples from any previous start/stop cycle
        // and arm every registered thread. No signals are in flight
        // here (the old sampler was joined before running went true).
        r.retired.clear();
        for (live_thread& t : r.live) {
            arm_thread(t);
            t.buf->head.store(0, std::memory_order_relaxed);
            t.buf->dropped.store(0, std::memory_order_relaxed);
        }

        r.running.store(true, std::memory_order_relaxed);
        r.sampler = std::thread(sampler_loop, hz);
    }
    register_thread("main");
    return true;
}

void profiler::stop() {
    prof_registry& r = reg();
    std::thread sampler;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (!r.running.load(std::memory_order_relaxed)) return;
        r.running.store(false, std::memory_order_relaxed);
        sampler = std::move(r.sampler);
    }
    if (sampler.joinable()) sampler.join();
}

bool profiler::running() noexcept {
    return reg().running.load(std::memory_order_relaxed);
}

void profiler::register_thread(const std::string& name) {
    static thread_local thread_guard guard;  // unregisters at thread exit
    (void)guard;
    prof_registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mutex);
    const pthread_t self = pthread_self();
    for (live_thread& t : r.live) {
        if (pthread_equal(t.handle, self)) {
            t.name = name;
            if (t.buf) t.buf->name = name;
            return;
        }
    }
    live_thread t;
    t.handle = self;
    t.slot = &tl_slot;
    t.name = name;
    if (r.running.load(std::memory_order_relaxed)) arm_thread(t);
    r.live.push_back(std::move(t));
}

std::uint64_t profiler::sample_count() noexcept {
    prof_registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::uint64_t total = 0;
    for (const live_thread& t : r.live)
        if (t.buf) total += t.buf->head.load(std::memory_order_acquire);
    for (const auto& b : r.retired)
        total += b->head.load(std::memory_order_acquire);
    return total;
}

std::uint64_t profiler::dropped() noexcept {
    prof_registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::uint64_t total = 0;
    for (const live_thread& t : r.live)
        if (t.buf) total += t.buf->dropped.load(std::memory_order_relaxed);
    for (const auto& b : r.retired)
        total += b->dropped.load(std::memory_order_relaxed);
    return total;
}

std::string profiler::folded_text() {
    std::vector<std::shared_ptr<sample_buffer>> buffers;
    std::vector<std::string> names;
    {
        prof_registry& r = reg();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (const live_thread& t : r.live) {
            if (!t.buf) continue;
            buffers.push_back(t.buf);
            names.push_back(t.name);
        }
        for (const auto& b : r.retired) {
            buffers.push_back(b);
            names.push_back(b->name);
        }
    }

    // Aggregate identical stacks, then symbolize each distinct pc once.
    std::map<std::pair<std::string, std::vector<void*>>, std::uint64_t> stacks;
    for (std::size_t bi = 0; bi < buffers.size(); ++bi) {
        const auto& buf = buffers[bi];
        const std::uint64_t n = std::min<std::uint64_t>(
            buf->head.load(std::memory_order_acquire), samples_per_thread);
        for (std::uint64_t k = 0; k < n; ++k) {
            const int depth = buf->depths[k].load(std::memory_order_relaxed);
            const std::atomic<void*>* slot = buf->pcs.data() + k * max_depth;
            // Frames 0..1 are the handler and the kernel's signal
            // trampoline; drop them so stacks start at the interrupted
            // frame (best-effort — extra frames only widen the base).
            const int first = depth > 2 ? 2 : 0;
            std::vector<void*> stack;
            stack.reserve(static_cast<std::size_t>(depth - first));
            for (int i = depth - 1; i >= first; --i)  // outermost first
                stack.push_back(slot[i].load(std::memory_order_relaxed));
            ++stacks[{names[bi].empty() ? "thread" : names[bi],
                      std::move(stack)}];
        }
    }

    std::map<void*, std::string> symbols;
    std::string out;
    for (const auto& [key, count] : stacks) {
        out += key.first;
        for (void* pc : key.second) {
            auto it = symbols.find(pc);
            if (it == symbols.end())
                it = symbols.emplace(pc, frame_name(pc)).first;
            out += ';';
            // Folded format reserves ';' and ' ' as separators.
            for (char c : it->second) out += (c == ';' || c == ' ') ? '_' : c;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, " %llu\n",
                      static_cast<unsigned long long>(count));
        out += buf;
    }
    return out;
}

}  // namespace v6::obs

#else  // !V6CLASS_PROFILER_SUPPORTED

namespace v6::obs {

bool profiler::start(unsigned) { return false; }
void profiler::stop() {}
bool profiler::running() noexcept { return false; }
void profiler::register_thread(const std::string&) {}
std::uint64_t profiler::sample_count() noexcept { return 0; }
std::uint64_t profiler::dropped() noexcept { return 0; }
std::string profiler::folded_text() { return {}; }

}  // namespace v6::obs

#endif
