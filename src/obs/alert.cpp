#include "v6class/obs/alert.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace v6::obs {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

bool parse_number(const std::string& s, double& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

}  // namespace

const char* alert_state_name(alert_state s) noexcept {
    switch (s) {
        case alert_state::inactive: return "inactive";
        case alert_state::pending: return "pending";
        case alert_state::firing: return "firing";
        case alert_state::resolved: return "resolved";
    }
    return "inactive";
}

std::optional<std::vector<alert_rule>> parse_alert_rules(
    const std::string& text, std::string* error) {
    std::vector<alert_rule> rules;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    const auto fail = [&](const std::string& what) {
        if (error)
            *error = "line " + std::to_string(lineno) + ": " + what;
        return std::nullopt;
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream words(line);
        std::string word;
        alert_rule rule;
        int conditions = 0;
        bool named = false;
        while (words >> word) {
            if (!named) {
                if (word.find('=') != std::string::npos)
                    return fail("rule name must come first");
                rule.name = word;
                named = true;
                continue;
            }
            const auto eq = word.find('=');
            if (eq == std::string::npos)
                return fail("expected key=value, got '" + word + "'");
            const std::string key = word.substr(0, eq);
            const std::string value = word.substr(eq + 1);
            double num = 0;
            if (key == "series") {
                rule.series = value;
            } else if (key == "label") {
                rule.label = value;
            } else if (key == "event") {
                rule.event_kind = value;
                rule.cond = alert_cond::event;
                ++conditions;
            } else if (key == "above" || key == "below" || key == "delta" ||
                       key == "absent") {
                if (!parse_number(value, num))
                    return fail("bad number '" + value + "' for " + key);
                rule.threshold = num;
                rule.cond = key == "above"   ? alert_cond::above
                            : key == "below" ? alert_cond::below
                            : key == "delta" ? alert_cond::delta
                                             : alert_cond::absent;
                ++conditions;
            } else if (key == "node") {
                // Fleet sugar: node=<id> expands to an absent-rule over
                // the aggregator's per-node liveness series, so a rules
                // file can say "collector-gone node=edge1 for=2" without
                // spelling the synthetic series name.
                if (value.empty())
                    return fail("node= needs a collector id");
                rule.series = "v6fleet_node_up";
                rule.label = "node=" + value;
                rule.cond = alert_cond::absent;
                rule.threshold = 1;
                ++conditions;
            } else if (key == "for") {
                if (!parse_number(value, num) || num < 0)
                    return fail("bad number '" + value + "' for for");
                rule.hold = static_cast<std::uint32_t>(num);
            } else if (key == "level") {
                if (value == "info")
                    rule.level = event_level::info;
                else if (value == "warn")
                    rule.level = event_level::warn;
                else if (value == "error")
                    rule.level = event_level::error;
                else
                    return fail("bad level '" + value + "'");
            } else {
                return fail("unknown key '" + key + "'");
            }
        }
        if (!named) continue;  // blank / comment-only line
        if (conditions != 1)
            return fail(
                "rule '" + rule.name +
                "' needs exactly one of above/below/delta/absent/event/node");
        if (rule.cond != alert_cond::event && rule.series.empty())
            return fail("rule '" + rule.name + "' needs series=");
        if (rule.cond == alert_cond::absent && rule.threshold < 1)
            return fail("rule '" + rule.name + "': absent= must be >= 1");
        rules.push_back(std::move(rule));
    }
    return rules;
}

alert_engine::alert_engine(registry* reg, event_log* log)
    : registry_(reg), log_(log) {
    if (reg) {
        pending_total_ = reg->get_counter(
            "v6class_alerts_pending_total", {},
            "Alert rules that entered the pending state.");
        firing_total_ = reg->get_counter("v6class_alerts_firing_total", {},
                                         "Alert rules that started firing.");
        resolved_total_ = reg->get_counter("v6class_alerts_resolved_total", {},
                                           "Firing alerts that resolved.");
        pending_gauge_ = reg->get_gauge("v6class_alerts_pending", {},
                                        "Alert rules currently pending.");
        firing_gauge_ = reg->get_gauge("v6class_alerts_firing", {},
                                       "Alert rules currently firing.");
    }
    if (log) event_cursor_ = log->total();  // only future events count
}

void alert_engine::load_rules(std::vector<alert_rule> rules) {
    std::lock_guard lock(mutex_);
    std::vector<rule_state> next;
    next.reserve(rules.size());
    for (alert_rule& r : rules) {
        rule_state rs;
        // Definition-identical rule: carry the whole state over so a
        // SIGHUP never resolves an untouched firing alert.
        for (rule_state& old : rules_) {
            if (old.rule == r) {
                rs = std::move(old);
                old.rule.name.clear();  // consumed; don't match twice
                break;
            }
        }
        rs.rule = std::move(r);
        next.push_back(std::move(rs));
    }
    rules_ = std::move(next);
    std::int64_t pending = 0, firing = 0;
    for (const rule_state& rs : rules_) {
        pending += rs.state == alert_state::pending;
        firing += rs.state == alert_state::firing;
    }
    pending_gauge_.set(pending);
    firing_gauge_.set(firing);
}

bool alert_engine::load_file(const std::string& path, std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error) *error = path + ": cannot open";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto rules = parse_alert_rules(buf.str(), error);
    if (!rules) {
        if (error) *error = path + ": " + *error;
        return false;
    }
    load_rules(std::move(*rules));
    return true;
}

void alert_engine::set_notify_command(std::string cmd) {
    std::lock_guard lock(mutex_);
    notify_command_ = std::move(cmd);
}

void alert_engine::transition_locked(rule_state& rs, alert_state next,
                                     std::int64_t ts) {
    const alert_state prev = rs.state;
    if (prev == next) return;
    rs.state = next;
    rs.since_ts = ts;
    if (next == alert_state::pending) pending_total_.inc();
    if (next == alert_state::firing) firing_total_.inc();
    if (next == alert_state::resolved) resolved_total_.inc();
    // inactive<->pending flaps are book-keeping; firing and resolved
    // are the transitions an operator acts on.
    const bool notable = next == alert_state::firing ||
                         next == alert_state::resolved;
    if (!notable) return;
    event_fields fields;
    fields.emplace_back("alert", event_field_string(rs.rule.name));
    fields.emplace_back("state",
                        event_field_string(alert_state_name(next)));
    fields.emplace_back("ts", event_field_number(static_cast<double>(ts)));
    if (rs.current)
        fields.emplace_back("value", event_field_number(*rs.current));
    if (log_)
        log_->log(next == alert_state::firing ? rs.rule.level
                                              : event_level::info,
                  "alert",
                  "alert " + rs.rule.name + " " + alert_state_name(next),
                  fields);
    if (!notify_command_.empty()) {
        std::string json = "{\"alert\":\"" + json_escape(rs.rule.name) +
                           "\",\"state\":\"" + alert_state_name(next) +
                           "\",\"ts\":" + std::to_string(ts) + "}";
        // Single-quote for the shell; a single quote inside the JSON
        // becomes '\'' (close, escaped quote, reopen).
        std::string arg = "'";
        for (char c : json)
            if (c == '\'')
                arg += "'\\''";
            else
                arg += c;
        arg += "'";
        // Queued, not run: the command executes after evaluate()
        // releases the mutex, so a slow or hung notifier can never
        // block status_json()/firing_count() or a seal in flight.
        notify_queue_.push_back(notify_command_ + " " + arg);
    }
}

void alert_engine::evaluate(const sampler& sample, std::int64_t ts) {
    std::vector<std::string> notifications;
    std::unique_lock lock(mutex_);
    ++evaluations_;
    // Drain events that arrived since the previous evaluation once,
    // shared by every event rule.
    std::vector<event> fresh;
    if (log_) {
        fresh = log_->since(event_cursor_);
        if (!fresh.empty()) event_cursor_ = fresh.back().seq;
        // Ignore this engine's own "alert" events: a firing transition
        // must not retrigger an event rule next round.
        std::erase_if(fresh, [](const event& e) { return e.kind == "alert"; });
    }
    for (rule_state& rs : rules_) {
        const alert_rule& r = rs.rule;
        // Decide this round's condition. nullopt = no information
        // (freeze the streak, stay in the current state).
        std::optional<bool> cond;
        if (r.cond == alert_cond::event) {
            bool matched = false;
            for (const event& e : fresh) matched |= e.kind == r.event_kind;
            cond = matched;
        } else {
            const std::optional<double> v = sample ? sample(r.series, r.label)
                                                   : std::nullopt;
            if (v) {
                rs.current = v;
                rs.missing = 0;
                switch (r.cond) {
                    case alert_cond::above: cond = *v > r.threshold; break;
                    case alert_cond::below: cond = *v < r.threshold; break;
                    case alert_cond::delta:
                        if (rs.last_sample) {
                            const double base =
                                std::max(std::fabs(*rs.last_sample), 1e-9);
                            cond = std::fabs(*v - *rs.last_sample) / base >
                                   r.threshold;
                        } else {
                            cond = false;  // first sample: no rate yet
                        }
                        break;
                    case alert_cond::absent: cond = false; break;
                    default: break;
                }
                rs.last_sample = v;
            } else {
                ++rs.missing;
                if (r.cond == alert_cond::absent)
                    cond = rs.missing >= static_cast<std::uint32_t>(r.threshold);
                // Other sampled rules: cond stays nullopt — freeze.
            }
        }
        if (!cond) {
            // A resolved state still decays even without information.
            if (rs.state == alert_state::resolved)
                transition_locked(rs, alert_state::inactive, ts);
            continue;
        }
        if (*cond) {
            ++rs.streak;
            switch (rs.state) {
                case alert_state::inactive:
                case alert_state::resolved:
                    rs.streak = 1;
                    transition_locked(rs, alert_state::pending, ts);
                    if (rs.streak > r.hold)
                        transition_locked(rs, alert_state::firing, ts);
                    break;
                case alert_state::pending:
                    if (rs.streak > r.hold)
                        transition_locked(rs, alert_state::firing, ts);
                    break;
                case alert_state::firing:
                    break;
            }
        } else {
            rs.streak = 0;
            switch (rs.state) {
                case alert_state::firing:
                    transition_locked(rs, alert_state::resolved, ts);
                    break;
                case alert_state::pending:
                case alert_state::resolved:
                    transition_locked(rs, alert_state::inactive, ts);
                    break;
                case alert_state::inactive:
                    break;
            }
        }
    }
    std::int64_t pending = 0, firing = 0;
    for (const rule_state& rs : rules_) {
        pending += rs.state == alert_state::pending;
        firing += rs.state == alert_state::firing;
    }
    pending_gauge_.set(pending);
    firing_gauge_.set(firing);
    notifications.swap(notify_queue_);
    lock.unlock();
    for (const std::string& cmd : notifications) {
        const int rc = std::system(cmd.c_str());
        (void)rc;  // notification is best-effort by design
    }
}

std::string alert_engine::status_json() const {
    std::lock_guard lock(mutex_);
    std::string out = "[";
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const rule_state& rs = rules_[i];
        if (i) out += ',';
        out += "{\"name\":\"" + json_escape(rs.rule.name) + "\"";
        out += ",\"state\":\"";
        out += alert_state_name(rs.state);
        out += "\"";
        if (!rs.rule.series.empty())
            out += ",\"series\":\"" + json_escape(rs.rule.series) + "\"";
        if (!rs.rule.label.empty())
            out += ",\"label\":\"" + json_escape(rs.rule.label) + "\"";
        if (!rs.rule.event_kind.empty())
            out += ",\"event\":\"" + json_escape(rs.rule.event_kind) + "\"";
        if (rs.current)
            out += ",\"value\":" + event_field_number(*rs.current);
        out += ",\"streak\":" + std::to_string(rs.streak);
        out += ",\"since_ts\":" + std::to_string(rs.since_ts);
        out += ",\"level\":\"";
        out += event_level_name(rs.rule.level);
        out += "\"}";
    }
    out += "]";
    return out;
}

std::vector<alert_engine::status> alert_engine::snapshot() const {
    std::lock_guard lock(mutex_);
    std::vector<status> out;
    out.reserve(rules_.size());
    for (const rule_state& rs : rules_) {
        status s;
        s.rule = rs.rule;
        s.state = rs.state;
        s.streak = rs.streak;
        s.value = rs.current;
        s.since_ts = rs.since_ts;
        out.push_back(std::move(s));
    }
    return out;
}

std::size_t alert_engine::firing_count() const {
    std::lock_guard lock(mutex_);
    std::size_t n = 0;
    for (const rule_state& rs : rules_) n += rs.state == alert_state::firing;
    return n;
}

std::size_t alert_engine::pending_count() const {
    std::lock_guard lock(mutex_);
    std::size_t n = 0;
    for (const rule_state& rs : rules_) n += rs.state == alert_state::pending;
    return n;
}

std::size_t alert_engine::rule_count() const {
    std::lock_guard lock(mutex_);
    return rules_.size();
}

std::uint64_t alert_engine::evaluations() const {
    std::lock_guard lock(mutex_);
    return evaluations_;
}

}  // namespace v6::obs
