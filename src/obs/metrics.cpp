#include "v6class/obs/metrics.h"

#include <cstdio>
#include <cstdlib>

#include "v6class/obs/atomic_file.h"

namespace v6::obs {

std::vector<double> latency_buckets() {
    // 1us .. 16s, x4 per bucket: wide enough for a trie pass over
    // millions of addresses, fine enough to see a queue stall.
    return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3,
            16e-3, 64e-3, 256e-3, 1.0, 4.0, 16.0};
}

registry& registry::global() {
    static registry r;
    return r;
}

detail::series* registry::intern(const std::string& name, metric_kind kind,
                                 label_list labels, const std::string& help,
                                 std::vector<double> bounds, bool fp) {
    std::lock_guard lock(mutex_);
    for (detail::series& s : series_)
        if (s.name == name && s.labels == labels) return &s;
    detail::series& s = series_.emplace_back();
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.labels = std::move(labels);
    s.fp = fp;
    if (kind == metric_kind::histogram) {
        s.bounds = bounds.empty() ? latency_buckets() : std::move(bounds);
        s.buckets =
            std::make_unique<std::atomic<std::uint64_t>[]>(s.bounds.size() + 1);
        for (std::size_t i = 0; i <= s.bounds.size(); ++i) s.buckets[i] = 0;
    }
    return &s;
}

counter registry::get_counter(const std::string& name, label_list labels,
                              const std::string& help) {
    return counter(intern(name, metric_kind::counter, std::move(labels), help, {}));
}

gauge registry::get_gauge(const std::string& name, label_list labels,
                          const std::string& help) {
    return gauge(intern(name, metric_kind::gauge, std::move(labels), help, {}));
}

dgauge registry::get_dgauge(const std::string& name, label_list labels,
                            const std::string& help) {
    return dgauge(intern(name, metric_kind::gauge, std::move(labels), help, {},
                         /*fp=*/true));
}

histogram registry::get_histogram(const std::string& name,
                                  std::vector<double> bounds, label_list labels,
                                  const std::string& help) {
    return histogram(intern(name, metric_kind::histogram, std::move(labels), help,
                            std::move(bounds)));
}

std::size_t registry::size() const {
    std::lock_guard lock(mutex_);
    return series_.size();
}

// ------------------------------------------------------------- exporters

namespace {

/// Shortest round-trippable formatting for metric values: integers stay
/// integers, doubles keep full precision.
std::string format_double(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        return buf;
    }
    // Shortest representation that round-trips: 1e-06, not
    // 9.9999999999999995e-07.
    char buf[64];
    for (int prec = 1; prec < 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) return buf;
    }
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Prometheus label-value / JSON string escaping (the two agree on the
/// characters that matter here: backslash, quote, newline).
std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

std::string prometheus_labels(const label_list& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out += ',';
        out += labels[i].first + "=\"" + escape(labels[i].second) + "\"";
    }
    out += '}';
    return out;
}

/// Labels with one extra pair appended (histogram "le" buckets).
std::string prometheus_labels_plus(const label_list& labels,
                                   const std::string& key,
                                   const std::string& value) {
    label_list with = labels;
    with.emplace_back(key, value);
    return prometheus_labels(with);
}

/// The scalar value of a counter/gauge series, formatted: double-bit
/// gauges print as doubles, everything else as the integer it is.
std::string scalar_value(const detail::series& s) {
    const std::int64_t raw = s.value.load(std::memory_order_relaxed);
    if (s.fp) return format_double(std::bit_cast<double>(raw));
    return std::to_string(raw);
}

const char* kind_name(metric_kind k) {
    switch (k) {
        case metric_kind::counter: return "counter";
        case metric_kind::gauge: return "gauge";
        case metric_kind::histogram: return "histogram";
    }
    return "untyped";
}

}  // namespace

std::string registry::prometheus_text() const {
    std::lock_guard lock(mutex_);
    std::string out;
    // HELP/TYPE precede the first series of each metric name; same-name
    // series (label variants) are grouped together, groups in
    // first-seen order.
    std::vector<const detail::series*> ordered;
    ordered.reserve(series_.size());
    std::vector<bool> taken(series_.size(), false);
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (taken[i]) continue;
        for (std::size_t j = i; j < series_.size(); ++j) {
            if (!taken[j] && series_[j].name == series_[i].name) {
                ordered.push_back(&series_[j]);
                taken[j] = true;
            }
        }
    }
    std::string last_name;
    for (const detail::series* s : ordered) {
        if (s->name != last_name) {
            last_name = s->name;
            if (!s->help.empty())
                out += "# HELP " + s->name + " " + s->help + "\n";
            out += "# TYPE " + s->name + " " + kind_name(s->kind) + "\n";
        }
        if (s->kind == metric_kind::histogram) {
            // Prometheus buckets are cumulative counts with `le` bounds.
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < s->bounds.size(); ++i) {
                cumulative += s->buckets[i].load(std::memory_order_relaxed);
                out += s->name + "_bucket" +
                       prometheus_labels_plus(s->labels, "le",
                                              format_double(s->bounds[i])) +
                       " " + std::to_string(cumulative) + "\n";
            }
            cumulative +=
                s->buckets[s->bounds.size()].load(std::memory_order_relaxed);
            out += s->name + "_bucket" +
                   prometheus_labels_plus(s->labels, "le", "+Inf") + " " +
                   std::to_string(cumulative) + "\n";
            out += s->name + "_sum" + prometheus_labels(s->labels) + " " +
                   format_double(s->sum()) + "\n";
            out += s->name + "_count" + prometheus_labels(s->labels) + " " +
                   std::to_string(s->count.load(std::memory_order_relaxed)) +
                   "\n";
        } else {
            out += s->name + prometheus_labels(s->labels) + " " +
                   scalar_value(*s) + "\n";
        }
    }
    return out;
}

std::string registry::json_text() const {
    std::lock_guard lock(mutex_);
    std::string out = "{\"metrics\":[";
    bool first = true;
    for (const detail::series& s : series_) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"" + escape(s.name) + "\",\"type\":\"" +
               kind_name(s.kind) + "\",\"labels\":{";
        for (std::size_t i = 0; i < s.labels.size(); ++i) {
            if (i) out += ',';
            out += "\"" + escape(s.labels[i].first) + "\":\"" +
                   escape(s.labels[i].second) + "\"";
        }
        out += "}";
        if (s.kind == metric_kind::histogram) {
            out += ",\"count\":" +
                   std::to_string(s.count.load(std::memory_order_relaxed));
            out += ",\"sum\":" + format_double(s.sum());
            out += ",\"buckets\":[";
            for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
                if (i) out += ',';
                const std::string le = i < s.bounds.size()
                                           ? format_double(s.bounds[i])
                                           : std::string("\"+Inf\"");
                out += "{\"le\":" + le + ",\"count\":" +
                       std::to_string(
                           s.buckets[i].load(std::memory_order_relaxed)) +
                       "}";
            }
            out += "]";
        } else {
            out += ",\"value\":" + scalar_value(s);
        }
        out += "}";
    }
    out += "]}";
    return out;
}

bool registry::write_file(const std::string& path) const {
    const bool prom =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
    std::string content = prom ? prometheus_text() : json_text();
    if (!prom) content += '\n';
    return atomic_write_file(path, content);
}

}  // namespace v6::obs
