#include "v6class/obs/atomic_file.h"

#if defined(_WIN32)

#include <cstdio>
#include <fstream>

namespace v6::obs {

bool atomic_write_file(const std::string& path, const std::string& content) {
    // Atomic, not durable: no fsync equivalent on this fallback path.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out << content;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace v6::obs

#else

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

namespace v6::obs {

bool atomic_write_file(const std::string& path, const std::string& content) {
    // The temp file must live on the same filesystem as `path` for
    // rename() to be atomic, so it is a sibling, uniquified by pid (two
    // processes dumping to the same path race to a rename, which is
    // still last-writer-wins per whole file — the property we want).
    //
    // Durability order matters: fsync the temp file *before* the
    // rename (so the rename can never expose an empty/partial file
    // after power loss), then fsync the directory *after* (so the
    // rename itself — a directory mutation — is on stable storage).
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    const char* p = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash ? slash : 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);  // best-effort: some filesystems reject dir fsync
        ::close(dfd);
    }
    return true;
}

}  // namespace v6::obs

#endif
