#include "v6class/obs/atomic_file.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace v6::obs {

bool atomic_write_file(const std::string& path, const std::string& content) {
    // The temp file must live on the same filesystem as `path` for
    // rename() to be atomic, so it is a sibling, uniquified by pid (two
    // processes dumping to the same path race to a rename, which is
    // still last-writer-wins per whole file — the property we want).
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out << content;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace v6::obs
