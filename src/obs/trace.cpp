#include "v6class/obs/timer.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "v6class/obs/atomic_file.h"

namespace v6::obs {

namespace {

struct trace_event {
    std::string name;
    double ts_us = 0;
    double dur_us = 0;
    std::size_t tid = 0;
};

struct trace_state {
    std::mutex mutex;
    std::string path;
    std::vector<trace_event> events;
    std::chrono::steady_clock::time_point origin;

    /// Flushes on exit so `--trace-out` needs no explicit teardown in
    /// every return path of every tool.
    ~trace_state() { write_locked(); }

    bool write_locked() {
        if (path.empty()) return false;
        std::string out = "[";
        for (std::size_t i = 0; i < events.size(); ++i) {
            const trace_event& e = events[i];
            if (i) out += ",\n ";
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                          "\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f}",
                          e.name.c_str(), e.tid, e.ts_us, e.dur_us);
            out += buf;
        }
        out += "]\n";
        // Atomic replace: a periodic flush can race a reader loading the
        // trace into a viewer; it must always see a complete JSON array.
        return atomic_write_file(path, out);
    }
};

trace_state& state() {
    static trace_state s;
    return s;
}

// enabled() is the hot-path gate: checked per trace_scope without the
// mutex.
std::atomic<bool> g_enabled{false};

std::size_t thread_number() {
    static std::atomic<std::size_t> next{1};
    thread_local std::size_t mine = next.fetch_add(1);
    return mine;
}

double now_us() {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - state().origin)
        .count();
}

}  // namespace

void trace_log::enable(std::string path) {
    trace_state& s = state();
    std::lock_guard lock(s.mutex);
    if (s.path.empty()) s.origin = std::chrono::steady_clock::now();
    s.path = std::move(path);
    g_enabled.store(true, std::memory_order_release);
}

bool trace_log::enabled() noexcept {
    return g_enabled.load(std::memory_order_acquire);
}

void trace_log::record(const char* name, double ts_us, double dur_us) {
    if (!enabled()) return;
    trace_state& s = state();
    std::lock_guard lock(s.mutex);
    s.events.push_back({name, ts_us, dur_us, thread_number()});
}

bool trace_log::flush() {
    trace_state& s = state();
    std::lock_guard lock(s.mutex);
    return s.write_locked();
}

void trace_log::reset() {
    trace_state& s = state();
    std::lock_guard lock(s.mutex);
    s.path.clear();
    s.events.clear();
    g_enabled.store(false, std::memory_order_release);
}

trace_scope::trace_scope(const char* name, histogram h) noexcept
    : name_(name), timer_(h), tracing_(trace_log::enabled()) {
    if (tracing_) start_us_ = now_us();
}

trace_scope::~trace_scope() {
    if (tracing_) {
        const double end_us = now_us();
        trace_log::record(name_, start_us_, end_us - start_us_);
    }
}

}  // namespace v6::obs
