// trace.cpp — the span tracer (per-thread seqlock rings) and the
// trace_log file façade over it.
//
// Ring protocol: every slot field is an atomic written with relaxed
// stores, bracketed by a sequence counter (odd while a write is in
// flight, bumped to the next even value when it completes). The owning
// thread is the only writer, so writes never contend; readers copy a
// slot, fence, and re-check the sequence, discarding torn copies. This
// keeps concurrent snapshot()/emit() exact under TSan without locks on
// the emit path.
//
// Rings are registered in a process-lifetime registry (intentionally
// leaked — pool workers emit during static destruction, after
// function-local statics would have been torn down) and are held by
// shared_ptr from both the registry and a thread_local, so a ring
// outlives its thread and its spans stay exportable.
#include "v6class/obs/timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "v6class/obs/atomic_file.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/trace.h"

namespace v6::obs {

namespace detail {
std::atomic<bool> trace_enabled{false};
}  // namespace detail

namespace {

struct slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = mid-write
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_id{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint8_t> kind{0};
};

struct thread_ring {
    explicit thread_ring(std::uint32_t id)
        : tid(id), slots(tracer::ring_capacity) {}

    const std::uint32_t tid;
    std::atomic<std::uint64_t> head{0};  // total spans ever emitted here
    std::atomic<std::uint64_t> dropped{0};
    std::vector<slot> slots;
    std::mutex name_mutex;  // guards name (set once, read by exporters)
    std::string name;
};

struct trace_registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<thread_ring>> rings;
    std::atomic<std::uint32_t> next_tid{1};
    std::atomic<std::uint64_t> next_span{1};
    std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
};

trace_registry& reg() {
    // Leaked on purpose: never destroyed, so emit() stays valid from any
    // thread at any point of process teardown.
    static trace_registry* r = new trace_registry;
    return *r;
}

thread_local span_context tl_current{};
thread_local std::shared_ptr<thread_ring> tl_ring;
// Thread name stashed before the ring exists: rings are only allocated
// on a thread's first emit (so naming every worker costs nothing while
// tracing is off), and pick the pending name up on creation.
thread_local std::string tl_pending_name;

thread_ring* local_ring() noexcept {
    if (!tl_ring) {
        try {
            trace_registry& r = reg();
            auto ring =
                std::make_shared<thread_ring>(r.next_tid.fetch_add(1));
            ring->name = tl_pending_name;  // pre-publish: no lock needed
            std::lock_guard<std::mutex> lock(r.mutex);
            r.rings.push_back(ring);
            tl_ring = std::move(ring);
        } catch (...) {
            return nullptr;  // allocation failed: drop spans, don't throw
        }
    }
    return tl_ring.get();
}

std::vector<std::shared_ptr<thread_ring>> all_rings() {
    trace_registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.rings;
}

/// Copies one slot; returns false on a torn read (writer mid-flight or
/// the slot was overwritten while copying).
bool read_slot(const slot& s, span_record& out) {
    for (int attempt = 0; attempt < 3; ++attempt) {
        const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
        if (s1 == 0 || (s1 & 1) != 0) continue;
        out.name = s.name.load(std::memory_order_relaxed);
        out.trace_id = s.trace_id.load(std::memory_order_relaxed);
        out.span_id = s.span_id.load(std::memory_order_relaxed);
        out.parent_id = s.parent_id.load(std::memory_order_relaxed);
        out.start_ns = s.start_ns.load(std::memory_order_relaxed);
        out.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
        out.kind = static_cast<span_kind>(s.kind.load(std::memory_order_relaxed));
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) == s1) {
            if (out.name == nullptr) out.name = "";
            return true;
        }
    }
    return false;
}

void append_json_escaped(std::string& out, const char* s) {
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

/// File sink for trace_log: remembers the --trace-out path and flushes
/// the tracer's Chrome JSON there at process exit, matching the PR 2
/// behaviour (tools need no explicit teardown on any return path).
struct file_sink {
    std::mutex mutex;
    std::string path;

    ~file_sink() { write_locked(); }

    bool write_locked() {
        if (path.empty()) return false;
        // Atomic replace: a periodic flush can race a reader loading the
        // trace into a viewer; it must always see complete JSON.
        return atomic_write_file(path, tracer::chrome_json());
    }
};

file_sink& sink() {
    static file_sink s;
    return s;
}

}  // namespace

const char* span_kind_name(span_kind k) noexcept {
    switch (k) {
        case span_kind::queue_wait: return "queue_wait";
        case span_kind::merge: return "merge";
        case span_kind::run: break;
    }
    return "run";
}

void tracer::enable() noexcept {
    reg();  // construct the registry (and its time origin) before spans
    detail::trace_enabled.store(true, std::memory_order_relaxed);
}

void tracer::disable() noexcept {
    detail::trace_enabled.store(false, std::memory_order_relaxed);
}

void tracer::reset() noexcept {
    disable();
    for (const auto& ring : all_rings()) {
        // Emptying head is enough: snapshot() only reads below head, and
        // the owning thread (if mid-emit) re-publishes its slot after.
        ring->head.store(0, std::memory_order_release);
        ring->dropped.store(0, std::memory_order_relaxed);
    }
    trace_registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.origin = std::chrono::steady_clock::now();
}

span_context tracer::current() noexcept { return tl_current; }

std::uint64_t tracer::now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - reg().origin)
            .count());
}

std::uint64_t tracer::next_id() noexcept {
    return reg().next_span.fetch_add(1, std::memory_order_relaxed);
}

void tracer::emit(const char* name, span_kind kind, span_context ctx,
                  std::uint64_t parent_id, std::uint64_t start_ns,
                  std::uint64_t dur_ns) noexcept {
    if (!enabled()) return;
    thread_ring* ring = local_ring();
    if (!ring) return;
    if (ctx.trace_id == 0) ctx.trace_id = ctx.span_id;

    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    slot& s = ring->slots[h % ring_capacity];
    const std::uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq0 + 1, std::memory_order_release);  // odd: write begins
    std::atomic_thread_fence(std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    s.span_id.store(ctx.span_id, std::memory_order_relaxed);
    s.parent_id.store(parent_id, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.seq.store(seq0 + 2, std::memory_order_release);  // even: stable
    ring->head.store(h + 1, std::memory_order_release);
    if (h >= ring_capacity) ring->dropped.fetch_add(1, std::memory_order_relaxed);
}

void tracer::set_thread_name(const std::string& name) {
    pmu::note_thread_name(name);  // one call names both subsystems
    try {
        tl_pending_name = name;
    } catch (...) {
        return;
    }
    if (tl_ring) {
        std::lock_guard<std::mutex> lock(tl_ring->name_mutex);
        tl_ring->name = name;
    }
}

std::vector<span_record> tracer::snapshot() {
    std::vector<span_record> out;
    for (const auto& ring : all_rings()) {
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(head, ring_capacity);
        for (std::uint64_t k = head - n; k < head; ++k) {
            span_record rec;
            if (!read_slot(ring->slots[k % ring_capacity], rec)) continue;
            rec.tid = ring->tid;
            out.push_back(rec);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const span_record& a, const span_record& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  return a.span_id < b.span_id;
              });
    return out;
}

std::string tracer::chrome_json() {
    const std::vector<span_record> spans = snapshot();
    std::string out = "{\"traceEvents\":[\n";
    out +=
        " {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"v6class\"}}";
    for (const auto& ring : all_rings()) {
        std::string name;
        {
            std::lock_guard<std::mutex> lock(ring->name_mutex);
            name = ring->name;
        }
        if (name.empty()) continue;
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      ",\n {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,",
                      ring->tid);
        out += buf;
        out += "\"args\":{\"name\":\"";
        append_json_escaped(out, name.c_str());
        out += "\"}}";
    }
    for (const span_record& s : spans) {
        out += ",\n {\"name\":\"";
        append_json_escaped(out, s.name);
        out += "\",\"cat\":\"";
        out += span_kind_name(s.kind);
        char buf[224];
        std::snprintf(
            buf, sizeof buf,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
            "\"args\":{\"trace\":\"%llx\",\"span\":\"%llx\","
            "\"parent\":\"%llx\"}}",
            s.tid, static_cast<double>(s.start_ns) / 1e3,
            static_cast<double>(s.dur_ns) / 1e3,
            static_cast<unsigned long long>(s.trace_id),
            static_cast<unsigned long long>(s.span_id),
            static_cast<unsigned long long>(s.parent_id));
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

std::uint64_t tracer::dropped() noexcept {
    std::uint64_t total = 0;
    for (const auto& ring : all_rings())
        total += ring->dropped.load(std::memory_order_relaxed);
    return total;
}

void span::begin(const char* name, span_kind kind) noexcept {
    name_ = name;
    kind_ = kind;
    saved_ = tl_current;
    parent_ = saved_.span_id;
    ctx_.span_id = tracer::next_id();
    ctx_.trace_id = saved_.trace_id != 0 ? saved_.trace_id : ctx_.span_id;
    tl_current = ctx_;
    start_ns_ = tracer::now_ns();
    live_ = true;
}

void span::end() noexcept {
    const std::uint64_t now = tracer::now_ns();
    tracer::emit(name_, kind_, ctx_, parent_,
                 start_ns_, now > start_ns_ ? now - start_ns_ : 0);
    tl_current = saved_;
    live_ = false;
}

void context_scope::adopt(span_context parent) noexcept {
    saved_ = tl_current;
    tl_current = parent;
    live_ = true;
}

void context_scope::restore() noexcept {
    tl_current = saved_;
    live_ = false;
}

void trace_log::enable(std::string path) {
    file_sink& s = sink();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.path = std::move(path);
    }
    tracer::enable();
}

bool trace_log::enabled() noexcept { return tracer::enabled(); }

void trace_log::record(const char* name, double ts_us, double dur_us) {
    if (!tracer::enabled()) return;
    span_context ctx;
    ctx.span_id = tracer::next_id();
    tracer::emit(name, span_kind::run, ctx, 0,
                 static_cast<std::uint64_t>(ts_us * 1e3),
                 static_cast<std::uint64_t>(dur_us * 1e3));
}

bool trace_log::flush() {
    file_sink& s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.write_locked();
}

void trace_log::reset() {
    file_sink& s = sink();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.path.clear();
    }
    tracer::reset();
}

}  // namespace v6::obs
