#include "v6class/obs/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace v6::obs {

namespace {

/// LE scalar append/read for the sketch wire forms. Doubles travel as
/// their IEEE-754 bit pattern, so round-trips are bit-exact (including
/// the sub-five-sample heights P² stores verbatim).
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(out, bits);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

double get_f64(const std::uint8_t* p) noexcept {
    const std::uint64_t bits = get_u64(p);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

/// MurmurHash3 fmix64: full-avalanche finalizer so the register index
/// and the leading-zero rank are independent even when the caller's
/// hash mixes its low bits better than its high ones (FNV-1a does).
std::uint64_t fmix64(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

/// The alpha_m bias constant of the raw HLL estimator.
double hll_alpha(std::size_t m) noexcept {
    if (m == 16) return 0.673;
    if (m == 32) return 0.697;
    if (m == 64) return 0.709;
    return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
}

}  // namespace

hyperloglog::hyperloglog(unsigned precision)
    : precision_(std::clamp(precision, 4u, 18u)),
      registers_(std::size_t{1} << precision_, 0) {}

void hyperloglog::add(std::uint64_t hash) noexcept {
    const std::uint64_t h = fmix64(hash);
    const std::size_t index = h & (registers_.size() - 1);
    // Rank: position of the first 1-bit in the remaining 64 - p bits.
    const std::uint64_t rest = h >> precision_;
    const unsigned rank =
        rest == 0 ? static_cast<unsigned>(65 - precision_)
                  : static_cast<unsigned>(std::countr_zero(rest)) + 1;
    if (rank > registers_[index])
        registers_[index] = static_cast<std::uint8_t>(rank);
}

double hyperloglog::estimate() const noexcept {
    const auto m = static_cast<double>(registers_.size());
    double inverse_sum = 0.0;
    std::size_t zeros = 0;
    for (const std::uint8_t r : registers_) {
        inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
        if (r == 0) ++zeros;
    }
    const double raw = hll_alpha(registers_.size()) * m * m / inverse_sum;
    // Small-range correction: below 2.5m the raw estimator is biased;
    // linear counting over the empty registers is better.
    if (raw <= 2.5 * m && zeros > 0)
        return m * std::log(m / static_cast<double>(zeros));
    return raw;
}

void hyperloglog::merge(const hyperloglog& other) noexcept {
    if (other.registers_.size() != registers_.size()) return;
    for (std::size_t i = 0; i < registers_.size(); ++i)
        registers_[i] = std::max(registers_[i], other.registers_[i]);
}

void hyperloglog::reset() noexcept {
    std::fill(registers_.begin(), registers_.end(), std::uint8_t{0});
}

void hyperloglog::serialize(std::vector<std::uint8_t>& out) const {
    out.push_back(static_cast<std::uint8_t>(precision_));
    out.insert(out.end(), registers_.begin(), registers_.end());
}

std::optional<hyperloglog> hyperloglog::deserialize(const std::uint8_t* data,
                                                    std::size_t size) {
    if (size < 1) return std::nullopt;
    const unsigned precision = data[0];
    if (precision < 4 || precision > 18) return std::nullopt;
    const std::size_t m = std::size_t{1} << precision;
    if (size != 1 + m) return std::nullopt;
    // add() never writes a rank above 65 - p; anything larger marks a
    // corrupt or foreign payload, not a sketch we can union with.
    const auto max_rank = static_cast<std::uint8_t>(65 - precision);
    for (std::size_t i = 0; i < m; ++i)
        if (data[1 + i] > max_rank) return std::nullopt;
    hyperloglog hll(precision);
    std::copy(data + 1, data + 1 + m, hll.registers_.begin());
    return hll;
}

// ---------------------------------------------------------- p2_quantile

p2_quantile::p2_quantile(double q) : q_(std::clamp(q, 1e-6, 1.0 - 1e-6)) {
    reset();
}

void p2_quantile::reset() noexcept {
    count_ = 0;
    for (int i = 0; i < 5; ++i) height_[i] = position_[i] = 0.0;
    desired_[0] = 1.0;
    desired_[1] = 1.0 + 2.0 * q_;
    desired_[2] = 1.0 + 4.0 * q_;
    desired_[3] = 3.0 + 2.0 * q_;
    desired_[4] = 5.0;
    increment_[0] = 0.0;
    increment_[1] = q_ / 2.0;
    increment_[2] = q_;
    increment_[3] = (1.0 + q_) / 2.0;
    increment_[4] = 1.0;
}

void p2_quantile::observe(double x) noexcept {
    if (count_ < 5) {
        height_[count_++] = x;
        if (count_ == 5) {
            std::sort(height_, height_ + 5);
            for (int i = 0; i < 5; ++i) position_[i] = i + 1;
        }
        return;
    }
    ++count_;

    // Which cell the observation lands in; stretch the extremes.
    int cell;
    if (x < height_[0]) {
        height_[0] = x;
        cell = 0;
    } else if (x >= height_[4]) {
        height_[4] = x;
        cell = 3;
    } else {
        cell = 0;
        while (cell < 3 && x >= height_[cell + 1]) ++cell;
    }
    for (int i = cell + 1; i < 5; ++i) position_[i] += 1.0;
    for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

    // Nudge the three interior markers toward their desired positions
    // with the parabolic (P²) formula, falling back to linear when the
    // parabola would cross a neighbour.
    for (int i = 1; i <= 3; ++i) {
        const double d = desired_[i] - position_[i];
        if ((d >= 1.0 && position_[i + 1] - position_[i] > 1.0) ||
            (d <= -1.0 && position_[i - 1] - position_[i] < -1.0)) {
            const double sign = d >= 0 ? 1.0 : -1.0;
            const double below = position_[i] - position_[i - 1];
            const double above = position_[i + 1] - position_[i];
            const double parabolic =
                height_[i] +
                sign / (position_[i + 1] - position_[i - 1]) *
                    ((below + sign) * (height_[i + 1] - height_[i]) / above +
                     (above - sign) * (height_[i] - height_[i - 1]) / below);
            if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
                height_[i] = parabolic;
            } else {
                const int j = i + (sign > 0 ? 1 : -1);
                height_[i] += sign * (height_[j] - height_[i]) /
                              (position_[j] - position_[i]);
            }
            position_[i] += sign;
        }
    }
}

void p2_quantile::serialize(std::vector<std::uint8_t>& out) const {
    put_f64(out, q_);
    put_u64(out, count_);
    for (const double h : height_) put_f64(out, h);
    for (const double p : position_) put_f64(out, p);
    for (const double d : desired_) put_f64(out, d);
    for (const double i : increment_) put_f64(out, i);
}

std::optional<p2_quantile> p2_quantile::deserialize(const std::uint8_t* data,
                                                    std::size_t size) {
    constexpr std::size_t kWireBytes = 8 * (2 + 4 * 5);
    if (size != kWireBytes) return std::nullopt;
    const double q = get_f64(data);
    if (!(q > 0.0 && q < 1.0)) return std::nullopt;
    p2_quantile p2(q);
    p2.count_ = get_u64(data + 8);
    const std::uint8_t* cursor = data + 16;
    for (double& h : p2.height_) h = get_f64(cursor), cursor += 8;
    for (double& p : p2.position_) p = get_f64(cursor), cursor += 8;
    for (double& d : p2.desired_) d = get_f64(cursor), cursor += 8;
    for (double& i : p2.increment_) i = get_f64(cursor), cursor += 8;
    return p2;
}

double p2_quantile::value() const noexcept {
    if (count_ == 0) return 0.0;
    if (count_ >= 5) return height_[2];
    // Fewer than five samples: exact quantile over the sorted buffer.
    double sorted[5];
    std::copy(height_, height_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[rank];
}

}  // namespace v6::obs
