#include "v6class/trie/aguri_profiler.h"

#include <algorithm>

namespace v6 {

aguri_profiler::aguri_profiler(std::size_t node_budget, double min_share)
    : node_budget_(std::max<std::size_t>(node_budget, 16)),
      min_share_(std::clamp(min_share, 0.0, 1.0)) {}

void aguri_profiler::observe(const address& a, std::uint64_t count) {
    tree_.add(a, count);
    if (tree_.node_count() > node_budget_) {
        // Reclaim with a fraction of the final threshold so early traffic
        // is not over-aggregated before the total has grown.
        tree_.aggregate_by_share(min_share_ / 4.0);
        // A pathological stream (all distinct, uniformly spread) can stay
        // over budget even after a reclaim; tighten until it fits.
        double share = min_share_ / 2.0;
        while (tree_.node_count() > node_budget_ && share <= 1.0) {
            tree_.aggregate_by_share(share);
            share *= 2.0;
        }
    }
}

std::vector<profile_entry> aguri_profiler::profile() {
    tree_.aggregate_by_share(min_share_);
    std::vector<profile_entry> out;
    const double total = static_cast<double>(tree_.total());
    tree_.visit([&](const prefix& p, std::uint64_t count) {
        out.push_back({p, count, total > 0 ? static_cast<double>(count) / total : 0.0});
    });
    return out;
}

}  // namespace v6
