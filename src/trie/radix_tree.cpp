#include "v6class/trie/radix_tree.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace v6 {

namespace {

// min(common prefix of the two bases, both lengths): the length of the
// longest prefix covering both arguments.
unsigned meet_length(const prefix& a, const prefix& b) noexcept {
    return std::min({a.base().common_prefix_length(b.base()), a.length(), b.length()});
}

}  // namespace

void radix_tree::clear() noexcept {
    root_.reset();
    total_ = 0;
    node_count_ = 0;
}

void radix_tree::add(const prefix& p, std::uint64_t count) {
    if (count == 0) return;
    total_ += count;
    add_recursive(root_, p, count);
}

void radix_tree::add_recursive(std::unique_ptr<node>& slot, const prefix& p,
                               std::uint64_t count) {
    if (!slot) {
        slot = std::make_unique<node>();
        slot->pfx = p;
        slot->count = count;
        ++node_count_;
        return;
    }
    node& n = *slot;
    const unsigned meet = meet_length(n.pfx, p);

    if (meet == n.pfx.length() && meet == p.length()) {
        n.count += count;  // same prefix
        return;
    }
    if (meet == n.pfx.length()) {
        // p is strictly inside n: descend on p's next bit.
        const unsigned b = p.base().bit(n.pfx.length());
        add_recursive(n.child[b], p, count);
        return;
    }
    if (meet == p.length()) {
        // p covers n: insert p above the current node.
        auto covering = std::make_unique<node>();
        covering->pfx = p;
        covering->count = count;
        const unsigned b = n.pfx.base().bit(p.length());
        covering->child[b] = std::move(slot);
        slot = std::move(covering);
        ++node_count_;
        return;
    }
    // Diverge: split at the meet with a zero-count branch node.
    auto branch = std::make_unique<node>();
    branch->pfx = prefix{p.base(), meet};
    auto leaf = std::make_unique<node>();
    leaf->pfx = p;
    leaf->count = count;
    const unsigned existing_bit = n.pfx.base().bit(meet);
    branch->child[existing_bit] = std::move(slot);
    branch->child[1 - existing_bit] = std::move(leaf);
    slot = std::move(branch);
    node_count_ += 2;
}

std::uint64_t radix_tree::subtree_sum(const node& n) noexcept {
    std::uint64_t s = n.count;
    for (const auto& c : n.child)
        if (c) s += subtree_sum(*c);
    return s;
}

const radix_tree::node* radix_tree::find_node(const prefix& p) const noexcept {
    const node* n = root_.get();
    while (n) {
        const unsigned meet = meet_length(n->pfx, p);
        if (meet < n->pfx.length()) return nullptr;  // diverged or p above n
        if (n->pfx.length() == p.length()) return n;
        n = n->child[p.base().bit(n->pfx.length())].get();
    }
    return nullptr;
}

std::uint64_t radix_tree::count_at(const prefix& p) const noexcept {
    const node* n = find_node(p);
    return n ? n->count : 0;
}

std::uint64_t radix_tree::subtree_count(const prefix& p) const noexcept {
    const node* n = root_.get();
    while (n) {
        const unsigned meet = meet_length(n->pfx, p);
        if (meet == p.length()) {
            // p covers n (or equals it): the whole subtree lies inside p.
            return subtree_sum(*n);
        }
        if (meet < n->pfx.length()) return 0;  // diverged
        // n covers p strictly: n's own count sits above p; descend.
        n = n->child[p.base().bit(n->pfx.length())].get();
    }
    return 0;
}

std::optional<prefix> radix_tree::longest_match(const address& a) const noexcept {
    std::optional<prefix> best;
    const node* n = root_.get();
    while (n) {
        if (!n->pfx.contains(a)) break;
        if (n->count > 0) best = n->pfx;
        if (n->pfx.length() == 128) break;
        n = n->child[a.bit(n->pfx.length())].get();
    }
    return best;
}

void radix_tree::visit(const std::function<void(const prefix&, std::uint64_t)>& fn) const {
    // Iterative pre-order; child 0 before child 1 yields address order.
    std::vector<const node*> stack;
    if (root_) stack.push_back(root_.get());
    while (!stack.empty()) {
        const node* n = stack.back();
        stack.pop_back();
        if (n->count > 0) fn(n->pfx, n->count);
        if (n->child[1]) stack.push_back(n->child[1].get());
        if (n->child[0]) stack.push_back(n->child[0].get());
    }
}

void radix_tree::visit_splits(const std::function<void(unsigned)>& fn) const {
    std::vector<const node*> stack;
    if (root_) stack.push_back(root_.get());
    while (!stack.empty()) {
        const node* n = stack.back();
        stack.pop_back();
        if (n->child[0] && n->child[1]) fn(n->pfx.length());
        for (const auto& c : n->child)
            if (c) stack.push_back(c.get());
    }
}

void radix_tree::aggregate_by_share(double min_share) {
    if (!root_ || min_share <= 0.0) return;
    const auto threshold = static_cast<std::uint64_t>(
        std::ceil(min_share * static_cast<double>(total_)));
    if (threshold <= 1) return;

    // Recursive lambda to keep node private.
    std::size_t removed = 0;
    auto agg = [&](auto&& self, std::unique_ptr<node>& slot) -> std::uint64_t {
        if (!slot) return 0;
        node& n = *slot;
        n.count += self(self, n.child[0]);
        n.count += self(self, n.child[1]);
        if (n.count >= threshold) return 0;
        const std::uint64_t pushed = n.count;
        n.count = 0;
        if (!n.child[0] && !n.child[1]) {
            slot.reset();
            ++removed;
        } else if (!n.child[0] || !n.child[1]) {
            std::unique_ptr<node> only =
                std::move(n.child[0] ? n.child[0] : n.child[1]);
            slot = std::move(only);
            ++removed;
        }
        return pushed;
    };
    const std::uint64_t remainder = agg(agg, root_);
    node_count_ -= removed;
    if (remainder > 0) {
        // The root of an aguri tree retains whatever could not meet the
        // share anywhere else; keep it at ::/0.
        if (root_ && root_->pfx == prefix{}) {
            root_->count += remainder;
        } else {
            auto top = std::make_unique<node>();
            top->pfx = prefix{};
            top->count = remainder;
            if (root_) {
                const unsigned b = root_->pfx.base().bit(0);
                top->child[b] = std::move(root_);
            }
            root_ = std::move(top);
            ++node_count_;
        }
    }
}

std::vector<dense_prefix> radix_tree::dense_prefixes_at(std::uint64_t min_count,
                                                        unsigned p) const {
    std::vector<dense_prefix> out;
    if (!root_ || min_count == 0) return out;
    // Distinct subtrees first reached at depth >= p always lie in distinct
    // /p prefixes (they diverge at an ancestor branch shorter than p), so
    // a single pass suffices. Counts attributed to prefixes shorter than
    // /p cannot be localized to one /p prefix and do not participate.
    auto walk = [&](auto&& self, const node& n) -> void {
        if (n.pfx.length() >= p) {
            const std::uint64_t s = subtree_sum(n);
            if (s >= min_count) out.push_back({prefix{n.pfx.base(), p}, s});
            return;
        }
        for (const auto& c : n.child)
            if (c) self(self, *c);
    };
    walk(walk, *root_);
    return out;
}

std::vector<dense_prefix> radix_tree::densify(std::uint64_t n_min, unsigned p) const {
    std::vector<dense_prefix> out;
    if (!root_ || n_min == 0) return out;

    // Pass 1: subtree sums (the trie is shared-immutable during a const
    // query, so memoize externally).
    std::unordered_map<const node*, std::uint64_t> sums;
    auto compute = [&](auto&& self, const node& n) -> std::uint64_t {
        std::uint64_t s = n.count;
        for (const auto& c : n.child)
            if (c) s += self(self, *c);
        sums.emplace(&n, s);
        return s;
    };
    compute(compute, *root_);

    // Pass 2: top-down claim of the least-specific dense length on each
    // compressed edge. A /q prefix is dense when its count c satisfies
    // c >= n_min * 2^(p-q); given c >= n_min the least-specific such q is
    // p - floor(log2(c / n_min)).
    auto walk = [&](auto&& self, const node& n, unsigned parent_len) -> void {
        const std::uint64_t c = sums.at(&n);
        if (c < n_min) return;  // nothing below can reach n_min either
        unsigned s = 0;
        while (s + 1 < 64 && n_min <= (c >> (s + 1))) ++s;
        const unsigned qmin = (p > s) ? p - s : 0;
        const unsigned lo = (parent_len == 0 && &n == root_.get()) ? 0 : parent_len + 1;
        if (qmin <= n.pfx.length()) {
            const unsigned q = std::max(qmin, lo);
            if (q <= 127 && q <= n.pfx.length()) {
                out.push_back({prefix{n.pfx.base(), q}, c});
                return;  // non-overlapping: claim and stop
            }
            // q == 128: a single-address region; skip per step 3.
            return;
        }
        for (const auto& c2 : n.child)
            if (c2) self(self, *c2, n.pfx.length());
    };
    walk(walk, *root_, 0);
    return out;
}

std::vector<dense_prefix> dense_prefixes_by_sort(std::vector<address> addrs,
                                                 std::uint64_t min_count, unsigned p) {
    std::vector<dense_prefix> out;
    if (addrs.empty() || min_count == 0) return out;
    for (auto& a : addrs) a = a.masked(p);
    std::sort(addrs.begin(), addrs.end());
    for (std::size_t i = 0; i < addrs.size();) {
        std::size_t j = i;
        while (j < addrs.size() && addrs[j] == addrs[i]) ++j;
        if (j - i >= min_count) out.push_back({prefix{addrs[i], p}, j - i});
        i = j;
    }
    return out;
}

}  // namespace v6
