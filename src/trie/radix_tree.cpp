#include "v6class/trie/radix_tree.h"

#include "v6class/simd/kernels.h"

#include <algorithm>
#include <cmath>

namespace v6 {

namespace {

// min(common prefix of the two bases, both lengths): the length of the
// longest prefix covering both arguments.
unsigned meet_length(const prefix& a, const prefix& b) noexcept {
    return std::min({a.base().common_prefix_length(b.base()), a.length(), b.length()});
}

}  // namespace

std::uint32_t radix_tree::alloc_node(const prefix& pfx, std::uint64_t count) {
    std::uint32_t idx;
    if (free_head_ != nil) {
        idx = free_head_;
        free_head_ = nodes_[idx].child[0];
        nodes_[idx] = node{pfx, count, {nil, nil}};
    } else {
        idx = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(node{pfx, count, {nil, nil}});
    }
    ++node_count_;
    return idx;
}

void radix_tree::free_node(std::uint32_t idx) noexcept {
    nodes_[idx].child[0] = free_head_;
    nodes_[idx].child[1] = nil;
    nodes_[idx].count = 0;
    free_head_ = idx;
    --node_count_;
}

void radix_tree::clear() noexcept {
    nodes_.clear();  // keeps capacity
    root_ = nil;
    free_head_ = nil;
    total_ = 0;
    node_count_ = 0;
}

void radix_tree::add(const prefix& p, std::uint64_t count) {
    if (count == 0) return;
    total_ += count;
    // Iterative descent tracking (parent, side) instead of a pointer to
    // the slot: alloc_node may grow the arena and move every node, so a
    // slot reference could not survive an allocation — indices do.
    std::uint32_t parent = nil;
    unsigned side = 0;
    std::uint32_t cur = root_;
    for (;;) {
        if (cur == nil) {
            const std::uint32_t leaf = alloc_node(p, count);
            set_slot(parent, side, leaf);
            return;
        }
        const node& n = nodes_[cur];
        const unsigned meet = meet_length(n.pfx, p);

        if (meet == n.pfx.length() && meet == p.length()) {
            nodes_[cur].count += count;  // same prefix
            return;
        }
        if (meet == n.pfx.length()) {
            // p is strictly inside n: descend on p's next bit.
            parent = cur;
            side = p.base().bit(n.pfx.length());
            cur = n.child[side];
            continue;
        }
        if (meet == p.length()) {
            // p covers n: insert p above the current node.
            const unsigned b = n.pfx.base().bit(p.length());
            const std::uint32_t covering = alloc_node(p, count);
            nodes_[covering].child[b] = cur;
            set_slot(parent, side, covering);
            return;
        }
        // Diverge: split at the meet with a zero-count branch node.
        const unsigned existing_bit = n.pfx.base().bit(meet);
        const prefix branch_pfx{p.base(), meet};
        const std::uint32_t branch = alloc_node(branch_pfx, 0);
        const std::uint32_t leaf = alloc_node(p, count);
        nodes_[branch].child[existing_bit] = cur;
        nodes_[branch].child[1 - existing_bit] = leaf;
        set_slot(parent, side, branch);
        return;
    }
}

void radix_tree::bulk_build(const std::vector<address>& sorted,
                            std::uint64_t count_each) {
    if (sorted.empty() || count_each == 0) return;
    if (root_ != nil) {
        // The spine construction assumes it owns the whole structure;
        // merging into an existing tree takes the ordinary path.
        for (const auto& a : sorted) add(a, count_each);
        return;
    }
    nodes_.reserve(2 * sorted.size());

    // Rightmost-spine construction: the compressed trie over a sorted
    // set is fully determined by adjacent common-prefix lengths, and
    // sorted order puts every new leaf on the bit-1 side of its branch
    // (the first differing bit decides the address order), so the
    // unfinished right edge of the tree is a stack of strictly
    // deepening nodes. Each new leaf closes every spine node deeper
    // than the divergence point; closed nodes chain bottom-up through
    // child[1].
    std::vector<std::uint32_t> spine;
    spine.push_back(alloc_node(prefix{sorted[0], 128}, count_each));
    total_ += count_each;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        total_ += count_each;
        const unsigned c = sorted[i].common_prefix_length(sorted[i - 1]);
        if (c == 128) {
            nodes_[spine.back()].count += count_each;  // duplicate address
            continue;
        }
        std::uint32_t last = nil;
        while (!spine.empty() && nodes_[spine.back()].pfx.length() > c) {
            const std::uint32_t top = spine.back();
            spine.pop_back();
            if (last != nil) nodes_[top].child[1] = last;
            last = top;
        }
        // No spine node can sit exactly at length c: the previous leaf
        // (its subtree holds sorted[i-1]) would be on that node's bit-1
        // side, forcing sorted[i] to diverge with bit 0 — but a sorted
        // successor's first differing bit is 1. So a branch at c is
        // always fresh, and `last` is never nil (the /128 leaf popped).
        const std::uint32_t branch = alloc_node(prefix{sorted[i], c}, 0);
        nodes_[branch].child[0] = last;
        const std::uint32_t leaf = alloc_node(prefix{sorted[i], 128}, count_each);
        spine.push_back(branch);
        spine.push_back(leaf);
    }
    std::uint32_t last = nil;
    while (!spine.empty()) {
        const std::uint32_t top = spine.back();
        spine.pop_back();
        if (last != nil) nodes_[top].child[1] = last;
        last = top;
    }
    root_ = last;
}

std::uint64_t radix_tree::subtree_sum(std::uint32_t idx) const {
    std::uint64_t s = 0;
    std::vector<std::uint32_t> stack{idx};
    while (!stack.empty()) {
        const node& n = nodes_[stack.back()];
        stack.pop_back();
        s += n.count;
        if (n.child[0] != nil) stack.push_back(n.child[0]);
        if (n.child[1] != nil) stack.push_back(n.child[1]);
    }
    return s;
}

std::vector<std::uint64_t> radix_tree::subtree_sums() const {
    std::vector<std::uint64_t> sums(nodes_.size(), 0);
    if (root_ == nil) return sums;
    std::vector<std::uint32_t> order;
    order.reserve(node_count_);
    std::vector<std::uint32_t> stack{root_};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        order.push_back(idx);
        const node& n = nodes_[idx];
        if (n.child[0] != nil) stack.push_back(n.child[0]);
        if (n.child[1] != nil) stack.push_back(n.child[1]);
    }
    // Pre-order lists every parent before its children, so one reverse
    // sweep accumulates the sums bottom-up.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const node& n = nodes_[*it];
        std::uint64_t s = n.count;
        if (n.child[0] != nil) s += sums[n.child[0]];
        if (n.child[1] != nil) s += sums[n.child[1]];
        sums[*it] = s;
    }
    return sums;
}

std::uint32_t radix_tree::find_index(const prefix& p) const noexcept {
    std::uint32_t cur = root_;
    while (cur != nil) {
        const node& n = nodes_[cur];
        const unsigned meet = meet_length(n.pfx, p);
        if (meet < n.pfx.length()) return nil;  // diverged or p above n
        if (n.pfx.length() == p.length()) return cur;
        cur = n.child[p.base().bit(n.pfx.length())];
    }
    return nil;
}

std::uint64_t radix_tree::count_at(const prefix& p) const noexcept {
    const std::uint32_t idx = find_index(p);
    return idx != nil ? nodes_[idx].count : 0;
}

std::uint64_t radix_tree::subtree_count(const prefix& p) const noexcept {
    std::uint32_t cur = root_;
    while (cur != nil) {
        const node& n = nodes_[cur];
        const unsigned meet = meet_length(n.pfx, p);
        if (meet == p.length()) {
            // p covers n (or equals it): the whole subtree lies inside p.
            return subtree_sum(cur);
        }
        if (meet < n.pfx.length()) return 0;  // diverged
        // n covers p strictly: n's own count sits above p; descend.
        cur = n.child[p.base().bit(n.pfx.length())];
    }
    return 0;
}

std::optional<prefix> radix_tree::longest_match(const address& a) const noexcept {
    std::optional<prefix> best;
    std::uint32_t cur = root_;
    while (cur != nil) {
        const node& n = nodes_[cur];
        if (!n.pfx.contains(a)) break;
        if (n.count > 0) best = n.pfx;
        if (n.pfx.length() == 128) break;
        cur = n.child[a.bit(n.pfx.length())];
    }
    return best;
}

void radix_tree::visit(const std::function<void(const prefix&, std::uint64_t)>& fn) const {
    // Pre-order; child 0 before child 1 yields address order.
    std::vector<std::uint32_t> stack;
    if (root_ != nil) stack.push_back(root_);
    while (!stack.empty()) {
        const node& n = nodes_[stack.back()];
        stack.pop_back();
        if (n.count > 0) fn(n.pfx, n.count);
        if (n.child[1] != nil) stack.push_back(n.child[1]);
        if (n.child[0] != nil) stack.push_back(n.child[0]);
    }
}

void radix_tree::visit_splits(const std::function<void(unsigned)>& fn) const {
    std::vector<std::uint32_t> stack;
    if (root_ != nil) stack.push_back(root_);
    while (!stack.empty()) {
        const node& n = nodes_[stack.back()];
        stack.pop_back();
        if (n.child[0] != nil && n.child[1] != nil) fn(n.pfx.length());
        if (n.child[0] != nil) stack.push_back(n.child[0]);
        if (n.child[1] != nil) stack.push_back(n.child[1]);
    }
}

void radix_tree::aggregate_by_share(double min_share) {
    if (root_ == nil || min_share <= 0.0) return;
    const auto threshold = static_cast<std::uint64_t>(
        std::ceil(min_share * static_cast<double>(total_)));
    if (threshold <= 1) return;

    // Iterative post-order. Because the fold only ever moves a count to
    // the immediate parent and the adds commute, each finished node can
    // push its sub-threshold count straight into its parent and then
    // unlink or splice itself via the parent's child slot.
    struct frame {
        std::uint32_t idx;
        std::uint32_t parent;  // nil at the root
        std::uint8_t side;     // which child slot of parent holds idx
        bool expanded;
    };
    std::uint64_t remainder = 0;
    std::vector<frame> stack;
    stack.push_back({root_, nil, 0, false});
    while (!stack.empty()) {
        frame& top = stack.back();
        if (!top.expanded) {
            top.expanded = true;
            const node& n = nodes_[top.idx];
            const std::uint32_t self = top.idx;
            if (n.child[1] != nil) stack.push_back({n.child[1], self, 1, false});
            if (nodes_[self].child[0] != nil)
                stack.push_back({nodes_[self].child[0], self, 0, false});
            continue;
        }
        const frame f = top;
        stack.pop_back();
        node& n = nodes_[f.idx];
        if (n.count >= threshold) continue;
        const std::uint64_t pushed = n.count;
        n.count = 0;
        const bool has0 = n.child[0] != nil;
        const bool has1 = n.child[1] != nil;
        if (!has0 && !has1) {
            set_slot(f.parent, f.side, nil);
            free_node(f.idx);
        } else if (has0 != has1) {
            set_slot(f.parent, f.side, has0 ? n.child[0] : n.child[1]);
            free_node(f.idx);
        }
        if (pushed > 0) {
            if (f.parent == nil)
                remainder += pushed;
            else
                nodes_[f.parent].count += pushed;
        }
    }
    if (remainder > 0) {
        // The root of an aguri tree retains whatever could not meet the
        // share anywhere else; keep it at ::/0.
        if (root_ != nil && nodes_[root_].pfx == prefix{}) {
            nodes_[root_].count += remainder;
        } else {
            const std::uint32_t old = root_;
            const std::uint32_t top = alloc_node(prefix{}, remainder);
            if (old != nil) {
                const unsigned b = nodes_[old].pfx.base().bit(0);
                nodes_[top].child[b] = old;
            }
            root_ = top;
        }
    }
}

std::vector<dense_prefix> radix_tree::dense_prefixes_at(std::uint64_t min_count,
                                                        unsigned p) const {
    std::vector<dense_prefix> out;
    if (root_ == nil || min_count == 0) return out;
    // Distinct subtrees first reached at depth >= p always lie in distinct
    // /p prefixes (they diverge at an ancestor branch shorter than p), so
    // a single pass suffices. Counts attributed to prefixes shorter than
    // /p cannot be localized to one /p prefix and do not participate.
    const std::vector<std::uint64_t> sums = subtree_sums();
    std::vector<std::uint32_t> stack{root_};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        const node& n = nodes_[idx];
        if (n.pfx.length() >= p) {
            if (sums[idx] >= min_count) out.push_back({prefix{n.pfx.base(), p}, sums[idx]});
            continue;
        }
        if (n.child[1] != nil) stack.push_back(n.child[1]);
        if (n.child[0] != nil) stack.push_back(n.child[0]);
    }
    return out;
}

std::vector<dense_prefix> radix_tree::densify(std::uint64_t n_min, unsigned p) const {
    std::vector<dense_prefix> out;
    if (root_ == nil || n_min == 0) return out;

    // Pass 1: subtree sums, indexed by arena slot.
    const std::vector<std::uint64_t> sums = subtree_sums();

    // Pass 2: top-down claim of the least-specific dense length on each
    // compressed edge. A /q prefix is dense when its count c satisfies
    // c >= n_min * 2^(p-q); given c >= n_min the least-specific such q is
    // p - floor(log2(c / n_min)). `lo` is the shallowest length owned by
    // this node's compressed edge (0 only at the root).
    struct frame {
        std::uint32_t idx;
        unsigned lo;
    };
    std::vector<frame> stack;
    stack.push_back({root_, 0});
    while (!stack.empty()) {
        const frame f = stack.back();
        stack.pop_back();
        const node& n = nodes_[f.idx];
        const std::uint64_t c = sums[f.idx];
        if (c < n_min) continue;  // nothing below can reach n_min either
        unsigned s = 0;
        while (s + 1 < 64 && n_min <= (c >> (s + 1))) ++s;
        const unsigned qmin = (p > s) ? p - s : 0;
        if (qmin <= n.pfx.length()) {
            const unsigned q = std::max(qmin, f.lo);
            if (q <= 127 && q <= n.pfx.length()) {
                out.push_back({prefix{n.pfx.base(), q}, c});
            }
            // else q == 128: a single-address region; skip per step 3.
            continue;  // non-overlapping: claim (or skip) and stop
        }
        const unsigned clo = n.pfx.length() + 1;
        if (n.child[1] != nil) stack.push_back({n.child[1], clo});
        if (n.child[0] != nil) stack.push_back({n.child[0], clo});
    }
    return out;
}

std::vector<dense_prefix> dense_prefixes_by_sort(const std::vector<address>& addrs,
                                                 std::uint64_t min_count, unsigned p) {
    std::vector<dense_prefix> out;
    if (addrs.empty() || min_count == 0) return out;
    // Mask + sort on the SoA lanes (batch kernels; radix-partitioned
    // sort). (hi, lo) pair order equals address order, so the group scan
    // sees the same runs std::sort over masked addresses would produce.
    simd::address_block cut(addrs.size());
    cut.assign(addrs);
    simd::mask_batch(cut, p);
    simd::sort_block(cut);
    const std::uint64_t* his = cut.hi();
    const std::uint64_t* los = cut.lo();
    for (std::size_t i = 0; i < cut.size();) {
        std::size_t j = i;
        while (j < cut.size() && his[j] == his[i] && los[j] == los[i]) ++j;
        if (j - i >= min_count) out.push_back({prefix{cut.at(i), p}, j - i});
        i = j;
    }
    return out;
}

}  // namespace v6
