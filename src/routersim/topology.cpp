#include "v6class/routersim/topology.h"

#include <algorithm>

#include "v6class/netgen/rng.h"

namespace v6 {

namespace {

// Carves the infrastructure /48 out of the top of an operator's first
// BGP prefix (the client generators number from the bottom, so the two
// never collide).
std::uint64_t infra_hi(const prefix& bgp) {
    std::uint64_t hi = bgp.base().hi();
    const unsigned plen = bgp.length();
    if (plen < 48) {
        const std::uint64_t ones = (std::uint64_t{1} << (48 - plen)) - 1;
        hi |= ones << 16;  // fill bits plen..48 with 1s
    }
    return hi;  // bits 48..63 zero: subnet 0 of the infrastructure /48
}

}  // namespace

router_topology::router_topology(const world& w, topology_config cfg)
    : world_(&w), cfg_(cfg) {
    // --- per-ASN plants ---------------------------------------------------
    for (const auto& model : w.models()) {
        if (model->bgp_prefixes().empty()) continue;
        const prefix& bgp = model->bgp_prefixes().front();
        if (bgp.base().hextet(0) == 0x2002 || (bgp.base().hextet(0) == 0x2001 &&
                                               bgp.base().hextet(1) == 0))
            continue;  // 6to4/Teredo space has no probeable plant of its own

        asn_plant plant;
        plant.asn = model->asn();
        const std::uint64_t edges = std::max<std::uint64_t>(1, model->edge_routers());
        const std::uint64_t aggs = std::max<std::uint64_t>(1, edges / cfg_.edges_per_agg);
        const std::uint64_t cores = std::max<std::uint64_t>(1, aggs / cfg_.aggs_per_core);

        const std::uint64_t hi = infra_hi(bgp);
        // Loopbacks: near-sequential in the /112 at ::0 of the infra
        // subnet, with the occasional gap real provisioning leaves.
        std::uint64_t loop = 0;
        std::uint64_t alloc_draw = 0;
        auto loopback = [&] {
            loop += 1 + hash_uniform(hash_ids(cfg_.seed, plant.asn, ++alloc_draw), 3);
            return address::from_pair(hi, loop);
        };
        // P2P links: /127 pairs carved from ::1:0 upward with irregular
        // spacing (operators skip blocks, reserve ranges, renumber); each
        // router's "response interface" is the odd side of its uplink.
        std::uint64_t link_cursor = 0;
        auto p2p_pair = [&](std::vector<address>& side) {
            link_cursor +=
                1 + hash_uniform(hash_ids(cfg_.seed, plant.asn, 0x1000 + ++alloc_draw), 7);
            const std::uint64_t base = (std::uint64_t{1} << 16) | (link_cursor << 1);
            interfaces_.push_back(address::from_pair(hi, base));
            const address odd = address::from_pair(hi, base | 1);
            interfaces_.push_back(odd);
            side.push_back(odd);
        };

        for (std::uint64_t i = 0; i < cores; ++i) {
            interfaces_.push_back(loopback());
            p2p_pair(plant.core_ifaces);
        }
        for (std::uint64_t i = 0; i < aggs; ++i) {
            interfaces_.push_back(loopback());
            p2p_pair(plant.agg_ifaces);
        }
        for (std::uint64_t i = 0; i < edges; ++i) {
            interfaces_.push_back(loopback());
            p2p_pair(plant.edge_ifaces);
        }

        // Two resolvers per ASN, adjacent to the loopback block.
        resolvers_.push_back(address::from_pair(hi, 0x100000 + 1));
        resolvers_.push_back(address::from_pair(hi, 0x100000 + 2));

        plants_.emplace(plant.asn, std::move(plant));
    }

    // --- the CDN side and transit ----------------------------------------
    const std::uint64_t cdn_hi = address::must_parse("2610:1::").hi();
    for (unsigned i = 0; i < 4; ++i) {
        const address a = address::from_pair(cdn_hi, 2 * i + 1);
        cdn_side_.push_back(a);
        interfaces_.push_back(a);
    }
    for (unsigned i = 0; i < cfg_.transit_routers; ++i) {
        const address a = address::from_pair(cdn_hi, 0x10000 + 2 * i + 1);
        transit_.push_back(a);
        interfaces_.push_back(a);
    }

    std::sort(interfaces_.begin(), interfaces_.end());
    interfaces_.erase(std::unique(interfaces_.begin(), interfaces_.end()),
                      interfaces_.end());
}

const router_topology::asn_plant* router_topology::plant_of(
    const address& target) const {
    const auto route = world_->registry().origin_of(target);
    if (!route) return nullptr;
    const auto it = plants_.find(route->asn);
    return it == plants_.end() ? nullptr : &it->second;
}

std::vector<address> router_topology::trace(
    const address& target, const std::vector<address>& live_targets) const {
    std::vector<address> hops;
    const std::uint64_t t64 = target.masked(64).hi();
    const std::uint64_t t48 = target.masked(48).hi();

    // First hops: one CDN-side router and one transit router, picked by
    // flow hash so different destinations exercise different paths.
    hops.push_back(cdn_side_[hash_uniform(hash_ids(cfg_.seed, 1, t48), cdn_side_.size())]);
    hops.push_back(transit_[hash_uniform(hash_ids(cfg_.seed, 2, t48), transit_.size())]);

    const asn_plant* plant = plant_of(target);
    if (!plant) return hops;  // unrouted: the trace dies in transit

    hops.push_back(plant->core_ifaces[hash_uniform(hash_ids(cfg_.seed, 3, t48),
                                                   plant->core_ifaces.size())]);
    hops.push_back(plant->agg_ifaces[hash_uniform(hash_ids(cfg_.seed, 4, t48),
                                                  plant->agg_ifaces.size())]);
    // The last hop answers only when the target is live on the probe
    // day: probes toward a vanished privacy address (or a released
    // dynamic /64) stop at aggregation.
    if (std::binary_search(live_targets.begin(), live_targets.end(), target)) {
        hops.push_back(plant->edge_ifaces[hash_uniform(hash_ids(cfg_.seed, 5, t64),
                                                       plant->edge_ifaces.size())]);
    }
    return hops;
}

std::vector<address> router_topology::probe_campaign(
    const std::vector<address>& targets, const std::vector<address>& live_targets) const {
    std::vector<address> discovered;
    for (const address& t : targets) {
        const std::vector<address> hops = trace(t, live_targets);
        discovered.insert(discovered.end(), hops.begin(), hops.end());
    }
    std::sort(discovered.begin(), discovered.end());
    discovered.erase(std::unique(discovered.begin(), discovered.end()),
                     discovered.end());
    return discovered;
}

}  // namespace v6
