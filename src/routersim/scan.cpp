#include "v6class/routersim/scan.h"

#include <algorithm>

#include "v6class/ip/arithmetic.h"
#include "v6class/netgen/rng.h"

namespace v6 {

scan_outcome run_scan(const std::vector<address>& targets,
                      const std::vector<address>& live_hosts) {
    scan_outcome outcome;
    outcome.probes = targets.size();
    for (const address& t : targets)
        if (std::binary_search(live_hosts.begin(), live_hosts.end(), t))
            ++outcome.responders;
    return outcome;
}

survey_outcome run_dense_survey(std::vector<dense_prefix> dense,
                                const std::vector<address>& live_hosts,
                                std::uint64_t budget) {
    // Densest (most observed addresses per possible address) first.
    std::sort(dense.begin(), dense.end(),
              [](const dense_prefix& a, const dense_prefix& b) {
                  // Same-length prefixes: compare observed counts; across
                  // lengths, compare observed >> host-bit difference.
                  const double da = static_cast<double>(a.observed) /
                                    static_cast<double>(a.pfx.count());
                  const double db = static_cast<double>(b.observed) /
                                    static_cast<double>(b.pfx.count());
                  return da > db;
              });
    survey_outcome outcome;
    for (const dense_prefix& d : dense) {
        if (outcome.scan.probes >= budget) break;
        if (d.pfx.length() < 96) continue;  // unscannable, as in the paper
        ++outcome.blocks_started;
        const address_range block(d.pfx);
        bool completed = true;
        for (const address& t : block) {
            if (outcome.scan.probes >= budget) {
                completed = false;
                break;
            }
            ++outcome.scan.probes;
            if (std::binary_search(live_hosts.begin(), live_hosts.end(), t))
                ++outcome.scan.responders;
        }
        if (completed) ++outcome.blocks_completed;
    }
    return outcome;
}

scan_outcome run_random_scan(const std::vector<prefix>& within,
                             const std::vector<address>& live_hosts,
                             std::uint64_t budget, std::uint64_t seed) {
    scan_outcome outcome;
    if (within.empty()) return outcome;
    rng r{seed};
    for (std::uint64_t i = 0; i < budget; ++i) {
        const prefix& p = within[r.uniform(within.size())];
        // Random host bits below the prefix length.
        address probe = p.base();
        const std::uint64_t rand_hi = r();
        const std::uint64_t rand_lo = r();
        for (unsigned bit = p.length(); bit < 128; ++bit) {
            const std::uint64_t word = bit < 64 ? rand_hi : rand_lo;
            probe = probe.with_bit(bit, (word >> (bit % 64)) & 1);
        }
        ++outcome.probes;
        if (std::binary_search(live_hosts.begin(), live_hosts.end(), probe))
            ++outcome.responders;
    }
    return outcome;
}

}  // namespace v6
