#include "v6class/routersim/targets.h"

#include <algorithm>

#include "v6class/netgen/rng.h"

namespace v6 {

std::vector<address> sample_addresses(const std::vector<address>& from,
                                      std::size_t count, std::uint64_t seed) {
    if (count >= from.size()) return from;
    // Partial Fisher–Yates over an index vector.
    std::vector<std::uint32_t> idx(from.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<std::uint32_t>(i);
    rng r{seed};
    std::vector<address> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(r.uniform(idx.size() - i));
        std::swap(idx[i], idx[j]);
        out.push_back(from[idx[i]]);
    }
    return out;
}

std::vector<address> ipv4_style_targets(const std::vector<address>& resolvers,
                                        const std::vector<address>& active_clients,
                                        std::size_t client_count, std::uint64_t seed) {
    std::vector<address> targets = resolvers;
    const std::vector<address> clients =
        sample_addresses(active_clients, client_count, seed);
    targets.insert(targets.end(), clients.begin(), clients.end());
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    return targets;
}

std::vector<address> stable_informed_targets(const std::vector<address>& stable,
                                             std::size_t count, std::uint64_t seed) {
    std::vector<address> targets = sample_addresses(stable, count, seed);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    return targets;
}

}  // namespace v6
