#include "v6class/stream/shard.h"

#include "v6class/simd/kernels.h"

namespace v6 {

void stream_shard::seal_day(int day) {
    hits_ += pending_hits_;
    pending_hits_ = 0;
    if (pending_.empty()) return;  // a day with no records for this shard

    // Sort + dedupe on the SoA lanes (radix-partitioned on the hi word);
    // (hi, lo) numeric order is byte-lexicographic address order, so the
    // result is exactly std::sort + std::unique on the address vector.
    simd::address_block block(pending_.size());
    block.assign(pending_);
    simd::sort_unique_block(block);

    // First-ever sightings go into the distinct-address trie; the /128
    // store's lifetime map is the dedup authority.
    for (std::size_t i = 0; i < block.size(); ++i) {
        const address a = block.at(i);
        if (store128_.days_seen(a) == 0) tree_.add(a);
    }

    store128_.record_day(day, block);
    pending_.clear();
    block.append_to(pending_);
    series_.set_day(day, std::move(pending_));
    pending_ = {};
}

void stream_shard::merge_tree_into(radix_tree& out) const {
    tree_.visit([&](const prefix& p, std::uint64_t count) { out.add(p, count); });
}

void stream_shard::collect_addresses(std::vector<address>& out) const {
    tree_.visit(
        [&](const prefix& p, std::uint64_t) { out.push_back(p.base()); });
}

}  // namespace v6
