#include "v6class/stream/shard.h"

#include <algorithm>

namespace v6 {

void stream_shard::seal_day(int day) {
    hits_ += pending_hits_;
    pending_hits_ = 0;
    if (pending_.empty()) return;  // a day with no records for this shard

    std::sort(pending_.begin(), pending_.end());
    pending_.erase(std::unique(pending_.begin(), pending_.end()), pending_.end());

    // First-ever sightings go into the distinct-address trie; the /128
    // store's lifetime map is the dedup authority.
    for (const address& a : pending_)
        if (store128_.days_seen(a) == 0) tree_.add(a);

    store128_.record_day(day, pending_);
    series_.set_day(day, std::move(pending_));
    pending_ = {};
}

void stream_shard::merge_tree_into(radix_tree& out) const {
    tree_.visit([&](const prefix& p, std::uint64_t count) { out.add(p, count); });
}

void stream_shard::collect_addresses(std::vector<address>& out) const {
    tree_.visit(
        [&](const prefix& p, std::uint64_t) { out.push_back(p.base()); });
}

}  // namespace v6
