#include "v6class/stream/engine.h"

#include <algorithm>

namespace v6 {

stream_engine::stream_engine(stream_config cfg)
    : cfg_(std::move(cfg)), projected_store_(cfg_.projected_length) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    if (cfg_.batch_size == 0) cfg_.batch_size = 1;
    shards_.reserve(cfg_.shards);
    queues_.reserve(cfg_.shards);
    staging_.resize(cfg_.shards);
    drained_day_.assign(cfg_.shards, kNoDay);
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shards_.push_back(std::make_unique<stream_shard>());
        queues_.push_back(
            std::make_unique<bounded_queue<shard_message>>(cfg_.queue_capacity));
    }
    workers_.reserve(cfg_.shards);
    for (unsigned i = 0; i < cfg_.shards; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
    roll_thread_ = std::thread([this] { roll_loop(); });
}

stream_engine::~stream_engine() { finish(); }

// --------------------------------------------------------------- pusher

void stream_engine::push(const stream_record& r) {
    std::unique_lock lock(push_mutex_);
    if (finished_) return;
    if (open_day_ == kNoDay) open_day_ = r.day;
    if (r.day < open_day_) {
        // Sealed (or about-to-seal) days are immutable; accepting this
        // record would tear the epoch. Count it so operators can see
        // feed disorder beyond the tolerated batching slew.
        ++late_dropped_;
        return;
    }
    if (r.day > open_day_) {
        // Day boundary: everything staged belongs to the finished day;
        // get it into the queues ahead of the seal markers.
        for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
        broadcast_seal_locked(open_day_);
        open_day_ = r.day;
    }
    ++records_;
    hits_ += r.hits;
    const unsigned shard = shard_of(r.addr);
    staging_[shard].push_back(r);
    if (staging_[shard].size() >= cfg_.batch_size) flush_shard_locked(shard);
}

void stream_engine::flush() {
    std::unique_lock lock(push_mutex_);
    if (finished_) return;
    for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
}

void stream_engine::flush_shard_locked(unsigned shard) {
    if (staging_[shard].empty()) return;
    shard_message msg;
    msg.k = shard_message::kind::batch;
    msg.batch = std::move(staging_[shard]);
    staging_[shard] = {};
    ++batches_;
    queues_[shard]->push(std::move(msg));  // blocks when full: backpressure
}

void stream_engine::broadcast_seal_locked(int day) {
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shard_message msg;
        msg.k = shard_message::kind::seal;
        msg.day = day;
        queues_[i]->push(std::move(msg));
    }
    {
        std::lock_guard roll(roll_mutex_);
        seal_days_.push_back(day);
    }
    roll_cv_.notify_all();
}

void stream_engine::finish() {
    // Serializes finishers (e.g. an explicit finish and the destructor).
    std::lock_guard finishing(finish_mutex_);
    {
        std::unique_lock lock(push_mutex_);
        if (finished_) {
            if (workers_.empty()) return;  // already finished and joined
        } else {
            finished_ = true;
            for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
            if (open_day_ != kNoDay) broadcast_seal_locked(open_day_);
        }
    }
    {
        std::lock_guard roll(roll_mutex_);
        stopping_ = true;
    }
    roll_cv_.notify_all();
    for (auto& q : queues_) q->close();
    for (auto& w : workers_) w.join();
    workers_.clear();
    if (roll_thread_.joinable()) roll_thread_.join();
}

// -------------------------------------------------------------- workers

void stream_engine::worker_loop(unsigned shard) {
    while (auto msg = queues_[shard]->pop()) {
        if (msg->k == shard_message::kind::batch) {
            for (const stream_record& r : msg->batch) shards_[shard]->buffer(r);
            continue;
        }
        // Seal marker: hand the fully-staged day to the roll thread and
        // wait until it has been applied everywhere before touching the
        // next day's batches. The roll_mutex_ handshake orders this
        // worker's buffered writes before the roll thread's seal_day and
        // the seal_day writes before this worker's next buffer().
        std::unique_lock lock(roll_mutex_);
        drained_day_[shard] = msg->day;
        roll_cv_.notify_all();
        roll_cv_.wait(lock, [&] { return applied_day_ >= msg->day; });
    }
}

// ---------------------------------------------------------- roll thread

void stream_engine::roll_loop() {
    for (;;) {
        int day = kNoDay;
        {
            std::unique_lock lock(roll_mutex_);
            roll_cv_.wait(lock, [&] { return stopping_ || !seal_days_.empty(); });
            if (seal_days_.empty()) {  // stopping, all seals applied
                lock.unlock();
                std::lock_guard done(reports_mutex_);
                rolls_done_ = true;
                report_cv_.notify_all();
                return;
            }
            day = seal_days_.front();
            roll_cv_.wait(lock, [&] {
                return std::all_of(drained_day_.begin(), drained_day_.end(),
                                   [&](int d) { return d >= day; });
            });
            seal_days_.pop_front();
        }
        {
            // The only writer of sealed state; readers (queries, the
            // report build below) hold the lock shared.
            std::unique_lock state(state_mutex_);
            for (auto& s : shards_) s->seal_day(day);
            // The projected (/64) store is engine-level (see engine.h);
            // feed it the day's union of freshly sealed shard sets.
            std::vector<address> active;
            for (const auto& s : shards_) {
                const std::vector<address>& day_set = s->series().day(day);
                active.insert(active.end(), day_set.begin(), day_set.end());
            }
            projected_store_.record_day(day, active);
            sealed_day_ = day;
        }
        {
            std::lock_guard lock(roll_mutex_);
            applied_day_ = day;
        }
        roll_cv_.notify_all();  // release the parked workers: ingest resumes
        // Asynchronous roll-up: the expensive recompute overlaps ingest
        // of the next day (workers only park again at the *next* seal,
        // which cannot be applied until this loop comes round).
        day_report report = build_report(day);
        {
            std::lock_guard lock(reports_mutex_);
            reports_.push_back(std::move(report));
        }
        report_cv_.notify_all();
    }
}

day_report stream_engine::build_report(int day) const {
    std::shared_lock state(state_mutex_);
    day_report report;
    report.day = day;
    report.ref_day = day - cfg_.window.window_fwd;
    for (const auto& s : shards_) {
        const stability_split split =
            s->classify_day(report.ref_day, cfg_.stability_n, cfg_.window);
        report.stable += split.stable.size();
        report.not_stable += split.not_stable.size();
        report.distinct_addresses += s->distinct_addresses();
    }
    report.distinct_projected = projected_store_.distinct_count();
    report.active = report.stable + report.not_stable;
    report.density = compute_density_table(merged_tree_locked(), cfg_.density_classes);
    return report;
}

// -------------------------------------------------------------- queries

stream_stats stream_engine::stats() const {
    stream_stats out;
    {
        std::unique_lock lock(push_mutex_);
        out.records = records_;
        out.hits = hits_;
        out.late_dropped = late_dropped_;
        out.batches = batches_;
        out.open_day = open_day_;
    }
    std::shared_lock state(state_mutex_);
    out.sealed_day = sealed_day_;
    for (const auto& s : shards_) out.distinct_addresses += s->distinct_addresses();
    out.distinct_projected = projected_store_.distinct_count();
    return out;
}

int stream_engine::sealed_day() const {
    std::shared_lock state(state_mutex_);
    return sealed_day_;
}

radix_tree stream_engine::merged_tree_locked() const {
    radix_tree merged;
    for (const auto& s : shards_) s->merge_tree_into(merged);
    return merged;
}

stream_snapshot stream_engine::snapshot() const {
    stream_snapshot out;
    {
        std::unique_lock lock(push_mutex_);
        out.records = records_;
        out.hits = hits_;
        out.late_dropped = late_dropped_;
    }
    std::shared_lock state(state_mutex_);
    out.epoch = sealed_day_;
    std::vector<std::uint64_t> merged_spectrum(cfg_.spectrum_max + 1, 0);
    for (const auto& s : shards_) {
        out.distinct_addresses += s->distinct_addresses();
        const auto spectrum = s->spectrum(cfg_.spectrum_max);
        for (std::size_t n = 0; n < spectrum.size(); ++n)
            merged_spectrum[n] += spectrum[n];
    }
    out.distinct_projected = projected_store_.distinct_count();
    out.spectrum = std::move(merged_spectrum);
    out.density = compute_density_table(merged_tree_locked(), cfg_.density_classes);
    return out;
}

stability_split stream_engine::classify_day(int ref_day, unsigned n) const {
    std::shared_lock state(state_mutex_);
    stability_split merged;
    for (const auto& s : shards_) {
        stability_split split = s->classify_day(ref_day, n, cfg_.window);
        merged.stable.insert(merged.stable.end(), split.stable.begin(),
                             split.stable.end());
        merged.not_stable.insert(merged.not_stable.end(), split.not_stable.begin(),
                                 split.not_stable.end());
    }
    std::sort(merged.stable.begin(), merged.stable.end());
    std::sort(merged.not_stable.begin(), merged.not_stable.end());
    return merged;
}

std::vector<std::uint64_t> stream_engine::stability_spectrum(unsigned max_n) const {
    std::shared_lock state(state_mutex_);
    std::vector<std::uint64_t> merged(max_n + 1, 0);
    for (const auto& s : shards_) {
        const auto spectrum = s->spectrum(max_n);
        for (std::size_t n = 0; n < spectrum.size(); ++n) merged[n] += spectrum[n];
    }
    return merged;
}

std::vector<density_row> stream_engine::density_table(
    const std::vector<std::pair<std::uint64_t, unsigned>>& classes) const {
    std::shared_lock state(state_mutex_);
    return compute_density_table(merged_tree_locked(), classes);
}

std::vector<address> stream_engine::distinct_addresses() const {
    std::shared_lock state(state_mutex_);
    std::vector<address> out;
    for (const auto& s : shards_) s->collect_addresses(out);
    std::sort(out.begin(), out.end());
    return out;
}

mra_series stream_engine::mra() const { return compute_mra(distinct_addresses()); }

std::vector<day_report> stream_engine::reports() const {
    std::lock_guard lock(reports_mutex_);
    return {reports_.begin(), reports_.end()};
}

std::optional<day_report> stream_engine::latest_report() const {
    std::lock_guard lock(reports_mutex_);
    if (reports_.empty()) return std::nullopt;
    return reports_.back();
}

std::optional<day_report> stream_engine::wait_for_report(int day) const {
    std::unique_lock lock(reports_mutex_);
    for (;;) {
        for (const day_report& r : reports_)
            if (r.day == day) return r;
        if (rolls_done_) return std::nullopt;
        report_cv_.wait(lock);
    }
}

}  // namespace v6
