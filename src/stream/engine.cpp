#include "v6class/stream/engine.h"

#include <algorithm>

#include "v6class/obs/introspect.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/timer.h"
#include "v6class/par/pool.h"
#include "v6class/simd/kernels.h"

namespace v6 {

void stream_engine::init_metrics() {
    if (cfg_.metrics_registry) {
        metrics_ = cfg_.metrics_registry;
    } else {
        own_metrics_ = std::make_unique<obs::registry>();
        metrics_ = own_metrics_.get();
    }
    obs::registry& reg = *metrics_;
    // Core feed counters: always on; stats() is a view over these.
    m_.fed = reg.get_counter("v6_stream_fed_total", {},
                             "Records offered to push() (accepted + late + "
                             "dropped).");
    m_.records = reg.get_counter("v6_stream_records_total", {},
                                 "Records accepted into the open day.");
    m_.hits = reg.get_counter("v6_stream_hits_total", {},
                              "Sum of accepted records' hit counts.");
    m_.late = reg.get_counter("v6_stream_late_total", {},
                              "Records older than the open day, dropped "
                              "(sealed days are immutable).");
    m_.dropped = reg.get_counter("v6_stream_dropped_total", {},
                                 "Records pushed after finish(), dropped.");
    m_.batches = reg.get_counter("v6_stream_batches_total", {},
                                 "Batches enqueued to shard queues.");
    m_.seals = reg.get_counter("v6_stream_seals_total", {},
                               "Day seals applied across all shards.");
    m_.open_day = reg.get_gauge("v6_stream_open_day", {},
                                "Day currently accumulating.");
    m_.sealed_day = reg.get_gauge("v6_stream_sealed_day", {},
                                  "Epoch: last day sealed everywhere.");
    m_.epoch_lag = reg.get_gauge("v6_stream_epoch_lag_days", {},
                                 "open_day - sealed_day: how far the roll "
                                 "pipeline trails ingest.");
    m_.distinct_addresses =
        reg.get_gauge("v6_stream_distinct_addresses", {},
                      "Distinct /128s across all sealed days.");
    m_.distinct_projected =
        reg.get_gauge("v6_stream_distinct_projected", {},
                      "Distinct projected prefixes across all sealed days.");
    // Which batch-kernel dispatch level this process runs (the numeric
    // v6::simd::level value), labeled with its name; 0 = scalar (forced
    // via V6CLASS_FORCE_SCALAR or no AVX2), 2 = avx2.
    reg.get_gauge("v6class_simd_level",
                  {{"level", std::string(simd::level_name(simd::active_level()))}},
                  "Active SIMD dispatch level of the batch kernels.")
        .set(static_cast<std::int64_t>(simd::active_level()));
    if (!cfg_.metrics) return;
    // Sampled instrumentation: per-shard series and latency histograms.
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        const obs::label_list shard{{"shard", std::to_string(i)}};
        m_.shard_records.push_back(reg.get_counter(
            "v6_stream_shard_records_total", shard,
            "Records accepted per shard (skew = max/min across shards)."));
        m_.queue_depth.push_back(
            reg.get_gauge("v6_stream_queue_depth", shard,
                          "Batches waiting in the shard queue."));
        m_.queue_high_water.push_back(
            reg.get_gauge("v6_stream_queue_high_water", shard,
                          "Deepest the shard queue has been."));
    }
    m_.seal_latency = reg.get_histogram(
        "v6_stream_seal_latency_seconds", obs::latency_buckets(), {},
        "Time to apply one day seal across every shard (exclusive state "
        "lock held).");
    m_.report_build = reg.get_histogram(
        "v6_stream_report_build_seconds", obs::latency_buckets(), {},
        "Time to recompute a day report (overlaps next-day ingest).");
    m_.arena_live = reg.get_gauge(
        "v6_trie_arena_live_nodes", {},
        "Live node slots in the merged trie's arena at the last seal.");
    m_.arena_free = reg.get_gauge(
        "v6_trie_arena_free_slots", {},
        "Free-listed node slots in the merged trie's arena at the last "
        "seal.");
}

void stream_engine::init_live() {
    // Domain-level (classification) series live in the v6class_*
    // namespace, infrastructure series in v6_stream_* — see DESIGN.md
    // "Observability". Each gets a ring history and a drift detector.
    obs::registry& reg = *metrics_;
    drift_events_ = reg.get_counter(
        "v6class_drift_events_total", {},
        "Drift alarms raised over the live derived series.");
    const auto add = [&](std::string name, const std::string& metric,
                         std::string help, obs::label_list labels = {}) {
        // The tsdb label is the first label's value ("" when unlabeled)
        // — enough to tell the dense-class series apart.
        std::string label = labels.empty() ? std::string{} : labels[0].second;
        live_.emplace_back(std::move(name), help,
                           reg.get_dgauge(metric, std::move(labels), help),
                           cfg_.history, cfg_.drift);
        live_.back().metric = metric;
        live_.back().label = std::move(label);
        return live_.size() - 1;
    };
    li_gamma1_ = add("gamma1@64", "v6class_gamma1_64",
                     "MRA count ratio gamma^1 at p=64 (n_65 / n_64): how "
                     "eagerly /64s split one level down.");
    li_gamma4_ = add("gamma4@60", "v6class_gamma4_60",
                     "MRA count ratio gamma^4 at p=60 (n_64 / n_60): /64s "
                     "per active /60.");
    li_gamma16_ = add("gamma16@48", "v6class_gamma16_48",
                      "MRA count ratio gamma^16 at p=48 (n_64 / n_48): /64s "
                      "per active /48 site.");
    li_stable_fraction_ =
        add("stable_fraction", "v6class_stable_fraction",
            "nd-stable share of the classified day's active addresses.");
    li_active_ = add("active", "v6class_active_addresses",
                     "Addresses active on the classified day.");
    li_hits_p50_ = add("hits_p50", "v6class_hits_p50",
                       "P2-estimated median of per-record hit counts.");
    li_hits_p99_ = add("hits_p99", "v6class_hits_p99",
                       "P2-estimated 99th percentile of per-record hit "
                       "counts.");
    li_dense_first_ = live_.size();
    for (const auto& [n, p] : cfg_.density_classes) {
        const std::string klass = std::to_string(n) + "@" + std::to_string(p);
        add("dense " + std::to_string(n) + "@/" + std::to_string(p),
            "v6class_dense_prefixes",
            "Prefixes meeting the " + klass + " density class.",
            {{"class", klass}});
    }
    li_est_first_ = live_.size();
    if (cfg_.sketches) {
        add("day_addrs_est", "v6class_day_distinct_addresses_estimate",
            "HLL estimate of the sealed day's distinct addresses.");
        add("day_48s_est", "v6class_day_distinct_48s_estimate",
            "HLL estimate of the sealed day's distinct /48 prefixes.");
        add("day_64s_est", "v6class_day_distinct_64s_estimate",
            "HLL estimate of the sealed day's distinct /64 prefixes.");
    }
    // Infrastructure introspection surfaced as sparklines: how busy the
    // work pool's seats were between seals and how large the merged
    // trie's arena has grown.
    li_pool_util_ = add("pool util", "v6_par_pool_utilization",
                        "v6::par pool seat utilization between this seal "
                        "and the previous one (0..1).");
    li_arena_nodes_ = add("arena nodes", "v6_trie_arena_nodes",
                          "Live node slots in the merged trie's arena.");
    // Per-interval ingest IPC rides the same machinery, but only where
    // a hardware PMU exists — a permanently-zero series would just
    // waste a dashboard tile and tsdb space on software-only boxes.
    if (obs::pmu::available().hardware())
        li_pmu_ipc_ = add("ingest ipc", "v6class_pmu_ingest_ipc",
                          "Instructions per cycle inside shard.ingest_batch "
                          "scopes between this seal and the previous one.");

    // Flight-recorder re-anchor: intern every live series in the store
    // and read back its newest stored day, so re-sealing already-stored
    // days (a replay over an existing --state-dir) appends nothing.
    if (cfg_.tsdb) {
        tsdb_event_cursor_ = events_->total();  // only future events persist
        std::int64_t resume_day = std::numeric_limits<std::int64_t>::min();
        for (live_series& s : live_) {
            s.tsdb_id = cfg_.tsdb->series_id(s.metric, s.label);
            if (const auto last = cfg_.tsdb->last_ts(s.metric, s.label)) {
                s.anchor = *last;
                resume_day = std::max(resume_day, *last);
            }
        }
        if (resume_day != std::numeric_limits<std::int64_t>::min())
            events_->log(
                obs::event_level::info, "tsdb",
                "tsdb resume: series history through day " +
                    std::to_string(resume_day),
                {{"last_day",
                  obs::event_field_number(static_cast<double>(resume_day))},
                 {"recovered_points",
                  obs::event_field_number(static_cast<double>(
                      cfg_.tsdb->recovered_points()))}});
    }
}

stream_engine::stream_engine(stream_config cfg)
    : cfg_(std::move(cfg)), projected_store_(cfg_.projected_length) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    if (cfg_.batch_size == 0) cfg_.batch_size = 1;
    init_metrics();
    if (cfg_.events) {
        events_ = cfg_.events;
    } else {
        own_events_ = std::make_unique<obs::event_log>();
        events_ = own_events_.get();
    }
    init_live();
    if (cfg_.sketches) {
        shard_sketches_.reserve(cfg_.shards);
        for (unsigned i = 0; i < cfg_.shards; ++i)
            shard_sketches_.emplace_back(cfg_.hll_precision);
    }
    shards_.reserve(cfg_.shards);
    queues_.reserve(cfg_.shards);
    staging_.resize(cfg_.shards);
    drained_day_.assign(cfg_.shards, kNoDay);
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shards_.push_back(std::make_unique<stream_shard>());
        queues_.push_back(
            std::make_unique<bounded_queue<shard_message>>(cfg_.queue_capacity));
    }
    workers_.reserve(cfg_.shards);
    for (unsigned i = 0; i < cfg_.shards; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
    roll_thread_ = std::thread([this] { roll_loop(); });
}

stream_engine::~stream_engine() { finish(); }

// --------------------------------------------------------------- pusher

void stream_engine::push(const stream_record& r) {
    std::unique_lock lock(push_mutex_);
    push_locked(r);
}

void stream_engine::push_block(const simd::record_block& block) {
    // One lock acquisition per block (up to kWireMaxBatch records), not
    // per record — the contention the vector path pays per datagram.
    std::unique_lock lock(push_mutex_);
    const std::uint64_t* his = block.addrs.hi();
    const std::uint64_t* los = block.addrs.lo();
    for (std::size_t i = 0; i < block.size(); ++i)
        push_locked(stream_record{block.day[i],
                                  address::from_pair(his[i], los[i]),
                                  block.hits[i]});
}

void stream_engine::push_locked(const stream_record& r) {
    m_.fed.inc();
    if (finished_) {
        m_.dropped.inc();
        return;
    }
    if (open_day_ == kNoDay) {
        open_day_ = r.day;
        m_.open_day.set(r.day);
    }
    if (r.day < open_day_) {
        // Sealed (or about-to-seal) days are immutable; accepting this
        // record would tear the epoch. Count it so operators can see
        // feed disorder beyond the tolerated batching slew.
        m_.late.inc();
        return;
    }
    if (r.day > open_day_) {
        // Day boundary: everything staged belongs to the finished day;
        // get it into the queues ahead of the seal markers.
        for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
        broadcast_seal_locked(open_day_);
        open_day_ = r.day;
        m_.open_day.set(r.day);
        // Lag is meaningful once sealing has started; both gauges are
        // atomics, so reading the roll thread's side here is safe.
        if (m_.seals.value() > 0)
            m_.epoch_lag.set(r.day - m_.sealed_day.value());
    }
    m_.records.inc();
    m_.hits.inc(r.hits);
    if (cfg_.sketches && ++quantile_tick_ >= cfg_.quantile_sample) {
        quantile_tick_ = 0;
        const auto h = static_cast<double>(r.hits);
        hits_p50_.observe(h);
        hits_p99_.observe(h);
    }
    const unsigned shard = shard_of(r.addr);
    staging_[shard].push_back(r);
    if (staging_[shard].size() >= cfg_.batch_size) flush_shard_locked(shard);
}

void stream_engine::flush() {
    std::unique_lock lock(push_mutex_);
    if (finished_) return;
    for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
}

void stream_engine::flush_shard_locked(unsigned shard) {
    if (staging_[shard].empty()) return;
    shard_message msg;
    msg.k = shard_message::kind::batch;
    msg.batch = std::move(staging_[shard]);
    staging_[shard] = {};
    if (obs::tracer::enabled()) {
        // Span context rides the batch: the shard worker adopts it and
        // accounts the queue dwell as a queue_wait span.
        msg.ctx = obs::tracer::current();
        msg.enqueue_ns = obs::tracer::now_ns();
    }
    m_.batches.inc();
    // Per-shard counting happens here, not per push: one fetch_add per
    // batch keeps the counter exact at batch granularity while costing
    // the hot path nothing.
    if (!m_.shard_records.empty())
        m_.shard_records[shard].inc(msg.batch.size());
    queues_[shard]->push(std::move(msg));  // blocks when full: backpressure
    if (cfg_.metrics) {
        // Sampled after the (possibly blocking) push: a full queue shows
        // as depth == capacity, which is the backpressure signal.
        const auto depth = static_cast<std::int64_t>(queues_[shard]->size());
        m_.queue_depth[shard].set(depth);
        m_.queue_high_water[shard].max_of(depth);
    }
}

void stream_engine::broadcast_seal_locked(int day) {
    if (cfg_.sketches) {
        // Publish the quantile snapshots the roll thread will fold into
        // this seal's live series (it cannot read the estimators
        // directly; see the member comment).
        hits_p50_pub_.store(hits_p50_.value(), std::memory_order_release);
        hits_p99_pub_.store(hits_p99_.value(), std::memory_order_release);
        if (cfg_.federate) {
            // The aggregator receives full marker state, not just the
            // scalar value; copy the estimators at the day boundary so
            // the roll thread can snapshot them without push_mutex_.
            std::lock_guard snap(p2_snap_mutex_);
            p2_snap_p50_ = hits_p50_;
            p2_snap_p99_ = hits_p99_;
        }
    }
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shard_message msg;
        msg.k = shard_message::kind::seal;
        msg.day = day;
        queues_[i]->push(std::move(msg));
    }
    {
        std::lock_guard roll(roll_mutex_);
        seal_days_.push_back(day);
    }
    roll_cv_.notify_all();
}

void stream_engine::finish() {
    // Serializes finishers (e.g. an explicit finish and the destructor).
    std::lock_guard finishing(finish_mutex_);
    {
        std::unique_lock lock(push_mutex_);
        if (finished_) {
            if (workers_.empty()) return;  // already finished and joined
        } else {
            finished_ = true;
            for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
            if (open_day_ != kNoDay) broadcast_seal_locked(open_day_);
        }
    }
    {
        std::lock_guard roll(roll_mutex_);
        stopping_ = true;
    }
    roll_cv_.notify_all();
    for (auto& q : queues_) q->close();
    for (auto& w : workers_) w.join();
    workers_.clear();
    if (roll_thread_.joinable()) roll_thread_.join();
}

// -------------------------------------------------------------- workers

void stream_engine::worker_loop(unsigned shard) {
    const std::string tname = "stream-worker-" + std::to_string(shard);
    obs::tracer::set_thread_name(tname);
    obs::profiler::register_thread(tname);
    while (auto msg = queues_[shard]->pop()) {
        if (cfg_.metrics)
            m_.queue_depth[shard].set(
                static_cast<std::int64_t>(queues_[shard]->size()));
        if (msg->k == shard_message::kind::batch) {
            if (msg->enqueue_ns != 0) {
                // The batch's dwell time in the shard queue, parented to
                // the pusher's span that enqueued it.
                const std::uint64_t now = obs::tracer::now_ns();
                obs::tracer::emit(
                    "shard.queue_wait", obs::span_kind::queue_wait,
                    {msg->ctx.trace_id, obs::tracer::next_id()},
                    msg->ctx.span_id, msg->enqueue_ns,
                    now > msg->enqueue_ns ? now - msg->enqueue_ns : 0);
            }
            obs::context_scope adopt(msg->ctx);
            obs::span batch_span("shard.ingest_batch");
            obs::pmu_scope batch_pmu("shard.ingest_batch");
            if (cfg_.sketches) {
                // The day sketches ride the worker, not the pusher: the
                // hashing parallelizes across shards and stays off the
                // feed thread (bench/micro_sketch prices this). One
                // FNV-1a walk over the 16 bytes, snapshotted at the /48
                // and /64 boundaries, yields all three sketch hashes
                // without masked-address copies.
                day_sketches& sk = shard_sketches_[shard];
                for (const stream_record& r : msg->batch) {
                    const auto& b = r.addr.bytes();
                    std::uint64_t h = 1469598103934665603ull;
                    std::size_t i = 0;
                    for (; i < 6; ++i) h = (h ^ b[i]) * 1099511628211ull;
                    sk.p48s.add(h);
                    for (; i < 8; ++i) h = (h ^ b[i]) * 1099511628211ull;
                    sk.p64s.add(h);
                    for (; i < 16; ++i) h = (h ^ b[i]) * 1099511628211ull;
                    sk.addresses.add(h);
                }
            }
            for (const stream_record& r : msg->batch) shards_[shard]->buffer(r);
            continue;
        }
        // Seal marker: hand the fully-staged day to the roll thread and
        // wait until it has been applied everywhere before touching the
        // next day's batches. The roll_mutex_ handshake orders this
        // worker's buffered writes before the roll thread's seal_day and
        // the seal_day writes before this worker's next buffer().
        std::unique_lock lock(roll_mutex_);
        drained_day_[shard] = msg->day;
        roll_cv_.notify_all();
        roll_cv_.wait(lock, [&] { return applied_day_ >= msg->day; });
    }
}

// ---------------------------------------------------------- roll thread

void stream_engine::roll_loop() {
    obs::tracer::set_thread_name("stream-roll");
    obs::profiler::register_thread("stream-roll");
    for (;;) {
        int day = kNoDay;
        {
            std::unique_lock lock(roll_mutex_);
            roll_cv_.wait(lock, [&] { return stopping_ || !seal_days_.empty(); });
            if (seal_days_.empty()) {  // stopping, all seals applied
                lock.unlock();
                std::lock_guard done(reports_mutex_);
                rolls_done_ = true;
                report_cv_.notify_all();
                return;
            }
            day = seal_days_.front();
            roll_cv_.wait(lock, [&] {
                return std::all_of(drained_day_.begin(), drained_day_.end(),
                                   [&](int d) { return d >= day; });
            });
            seal_days_.pop_front();
        }
        {
            // The only writer of sealed state; readers (queries, the
            // report build below) hold the lock shared. The histogram
            // covers exactly the exclusive section: how long ingest of
            // already-drained shards can stall behind a seal.
            obs::trace_scope span("seal_day", m_.seal_latency);
            std::unique_lock state(state_mutex_);
            for (auto& s : shards_) {
                obs::span shard_span("shard.seal");
                obs::pmu_scope shard_pmu("shard.seal");
                s->seal_day(day);
            }
            // The projected (/64) store is engine-level (see engine.h);
            // feed it the day's union of freshly sealed shard sets.
            std::vector<address> active;
            for (const auto& s : shards_) {
                const std::vector<address>& day_set = s->series().day(day);
                active.insert(active.end(), day_set.begin(), day_set.end());
            }
            projected_store_.record_day(day, active);
            if (cfg_.sketches) last_estimates_ = merge_day_sketches();
            sealed_day_ = day;
            std::size_t distinct = 0;
            for (const auto& s : shards_) distinct += s->distinct_addresses();
            m_.distinct_addresses.set(static_cast<std::int64_t>(distinct));
            m_.distinct_projected.set(
                static_cast<std::int64_t>(projected_store_.distinct_count()));
        }
        m_.sealed_day.set(day);
        m_.seals.inc();
        m_.epoch_lag.set(std::max<std::int64_t>(0, m_.open_day.value() - day));
        {
            std::lock_guard lock(roll_mutex_);
            applied_day_ = day;
        }
        roll_cv_.notify_all();  // release the parked workers: ingest resumes
        // Asynchronous roll-up: the expensive recompute overlaps ingest
        // of the next day (workers only park again at the *next* seal,
        // which cannot be applied until this loop comes round).
        day_report report;
        {
            obs::trace_scope span("build_report", m_.report_build);
            report = build_report(day);
        }
        // Pool seat utilization over the inter-seal interval:
        // delta(busy time) spread over delta(wall time) x seat count.
        // Roll-thread-only state, so plain members suffice.
        {
            const par::pool_stats ps = par::stats();
            const std::uint64_t wall = obs::tracer::now_ns();
            const unsigned seats = ps.workers + 1;  // callers hold a seat
            if (last_util_wall_ns_ != 0 && wall > last_util_wall_ns_) {
                const double busy =
                    static_cast<double>(ps.busy_ns - last_busy_ns_);
                const double span_ns =
                    static_cast<double>(wall - last_util_wall_ns_) * seats;
                report.pool_utilization =
                    std::min(1.0, span_ns > 0 ? busy / span_ns : 0.0);
            }
            last_busy_ns_ = ps.busy_ns;
            last_util_wall_ns_ = wall;
        }
        // Ingest IPC over the same interval: delta(instructions) /
        // delta(cycles) of the shard.ingest_batch site. Roll-thread-only
        // baselines, like the pool-utilization ones above.
        {
            const obs::pmu::site_stats ingest =
                obs::pmu::site_totals("shard.ingest_batch");
            if (ingest.has(obs::pmu::counter::cycles) &&
                ingest.has(obs::pmu::counter::instructions)) {
                const std::uint64_t cyc = ingest[obs::pmu::counter::cycles];
                const std::uint64_t ins =
                    ingest[obs::pmu::counter::instructions];
                if (cyc > pmu_last_cycles_)
                    report.ingest_ipc =
                        static_cast<double>(ins - pmu_last_instr_) /
                        static_cast<double>(cyc - pmu_last_cycles_);
                pmu_last_cycles_ = cyc;
                pmu_last_instr_ = ins;
            }
        }
        if (cfg_.metrics) {
            m_.arena_live.set(static_cast<std::int64_t>(report.arena_nodes));
            m_.arena_free.set(static_cast<std::int64_t>(report.arena_free));
            obs::update_process_gauges(*metrics_);
        }
        update_live(report);
        {
            std::lock_guard lock(reports_mutex_);
            reports_.push_back(std::move(report));
        }
        report_cv_.notify_all();
    }
}

day_report stream_engine::build_report(int day) const {
    std::shared_lock state(state_mutex_);
    day_report report;
    report.day = day;
    report.ref_day = day - cfg_.window.window_fwd;
    // Per-shard classification fans out through the work pool; the sums
    // below are order-independent, so the totals match the serial path.
    struct shard_tally {
        std::uint64_t stable = 0;
        std::uint64_t not_stable = 0;
        std::uint64_t distinct = 0;
    };
    const std::vector<shard_tally> tallies =
        par::map_indexed<shard_tally>(shards_.size(), [&](std::size_t i) {
            const stability_split split = shards_[i]->classify_day(
                report.ref_day, cfg_.stability_n, cfg_.window);
            return shard_tally{split.stable.size(), split.not_stable.size(),
                               shards_[i]->distinct_addresses()};
        });
    for (const shard_tally& t : tallies) {
        report.stable += t.stable;
        report.not_stable += t.not_stable;
        report.distinct_addresses += t.distinct;
    }
    report.distinct_projected = projected_store_.distinct_count();
    report.active = report.stable + report.not_stable;
    const radix_tree merged = merged_tree_locked();
    const radix_tree::arena_stats arena = merged.arena();
    report.arena_nodes = arena.live;
    report.arena_free = arena.free_list;
    report.density = compute_density_table(merged, cfg_.density_classes);
    // The live derived series: MRA ratios around the /64 boundary from
    // the same merged trie the density table used.
    const mra_series mra = compute_mra_from_trie(merged);
    report.gamma1 = mra.ratio(64, 1);
    report.gamma4 = mra.ratio(60, 4);
    report.gamma16 = mra.ratio(48, 16);
    report.stable_fraction =
        report.active ? static_cast<double>(report.stable) /
                            static_cast<double>(report.active)
                      : 0.0;
    report.est_day_addresses = last_estimates_.addresses;
    report.est_day_48s = last_estimates_.p48s;
    report.est_day_64s = last_estimates_.p64s;
    return report;
}

stream_engine::day_estimates stream_engine::merge_day_sketches() {
    // Roll thread, exclusive section: every worker is parked at this
    // day's seal marker, so their sketch sets are quiescent (the
    // roll_mutex_ handshake ordered their writes before ours) and the
    // reset below is published to them the same way.
    obs::hyperloglog addresses(cfg_.hll_precision);
    obs::hyperloglog p48s(cfg_.hll_precision);
    obs::hyperloglog p64s(cfg_.hll_precision);
    for (day_sketches& sk : shard_sketches_) {
        addresses.merge(sk.addresses);
        p48s.merge(sk.p48s);
        p64s.merge(sk.p64s);
        sk.addresses.reset();
        sk.p48s.reset();
        sk.p64s.reset();
    }
    const day_estimates est{addresses.estimate(), p48s.estimate(),
                            p64s.estimate()};
    if (cfg_.federate) {
        // Keep the merged registers: the push hook ships them so the
        // aggregator's cross-node union is exact, not re-estimated.
        fed_day_addresses_ = std::move(addresses);
        fed_day_48s_ = std::move(p48s);
        fed_day_64s_ = std::move(p64s);
    }
    return est;
}

void stream_engine::update_live(const day_report& report) {
    // Snapshot of the live series taken under live_mutex_, consumed by
    // the alert evaluation and the tsdb flush below *after* the lock is
    // released: evaluate() takes the alert engine's mutex, and the
    // wall-clock tick path (tools/v6stream) takes that mutex before
    // sampling the engine — holding live_mutex_ across evaluate() would
    // invert the order and deadlock a concurrent seal and tick.
    struct sample_row {
        std::string metric;
        std::string label;
        double value;
        std::uint32_t tsdb_id;
        std::int64_t anchor;
    };
    std::vector<sample_row> sampled;
    {
    std::lock_guard lock(live_mutex_);
    const auto feed = [&](std::size_t idx, double v) {
        live_series& s = live_[idx];
        s.history.push(v);
        s.gauge.set(v);
        const std::optional<obs::ewma_detector::alarm> a = s.detector.update(v);
        s.alarmed = a.has_value();
        if (a) {
            drift_events_.inc();
            events_->log(
                obs::event_level::warn, "drift",
                s.name + " shifted from " + std::to_string(a->mean) + " to " +
                    std::to_string(a->value),
                {{"series", obs::event_field_string(s.name)},
                 {"day", obs::event_field_number(report.day)},
                 {"value", obs::event_field_number(a->value)},
                 {"mean", obs::event_field_number(a->mean)},
                 {"sigma", obs::event_field_number(a->sigma)},
                 {"z", obs::event_field_number(a->z)}});
        }
    };
    feed(li_gamma1_, report.gamma1);
    feed(li_gamma4_, report.gamma4);
    feed(li_gamma16_, report.gamma16);
    feed(li_stable_fraction_, report.stable_fraction);
    feed(li_active_, static_cast<double>(report.active));
    feed(li_hits_p50_, hits_p50_pub_.load(std::memory_order_acquire));
    feed(li_hits_p99_, hits_p99_pub_.load(std::memory_order_acquire));
    for (std::size_t i = 0; i < report.density.size(); ++i)
        feed(li_dense_first_ + i,
             static_cast<double>(report.density[i].dense_prefix_count));
    if (cfg_.sketches) {
        feed(li_est_first_ + 0, report.est_day_addresses);
        feed(li_est_first_ + 1, report.est_day_48s);
        feed(li_est_first_ + 2, report.est_day_64s);
    }
    feed(li_pool_util_, report.pool_utilization);
    feed(li_arena_nodes_, static_cast<double>(report.arena_nodes));
    if (li_pmu_ipc_ != SIZE_MAX) feed(li_pmu_ipc_, report.ingest_ipc);

    if (cfg_.alerts || cfg_.tsdb || cfg_.federate) {
        sampled.reserve(live_.size());
        for (const live_series& s : live_)
            if (s.history.size() > 0)
                sampled.push_back({s.metric, s.label, s.history.back(),
                                   s.tsdb_id, s.anchor});
    }
    }  // live_mutex_ released: alert + tsdb work runs on the snapshot

    // Alert rules see this seal's values via the snapshot — evaluate()
    // has its own lock, acquired here without live_mutex_ held.
    if (cfg_.alerts) {
        const auto sample = [&sampled](const std::string& series,
                                       const std::string& label)
            -> std::optional<double> {
            for (const sample_row& s : sampled)
                if (s.metric == series && s.label == label) return s.value;
            return std::nullopt;
        };
        cfg_.alerts->evaluate(sample, report.day);
    }

    // Flight-recorder flush: one point per live series at ts =
    // report.day (skipped below each series' restart anchor), every
    // event logged since the last seal (drift alarms and alert
    // transitions included — both were raised above), one commit.
    // tsdb_event_cursor_ is roll-thread-only state; the store has its
    // own mutex.
    if (cfg_.tsdb) {
        for (const sample_row& s : sampled) {
            if (report.day <= s.anchor) continue;
            cfg_.tsdb->append(s.tsdb_id, report.day, s.value);
        }
        for (const obs::event& e : events_->since(tsdb_event_cursor_)) {
            cfg_.tsdb->append_event(e);
            tsdb_event_cursor_ = e.seq;
        }
        cfg_.tsdb->commit();
    }

    // Federation push: the same sampled rows the tsdb records (ts = the
    // sealed day), plus copies of the merged day sketches, handed to
    // the hook with no engine lock held.
    if (cfg_.federate) {
        obs::federate::seal_snapshot snap;
        snap.day = report.day;
        snap.series.reserve(sampled.size());
        for (const sample_row& s : sampled)
            snap.series.push_back({s.metric, s.label, report.day, s.value});
        if (cfg_.sketches) {
            snap.has_sketches = true;
            snap.addresses = fed_day_addresses_;
            snap.p48s = fed_day_48s_;
            snap.p64s = fed_day_64s_;
            std::lock_guard p2(p2_snap_mutex_);
            snap.hits_p50 = p2_snap_p50_;
            snap.hits_p99 = p2_snap_p99_;
        }
        cfg_.federate(snap);
    }
}

live_view stream_engine::live(std::size_t events_n) const {
    live_view view;
    view.epoch = sealed_day();
    {
        std::lock_guard lock(live_mutex_);
        view.series.reserve(live_.size());
        for (const live_series& s : live_) {
            live_series_view v;
            v.name = s.name;
            v.help = s.help;
            v.metric = s.metric;
            v.label = s.label;
            v.current = s.history.size() ? s.history.back() : 0.0;
            v.alarmed = s.alarmed;
            v.history = s.history.values();
            view.series.push_back(std::move(v));
        }
    }
    view.events = events_->recent(events_n);
    return view;
}

// -------------------------------------------------------------- queries

stream_stats stream_engine::stats() const {
    stream_stats out;
    {
        // The counters are registry atomics, but reading them under
        // push_mutex_ keeps the view exact with respect to open_day_
        // (no half-applied push).
        std::unique_lock lock(push_mutex_);
        out.fed = m_.fed.value();
        out.records = m_.records.value();
        out.hits = m_.hits.value();
        out.late_dropped = m_.late.value();
        out.dropped = m_.dropped.value();
        out.batches = m_.batches.value();
        out.open_day = open_day_;
    }
    std::shared_lock state(state_mutex_);
    out.sealed_day = sealed_day_;
    for (const auto& s : shards_) out.distinct_addresses += s->distinct_addresses();
    out.distinct_projected = projected_store_.distinct_count();
    return out;
}

int stream_engine::sealed_day() const {
    std::shared_lock state(state_mutex_);
    return sealed_day_;
}

radix_tree stream_engine::merged_tree_locked() const {
    // The shards partition the /128 space by address hash, so their
    // distinct sets concatenate without overlap: collect, sort once, and
    // bulk-build the merged trie bottom-up instead of re-inserting node
    // by node.
    obs::span span("merge_tree", obs::span_kind::merge);
    std::vector<address> addrs;
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->distinct_addresses();
    addrs.reserve(total);
    for (const auto& s : shards_) s->collect_addresses(addrs);
    std::sort(addrs.begin(), addrs.end());
    radix_tree merged;
    merged.bulk_build(addrs);
    return merged;
}

stream_snapshot stream_engine::snapshot() const {
    stream_snapshot out;
    {
        std::unique_lock lock(push_mutex_);
        out.records = m_.records.value();
        out.hits = m_.hits.value();
        out.late_dropped = m_.late.value();
    }
    std::shared_lock state(state_mutex_);
    out.epoch = sealed_day_;
    std::vector<std::uint64_t> merged_spectrum(cfg_.spectrum_max + 1, 0);
    for (const auto& s : shards_) {
        out.distinct_addresses += s->distinct_addresses();
        const auto spectrum = s->spectrum(cfg_.spectrum_max);
        for (std::size_t n = 0; n < spectrum.size(); ++n)
            merged_spectrum[n] += spectrum[n];
    }
    out.distinct_projected = projected_store_.distinct_count();
    out.spectrum = std::move(merged_spectrum);
    out.density = compute_density_table(merged_tree_locked(), cfg_.density_classes);
    return out;
}

stability_split stream_engine::classify_day(int ref_day, unsigned n) const {
    std::shared_lock state(state_mutex_);
    // Shards are disjoint and sealed state is read-locked: classify them
    // concurrently, then merge in shard order (the final sort makes the
    // result independent of shard order anyway).
    const std::vector<stability_split> splits =
        par::map_indexed<stability_split>(shards_.size(), [&](std::size_t i) {
            return shards_[i]->classify_day(ref_day, n, cfg_.window);
        });
    obs::span merge_span("merge_splits", obs::span_kind::merge);
    stability_split merged;
    for (const stability_split& split : splits) {
        merged.stable.insert(merged.stable.end(), split.stable.begin(),
                             split.stable.end());
        merged.not_stable.insert(merged.not_stable.end(), split.not_stable.begin(),
                                 split.not_stable.end());
    }
    std::sort(merged.stable.begin(), merged.stable.end());
    std::sort(merged.not_stable.begin(), merged.not_stable.end());
    return merged;
}

std::vector<std::uint64_t> stream_engine::stability_spectrum(unsigned max_n) const {
    std::shared_lock state(state_mutex_);
    std::vector<std::uint64_t> merged(max_n + 1, 0);
    for (const auto& s : shards_) {
        const auto spectrum = s->spectrum(max_n);
        for (std::size_t n = 0; n < spectrum.size(); ++n) merged[n] += spectrum[n];
    }
    return merged;
}

std::vector<density_row> stream_engine::density_table(
    const std::vector<std::pair<std::uint64_t, unsigned>>& classes) const {
    std::shared_lock state(state_mutex_);
    return compute_density_table(merged_tree_locked(), classes);
}

std::vector<address> stream_engine::distinct_addresses() const {
    std::shared_lock state(state_mutex_);
    std::vector<address> out;
    for (const auto& s : shards_) s->collect_addresses(out);
    std::sort(out.begin(), out.end());
    return out;
}

mra_series stream_engine::mra() const { return compute_mra(distinct_addresses()); }

std::vector<day_report> stream_engine::reports() const {
    std::lock_guard lock(reports_mutex_);
    return {reports_.begin(), reports_.end()};
}

std::optional<day_report> stream_engine::latest_report() const {
    std::lock_guard lock(reports_mutex_);
    if (reports_.empty()) return std::nullopt;
    return reports_.back();
}

std::optional<day_report> stream_engine::wait_for_report(int day) const {
    std::unique_lock lock(reports_mutex_);
    for (;;) {
        for (const day_report& r : reports_)
            if (r.day == day) return r;
        if (rolls_done_) return std::nullopt;
        report_cv_.wait(lock);
    }
}

}  // namespace v6
