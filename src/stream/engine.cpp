#include "v6class/stream/engine.h"

#include <algorithm>

#include "v6class/obs/timer.h"

namespace v6 {

void stream_engine::init_metrics() {
    if (cfg_.metrics_registry) {
        metrics_ = cfg_.metrics_registry;
    } else {
        own_metrics_ = std::make_unique<obs::registry>();
        metrics_ = own_metrics_.get();
    }
    obs::registry& reg = *metrics_;
    // Core feed counters: always on; stats() is a view over these.
    m_.fed = reg.get_counter("v6_stream_fed_total", {},
                             "Records offered to push() (accepted + late + "
                             "dropped).");
    m_.records = reg.get_counter("v6_stream_records_total", {},
                                 "Records accepted into the open day.");
    m_.hits = reg.get_counter("v6_stream_hits_total", {},
                              "Sum of accepted records' hit counts.");
    m_.late = reg.get_counter("v6_stream_late_total", {},
                              "Records older than the open day, dropped "
                              "(sealed days are immutable).");
    m_.dropped = reg.get_counter("v6_stream_dropped_total", {},
                                 "Records pushed after finish(), dropped.");
    m_.batches = reg.get_counter("v6_stream_batches_total", {},
                                 "Batches enqueued to shard queues.");
    m_.seals = reg.get_counter("v6_stream_seals_total", {},
                               "Day seals applied across all shards.");
    m_.open_day = reg.get_gauge("v6_stream_open_day", {},
                                "Day currently accumulating.");
    m_.sealed_day = reg.get_gauge("v6_stream_sealed_day", {},
                                  "Epoch: last day sealed everywhere.");
    m_.epoch_lag = reg.get_gauge("v6_stream_epoch_lag_days", {},
                                 "open_day - sealed_day: how far the roll "
                                 "pipeline trails ingest.");
    m_.distinct_addresses =
        reg.get_gauge("v6_stream_distinct_addresses", {},
                      "Distinct /128s across all sealed days.");
    m_.distinct_projected =
        reg.get_gauge("v6_stream_distinct_projected", {},
                      "Distinct projected prefixes across all sealed days.");
    if (!cfg_.metrics) return;
    // Sampled instrumentation: per-shard series and latency histograms.
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        const obs::label_list shard{{"shard", std::to_string(i)}};
        m_.shard_records.push_back(reg.get_counter(
            "v6_stream_shard_records_total", shard,
            "Records accepted per shard (skew = max/min across shards)."));
        m_.queue_depth.push_back(
            reg.get_gauge("v6_stream_queue_depth", shard,
                          "Batches waiting in the shard queue."));
        m_.queue_high_water.push_back(
            reg.get_gauge("v6_stream_queue_high_water", shard,
                          "Deepest the shard queue has been."));
    }
    m_.seal_latency = reg.get_histogram(
        "v6_stream_seal_latency_seconds", obs::latency_buckets(), {},
        "Time to apply one day seal across every shard (exclusive state "
        "lock held).");
    m_.report_build = reg.get_histogram(
        "v6_stream_report_build_seconds", obs::latency_buckets(), {},
        "Time to recompute a day report (overlaps next-day ingest).");
}

stream_engine::stream_engine(stream_config cfg)
    : cfg_(std::move(cfg)), projected_store_(cfg_.projected_length) {
    if (cfg_.shards == 0) cfg_.shards = 1;
    if (cfg_.batch_size == 0) cfg_.batch_size = 1;
    init_metrics();
    shards_.reserve(cfg_.shards);
    queues_.reserve(cfg_.shards);
    staging_.resize(cfg_.shards);
    drained_day_.assign(cfg_.shards, kNoDay);
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shards_.push_back(std::make_unique<stream_shard>());
        queues_.push_back(
            std::make_unique<bounded_queue<shard_message>>(cfg_.queue_capacity));
    }
    workers_.reserve(cfg_.shards);
    for (unsigned i = 0; i < cfg_.shards; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
    roll_thread_ = std::thread([this] { roll_loop(); });
}

stream_engine::~stream_engine() { finish(); }

// --------------------------------------------------------------- pusher

void stream_engine::push(const stream_record& r) {
    std::unique_lock lock(push_mutex_);
    m_.fed.inc();
    if (finished_) {
        m_.dropped.inc();
        return;
    }
    if (open_day_ == kNoDay) {
        open_day_ = r.day;
        m_.open_day.set(r.day);
    }
    if (r.day < open_day_) {
        // Sealed (or about-to-seal) days are immutable; accepting this
        // record would tear the epoch. Count it so operators can see
        // feed disorder beyond the tolerated batching slew.
        m_.late.inc();
        return;
    }
    if (r.day > open_day_) {
        // Day boundary: everything staged belongs to the finished day;
        // get it into the queues ahead of the seal markers.
        for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
        broadcast_seal_locked(open_day_);
        open_day_ = r.day;
        m_.open_day.set(r.day);
        // Lag is meaningful once sealing has started; both gauges are
        // atomics, so reading the roll thread's side here is safe.
        if (m_.seals.value() > 0)
            m_.epoch_lag.set(r.day - m_.sealed_day.value());
    }
    m_.records.inc();
    m_.hits.inc(r.hits);
    const unsigned shard = shard_of(r.addr);
    staging_[shard].push_back(r);
    if (staging_[shard].size() >= cfg_.batch_size) flush_shard_locked(shard);
}

void stream_engine::flush() {
    std::unique_lock lock(push_mutex_);
    if (finished_) return;
    for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
}

void stream_engine::flush_shard_locked(unsigned shard) {
    if (staging_[shard].empty()) return;
    shard_message msg;
    msg.k = shard_message::kind::batch;
    msg.batch = std::move(staging_[shard]);
    staging_[shard] = {};
    m_.batches.inc();
    // Per-shard counting happens here, not per push: one fetch_add per
    // batch keeps the counter exact at batch granularity while costing
    // the hot path nothing.
    if (!m_.shard_records.empty())
        m_.shard_records[shard].inc(msg.batch.size());
    queues_[shard]->push(std::move(msg));  // blocks when full: backpressure
    if (cfg_.metrics) {
        // Sampled after the (possibly blocking) push: a full queue shows
        // as depth == capacity, which is the backpressure signal.
        const auto depth = static_cast<std::int64_t>(queues_[shard]->size());
        m_.queue_depth[shard].set(depth);
        m_.queue_high_water[shard].max_of(depth);
    }
}

void stream_engine::broadcast_seal_locked(int day) {
    for (unsigned i = 0; i < cfg_.shards; ++i) {
        shard_message msg;
        msg.k = shard_message::kind::seal;
        msg.day = day;
        queues_[i]->push(std::move(msg));
    }
    {
        std::lock_guard roll(roll_mutex_);
        seal_days_.push_back(day);
    }
    roll_cv_.notify_all();
}

void stream_engine::finish() {
    // Serializes finishers (e.g. an explicit finish and the destructor).
    std::lock_guard finishing(finish_mutex_);
    {
        std::unique_lock lock(push_mutex_);
        if (finished_) {
            if (workers_.empty()) return;  // already finished and joined
        } else {
            finished_ = true;
            for (unsigned i = 0; i < cfg_.shards; ++i) flush_shard_locked(i);
            if (open_day_ != kNoDay) broadcast_seal_locked(open_day_);
        }
    }
    {
        std::lock_guard roll(roll_mutex_);
        stopping_ = true;
    }
    roll_cv_.notify_all();
    for (auto& q : queues_) q->close();
    for (auto& w : workers_) w.join();
    workers_.clear();
    if (roll_thread_.joinable()) roll_thread_.join();
}

// -------------------------------------------------------------- workers

void stream_engine::worker_loop(unsigned shard) {
    while (auto msg = queues_[shard]->pop()) {
        if (cfg_.metrics)
            m_.queue_depth[shard].set(
                static_cast<std::int64_t>(queues_[shard]->size()));
        if (msg->k == shard_message::kind::batch) {
            for (const stream_record& r : msg->batch) shards_[shard]->buffer(r);
            continue;
        }
        // Seal marker: hand the fully-staged day to the roll thread and
        // wait until it has been applied everywhere before touching the
        // next day's batches. The roll_mutex_ handshake orders this
        // worker's buffered writes before the roll thread's seal_day and
        // the seal_day writes before this worker's next buffer().
        std::unique_lock lock(roll_mutex_);
        drained_day_[shard] = msg->day;
        roll_cv_.notify_all();
        roll_cv_.wait(lock, [&] { return applied_day_ >= msg->day; });
    }
}

// ---------------------------------------------------------- roll thread

void stream_engine::roll_loop() {
    for (;;) {
        int day = kNoDay;
        {
            std::unique_lock lock(roll_mutex_);
            roll_cv_.wait(lock, [&] { return stopping_ || !seal_days_.empty(); });
            if (seal_days_.empty()) {  // stopping, all seals applied
                lock.unlock();
                std::lock_guard done(reports_mutex_);
                rolls_done_ = true;
                report_cv_.notify_all();
                return;
            }
            day = seal_days_.front();
            roll_cv_.wait(lock, [&] {
                return std::all_of(drained_day_.begin(), drained_day_.end(),
                                   [&](int d) { return d >= day; });
            });
            seal_days_.pop_front();
        }
        {
            // The only writer of sealed state; readers (queries, the
            // report build below) hold the lock shared. The histogram
            // covers exactly the exclusive section: how long ingest of
            // already-drained shards can stall behind a seal.
            obs::trace_scope span("seal_day", m_.seal_latency);
            std::unique_lock state(state_mutex_);
            for (auto& s : shards_) s->seal_day(day);
            // The projected (/64) store is engine-level (see engine.h);
            // feed it the day's union of freshly sealed shard sets.
            std::vector<address> active;
            for (const auto& s : shards_) {
                const std::vector<address>& day_set = s->series().day(day);
                active.insert(active.end(), day_set.begin(), day_set.end());
            }
            projected_store_.record_day(day, active);
            sealed_day_ = day;
            std::size_t distinct = 0;
            for (const auto& s : shards_) distinct += s->distinct_addresses();
            m_.distinct_addresses.set(static_cast<std::int64_t>(distinct));
            m_.distinct_projected.set(
                static_cast<std::int64_t>(projected_store_.distinct_count()));
        }
        m_.sealed_day.set(day);
        m_.seals.inc();
        m_.epoch_lag.set(std::max<std::int64_t>(0, m_.open_day.value() - day));
        {
            std::lock_guard lock(roll_mutex_);
            applied_day_ = day;
        }
        roll_cv_.notify_all();  // release the parked workers: ingest resumes
        // Asynchronous roll-up: the expensive recompute overlaps ingest
        // of the next day (workers only park again at the *next* seal,
        // which cannot be applied until this loop comes round).
        day_report report;
        {
            obs::trace_scope span("build_report", m_.report_build);
            report = build_report(day);
        }
        {
            std::lock_guard lock(reports_mutex_);
            reports_.push_back(std::move(report));
        }
        report_cv_.notify_all();
    }
}

day_report stream_engine::build_report(int day) const {
    std::shared_lock state(state_mutex_);
    day_report report;
    report.day = day;
    report.ref_day = day - cfg_.window.window_fwd;
    for (const auto& s : shards_) {
        const stability_split split =
            s->classify_day(report.ref_day, cfg_.stability_n, cfg_.window);
        report.stable += split.stable.size();
        report.not_stable += split.not_stable.size();
        report.distinct_addresses += s->distinct_addresses();
    }
    report.distinct_projected = projected_store_.distinct_count();
    report.active = report.stable + report.not_stable;
    report.density = compute_density_table(merged_tree_locked(), cfg_.density_classes);
    return report;
}

// -------------------------------------------------------------- queries

stream_stats stream_engine::stats() const {
    stream_stats out;
    {
        // The counters are registry atomics, but reading them under
        // push_mutex_ keeps the view exact with respect to open_day_
        // (no half-applied push).
        std::unique_lock lock(push_mutex_);
        out.fed = m_.fed.value();
        out.records = m_.records.value();
        out.hits = m_.hits.value();
        out.late_dropped = m_.late.value();
        out.dropped = m_.dropped.value();
        out.batches = m_.batches.value();
        out.open_day = open_day_;
    }
    std::shared_lock state(state_mutex_);
    out.sealed_day = sealed_day_;
    for (const auto& s : shards_) out.distinct_addresses += s->distinct_addresses();
    out.distinct_projected = projected_store_.distinct_count();
    return out;
}

int stream_engine::sealed_day() const {
    std::shared_lock state(state_mutex_);
    return sealed_day_;
}

radix_tree stream_engine::merged_tree_locked() const {
    radix_tree merged;
    for (const auto& s : shards_) s->merge_tree_into(merged);
    return merged;
}

stream_snapshot stream_engine::snapshot() const {
    stream_snapshot out;
    {
        std::unique_lock lock(push_mutex_);
        out.records = m_.records.value();
        out.hits = m_.hits.value();
        out.late_dropped = m_.late.value();
    }
    std::shared_lock state(state_mutex_);
    out.epoch = sealed_day_;
    std::vector<std::uint64_t> merged_spectrum(cfg_.spectrum_max + 1, 0);
    for (const auto& s : shards_) {
        out.distinct_addresses += s->distinct_addresses();
        const auto spectrum = s->spectrum(cfg_.spectrum_max);
        for (std::size_t n = 0; n < spectrum.size(); ++n)
            merged_spectrum[n] += spectrum[n];
    }
    out.distinct_projected = projected_store_.distinct_count();
    out.spectrum = std::move(merged_spectrum);
    out.density = compute_density_table(merged_tree_locked(), cfg_.density_classes);
    return out;
}

stability_split stream_engine::classify_day(int ref_day, unsigned n) const {
    std::shared_lock state(state_mutex_);
    stability_split merged;
    for (const auto& s : shards_) {
        stability_split split = s->classify_day(ref_day, n, cfg_.window);
        merged.stable.insert(merged.stable.end(), split.stable.begin(),
                             split.stable.end());
        merged.not_stable.insert(merged.not_stable.end(), split.not_stable.begin(),
                                 split.not_stable.end());
    }
    std::sort(merged.stable.begin(), merged.stable.end());
    std::sort(merged.not_stable.begin(), merged.not_stable.end());
    return merged;
}

std::vector<std::uint64_t> stream_engine::stability_spectrum(unsigned max_n) const {
    std::shared_lock state(state_mutex_);
    std::vector<std::uint64_t> merged(max_n + 1, 0);
    for (const auto& s : shards_) {
        const auto spectrum = s->spectrum(max_n);
        for (std::size_t n = 0; n < spectrum.size(); ++n) merged[n] += spectrum[n];
    }
    return merged;
}

std::vector<density_row> stream_engine::density_table(
    const std::vector<std::pair<std::uint64_t, unsigned>>& classes) const {
    std::shared_lock state(state_mutex_);
    return compute_density_table(merged_tree_locked(), classes);
}

std::vector<address> stream_engine::distinct_addresses() const {
    std::shared_lock state(state_mutex_);
    std::vector<address> out;
    for (const auto& s : shards_) s->collect_addresses(out);
    std::sort(out.begin(), out.end());
    return out;
}

mra_series stream_engine::mra() const { return compute_mra(distinct_addresses()); }

std::vector<day_report> stream_engine::reports() const {
    std::lock_guard lock(reports_mutex_);
    return {reports_.begin(), reports_.end()};
}

std::optional<day_report> stream_engine::latest_report() const {
    std::lock_guard lock(reports_mutex_);
    if (reports_.empty()) return std::nullopt;
    return reports_.back();
}

std::optional<day_report> stream_engine::wait_for_report(int day) const {
    std::unique_lock lock(reports_mutex_);
    for (;;) {
        for (const day_report& r : reports_)
            if (r.day == day) return r;
        if (rolls_done_) return std::nullopt;
        report_cv_.wait(lock);
    }
}

}  // namespace v6
