#include "v6class/stream/record.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace v6 {

namespace {

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

std::string_view take_field(std::string_view& rest) noexcept {
    const std::size_t space = rest.find_first_of(" \t");
    std::string_view field = rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view{}
                                           : trim(rest.substr(space));
    return field;
}

}  // namespace

bool parse_stream_record(std::string_view text, stream_record& out) noexcept {
    std::string_view rest = text;
    const std::string_view day_text = take_field(rest);
    const std::string_view addr_text = take_field(rest);
    if (day_text.empty() || addr_text.empty()) return false;

    int day = 0;
    auto [dptr, dec] =
        std::from_chars(day_text.data(), day_text.data() + day_text.size(), day);
    if (dec != std::errc{} || dptr != day_text.data() + day_text.size()) return false;

    const auto addr = address::parse(addr_text);
    if (!addr) return false;

    std::uint64_t hits = 1;
    if (!rest.empty()) {
        const std::string_view hits_text = take_field(rest);
        if (!rest.empty()) return false;  // trailing garbage
        auto [hptr, hec] = std::from_chars(
            hits_text.data(), hits_text.data() + hits_text.size(), hits);
        if (hec != std::errc{} || hptr != hits_text.data() + hits_text.size() ||
            hits == 0)
            return false;
    }
    out = stream_record{day, *addr, hits};
    return true;
}

read_report read_stream_records(
    std::istream& in, const std::function<void(const stream_record&)>& sink) {
    read_report report;
    std::string line;
    stream_record record;
    while (std::getline(in, line)) {
        ++report.lines;
        const std::string_view text = trim(line);
        if (text.empty()) {
            ++report.blank;
            continue;
        }
        if (text.front() == '#') {
            ++report.comments;
            continue;
        }
        if (!parse_stream_record(text, record)) {
            ++report.malformed;
            if (report.first_errors.size() < 8)
                report.first_errors.push_back({report.lines, line});
            continue;
        }
        ++report.parsed;
        sink(record);
    }
    return report;
}

void write_stream_record(std::ostream& out, const stream_record& r) {
    out << r.day << ' ' << r.addr.to_string() << ' ' << r.hits << '\n';
}

}  // namespace v6
