#include "v6class/dnssim/reverse_zone.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "v6class/cdnsim/world.h"
#include "v6class/routersim/topology.h"

namespace v6 {

std::string ip6_arpa_name(const address& a) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(32 * 2 + 8);
    for (int i = 31; i >= 0; --i) {
        out += digits[a.nybble(static_cast<unsigned>(i))];
        out += '.';
    }
    out += "ip6.arpa";
    return out;
}

void reverse_zone::add(const address& a, std::string name) {
    records_[a] = std::move(name);
}

std::optional<std::string_view> reverse_zone::query(const address& a) const noexcept {
    const auto it = records_.find(a);
    if (it == records_.end()) return std::nullopt;
    return std::string_view{it->second};
}

reverse_zone::scan_result reverse_zone::scan(std::vector<address> candidates) const {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    scan_result result;
    result.queries = candidates.size();
    for (const address& a : candidates) {
        if (records_.contains(a)) {
            ++result.names_found;
            result.named.push_back(a);
        }
    }
    return result;
}

void export_zone_file(const reverse_zone& zone, std::ostream& out) {
    // The store is unordered; emit in address order so exports are
    // reproducible and diffable.
    std::map<address, std::string> ordered;
    zone.for_each([&](const address& a, std::string_view name) {
        ordered.emplace(a, std::string(name));
    });
    for (const auto& [addr, name] : ordered)
        out << ip6_arpa_name(addr) << ". PTR " << name << ".\n";
}

std::size_t import_zone_file(std::istream& in, reverse_zone& zone) {
    std::size_t loaded = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == ';' || line[0] == '#') continue;
        std::istringstream fields(line);
        std::string owner, type, target;
        if (!(fields >> owner >> type >> target)) continue;
        if (type != "PTR") continue;
        // Owner: 32 reversed nybbles dot-separated + "ip6.arpa." — decode.
        if (owner.size() < 64 + 8) continue;
        std::array<std::uint8_t, 16> bytes{};
        bool ok = true;
        for (unsigned i = 0; i < 32; ++i) {
            const char c = owner[2 * i];
            unsigned v = 0;
            if (c >= '0' && c <= '9')
                v = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v = static_cast<unsigned>(c - 'a' + 10);
            else {
                ok = false;
                break;
            }
            if (owner[2 * i + 1] != '.') {
                ok = false;
                break;
            }
            // Nybble i of the owner is nybble 31-i of the address.
            const unsigned pos = 31 - i;
            bytes[pos / 2] |= static_cast<std::uint8_t>(
                pos % 2 == 0 ? v << 4 : v);
        }
        if (!ok) continue;
        if (!target.empty() && target.back() == '.') target.pop_back();
        zone.add(address{bytes}, target);
        ++loaded;
    }
    return loaded;
}

reverse_zone build_world_zone(const world& w, const router_topology* topology) {
    reverse_zone zone;

    // Router interfaces: hierarchical names with embedded location hints,
    // the style IP-geolocation tooling mines (Section 6.2.3's aside).
    if (topology) {
        static constexpr const char* cities[] = {"nyc", "lon", "fra", "hnd", "sfo",
                                                 "sin", "ams", "gru"};
        std::uint64_t i = 0;
        for (const address& a : topology->interfaces()) {
            const auto origin = w.registry().origin_of(a);
            const std::uint32_t asn = origin ? origin->asn : 0;
            const char* city = cities[(a.lo() >> 1) % 8];
            zone.add(a, "ae" + std::to_string(a.lo() & 0xf) + "-" +
                            std::to_string(i++ % 4) + "." + city + ".as" +
                            std::to_string(asn) + ".example.net");
        }
    }

    // The Japanese telco names its entire statically numbered CPE ranges,
    // active or not: provisioning-range PTRs.
    {
        const jp_telco& telco = w.telco();
        // Regenerate the full provisioning ranges the model uses: blocks
        // at ::10:<block>::/64 with hosts 0x100..0x100+cpe_per_64.
        const prefix& bgp = telco.bgp_prefixes().front();
        std::vector<observation> sample;
        telco.day_activity(0, sample);  // establishes block layout cheaply
        (void)bgp;
        // Rather than reverse-engineering the layout from samples, name
        // every address in the dense /64 blocks directly.
        std::vector<address> blocks;
        for (const observation& o : sample) blocks.push_back(o.addr.masked(64));
        std::sort(blocks.begin(), blocks.end());
        blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
        std::uint64_t n = 0;
        for (const address& b : blocks) {
            if (b.lo() != 0 || b.hextet(2) != 0x10) continue;  // CPE blocks only
            for (std::uint64_t host = 0; host < 700; ++host)
                zone.add(address::from_pair(b.hi(), 0x100 + host),
                         "cpe" + std::to_string(n++) + ".static.telco.example.jp");
        }
    }

    // The university department names its whole DHCPv6 lease range.
    {
        const eu_university_dept& dept = w.department();
        const prefix lan = dept.bgp_prefixes().front();
        // Lease slots: clusters at bits 72..80 (0x10, 0x20, 0x30...),
        // slot bytes 1..200 (the model's full lease range).
        for (std::uint64_t cluster = 1; cluster <= 4; ++cluster) {
            for (std::uint64_t slot = 1; slot <= 200; ++slot) {
                const std::uint64_t lo = ((cluster << 4) << 48) | slot;
                zone.add(address::from_pair(lan.base().hi(), lo),
                         "dhcpv6-" + std::to_string((cluster - 1) * 200 + slot) +
                             ".dept.univ.example.eu");
            }
        }
    }

    return zone;
}

}  // namespace v6
