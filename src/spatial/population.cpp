#include "v6class/spatial/population.h"

#include <algorithm>

namespace v6 {

std::vector<std::uint64_t> aggregate_populations(std::vector<address> elements,
                                                 unsigned agg_len) {
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()), elements.end());

    std::vector<std::uint64_t> pops;
    for (std::size_t i = 0; i < elements.size();) {
        const address agg = elements[i].masked(agg_len);
        std::size_t j = i;
        while (j < elements.size() && elements[j].masked(agg_len) == agg) ++j;
        pops.push_back(j - i);
        i = j;
    }
    std::sort(pops.begin(), pops.end());
    return pops;
}

std::vector<ccdf_point> ccdf_of(std::vector<std::uint64_t> samples) {
    std::vector<ccdf_point> out;
    if (samples.empty()) return out;
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    for (std::size_t i = 0; i < samples.size();) {
        std::size_t j = i;
        while (j < samples.size() && samples[j] == samples[i]) ++j;
        // Proportion of samples >= samples[i]: everything from i on.
        out.push_back({static_cast<double>(samples[i]),
                       static_cast<double>(samples.size() - i) / n});
        i = j;
    }
    return out;
}

double ccdf_at(const std::vector<ccdf_point>& ccdf, double x) noexcept {
    // Points are ascending in value with decreasing proportion; find the
    // smallest point with value >= x — its proportion is P(X >= x).
    double best = 0.0;
    for (const auto& p : ccdf) {
        if (p.value >= x) {
            best = p.proportion;
            break;
        }
    }
    return best;
}

}  // namespace v6
