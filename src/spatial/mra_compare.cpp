#include "v6class/spatial/mra_compare.h"

#include <cmath>
#include <numeric>

namespace v6 {

double mra_distance(const mra_series& a, const mra_series& b, unsigned k) {
    const std::vector<double> ra = a.ratios(k);
    const std::vector<double> rb = b.ratios(k);
    double sum = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        const double d = std::log2(ra[i]) - std::log2(rb[i]);
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(ra.size()));
}

std::vector<std::size_t> cluster_by_mra(const std::vector<mra_series>& series,
                                        double threshold, unsigned k) {
    const std::size_t n = series.size();
    // Union-find over single-linkage merges.
    std::vector<std::size_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
    };
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (mra_distance(series[i], series[j], k) <= threshold)
                parent[find(i)] = find(j);

    // Densify the ids.
    std::vector<std::size_t> ids(n);
    std::vector<std::size_t> remap(n, static_cast<std::size_t>(-1));
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = find(i);
        if (remap[root] == static_cast<std::size_t>(-1)) remap[root] = next++;
        ids[i] = remap[root];
    }
    return ids;
}

}  // namespace v6
