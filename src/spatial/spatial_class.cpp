#include "v6class/spatial/spatial_class.h"

namespace v6 {

std::string_view to_string(spatial_class c) noexcept {
    switch (c) {
        case spatial_class::dense_block: return "dense-block";
        case spatial_class::busy_subnet: return "busy-subnet";
        case spatial_class::lone_low: return "lone-low";
        case spatial_class::lone_random: return "lone-random";
    }
    return "?";
}

spatial_classifier::spatial_classifier(const radix_tree& population,
                                       spatial_class_options options)
    : population_(&population), opt_(options) {}

spatial_class spatial_classifier::classify(const address& a) const noexcept {
    // Evaluate the neighbourhood as if `a` were a member (so members and
    // hypothetical positions classify identically): effective count =
    // observed count plus one when the address itself is absent.
    const std::uint64_t self_bonus =
        population_->count_at(prefix{a, 128}) > 0 ? 0 : 1;
    const std::uint64_t in_block =
        population_->subtree_count(prefix{a, opt_.dense_p}) + self_bonus;
    if (in_block >= opt_.dense_n) return spatial_class::dense_block;

    const std::uint64_t in_64 =
        population_->subtree_count(prefix{a, 64}) + self_bonus;
    if (in_64 >= opt_.busy_k) return spatial_class::busy_subnet;

    // Alone (or nearly so): split by identifier shape.
    return (a.lo() >> 16) == 0 ? spatial_class::lone_low
                               : spatial_class::lone_random;
}

std::vector<std::uint64_t> spatial_classifier::tally(
    const std::vector<address>& addrs) const {
    std::vector<std::uint64_t> counts(4, 0);
    for (const address& a : addrs)
        ++counts[static_cast<std::size_t>(classify(a))];
    return counts;
}

}  // namespace v6
