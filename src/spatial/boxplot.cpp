#include "v6class/spatial/boxplot.h"

#include <algorithm>
#include <cmath>

namespace v6 {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
    std::sort(samples.begin(), samples.end());
    return percentile_sorted(samples, q);
}

boxplot_summary summarize(std::vector<double> samples) {
    boxplot_summary s;
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    s.samples = samples.size();
    s.min = samples.front();
    s.max = samples.back();
    s.p5 = percentile_sorted(samples, 0.05);
    s.p25 = percentile_sorted(samples, 0.25);
    s.median = percentile_sorted(samples, 0.50);
    s.p75 = percentile_sorted(samples, 0.75);
    s.p95 = percentile_sorted(samples, 0.95);
    return s;
}

}  // namespace v6
