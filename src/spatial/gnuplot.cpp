#include "v6class/spatial/gnuplot.h"

#include <fstream>
#include <stdexcept>

namespace v6 {

namespace {

std::ofstream open_or_throw(const std::filesystem::path& file) {
    std::ofstream out(file);
    if (!out) throw std::runtime_error("cannot write " + file.string());
    return out;
}

}  // namespace

std::filesystem::path write_mra_gnuplot(const std::filesystem::path& dir,
                                        const std::string& stem,
                                        const mra_plot_data& plot) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path dat = dir / (stem + ".dat");
    {
        std::ofstream out = open_or_throw(dat);
        out << "# p k ratio  (" << plot.title << ", " << plot.address_count
            << " addrs)\n";
        auto emit = [&](const std::vector<double>& series, unsigned k) {
            for (std::size_t i = 0; i < series.size(); ++i)
                out << i * k << ' ' << k << ' ' << series[i] << '\n';
            out << "\n\n";  // gnuplot dataset separator
        };
        emit(plot.bits, 1);
        emit(plot.nybbles, 4);
        emit(plot.segments, 16);
        if (!out.flush()) throw std::runtime_error("short write to " + dat.string());
    }

    const std::filesystem::path gp = dir / (stem + ".gp");
    std::ofstream out = open_or_throw(gp);
    out << "# Multi-Resolution Aggregate plot (Plonka & Berger, IMC'15 style)\n"
        << "set title '" << plot.title << " (" << plot.address_count
        << " addrs)'\n"
        << "set xlabel 'Prefix length (p)'\n"
        << "set ylabel 'aggregate count ratio, log scale'\n"
        << "set logscale y 2\n"
        << "set yrange [1:65536]\n"
        << "set xrange [0:128]\n"
        << "set xtics 16\n"
        << "set grid\n"
        << "set key top left\n"
        << "plot '" << dat.filename().string()
        << "' index 2 using 1:3 with steps lw 2 title '16-bit segments', \\\n"
        << "     '' index 1 using 1:3 with steps lw 1 title '4-bit segments', \\\n"
        << "     '' index 0 using 1:3 with lines lw 1 title 'single bits'\n";
    if (!out.flush()) throw std::runtime_error("short write to " + gp.string());
    return gp;
}

std::filesystem::path write_ccdf_gnuplot(const std::filesystem::path& dir,
                                         const std::string& stem,
                                         const std::vector<labeled_ccdf>& curves) {
    std::filesystem::create_directories(dir);
    for (std::size_t i = 0; i < curves.size(); ++i) {
        const std::filesystem::path dat =
            dir / (stem + "_" + std::to_string(i) + ".dat");
        std::ofstream out = open_or_throw(dat);
        out << "# value proportion  (" << curves[i].label << ")\n";
        for (const ccdf_point& p : curves[i].points)
            out << p.value << ' ' << p.proportion << '\n';
        if (!out.flush()) throw std::runtime_error("short write to " + dat.string());
    }
    const std::filesystem::path gp = dir / (stem + ".gp");
    std::ofstream out = open_or_throw(gp);
    out << "set xlabel 'Count, log scale'\n"
        << "set ylabel 'Complementary CDF Proportion, log scale'\n"
        << "set logscale xy\n"
        << "set grid\n"
        << "set key bottom left\n"
        << "plot ";
    for (std::size_t i = 0; i < curves.size(); ++i) {
        if (i) out << ", \\\n     ";
        out << "'" << stem << "_" << i << ".dat' using 1:2 with steps lw 2 title '"
            << curves[i].label << "'";
    }
    out << "\n";
    if (!out.flush()) throw std::runtime_error("short write to " + gp.string());
    return gp;
}

}  // namespace v6
