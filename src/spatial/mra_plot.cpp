#include "v6class/spatial/mra_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace v6 {

mra_plot_data make_mra_plot(const mra_series& mra, std::string title) {
    mra_plot_data plot;
    plot.title = std::move(title);
    plot.address_count = mra.size();
    plot.bits = mra.ratios(1);
    plot.nybbles = mra.ratios(4);
    plot.segments = mra.ratios(16);
    return plot;
}

std::string to_csv(const mra_plot_data& plot) {
    std::string out = "p,k,ratio\n";
    char line[64];
    auto emit = [&](const std::vector<double>& series, unsigned k) {
        for (std::size_t i = 0; i < series.size(); ++i) {
            std::snprintf(line, sizeof line, "%u,%u,%.6f\n",
                          static_cast<unsigned>(i * k), k, series[i]);
            out += line;
        }
    };
    emit(plot.bits, 1);
    emit(plot.nybbles, 4);
    emit(plot.segments, 16);
    return out;
}

std::string render_ascii(const mra_plot_data& plot, unsigned height) {
    height = std::max(height, 2u);
    constexpr unsigned width = 129;  // p = 0..128 inclusive
    // Row r (from the top) represents log2(ratio) = max_log * (1 - r/(height-1)),
    // with max_log = 16 (ratios range 1..2^16 for 16-bit segments).
    const double max_log = 16.0;
    std::vector<std::string> grid(height, std::string(width, ' '));

    auto plot_series = [&](const std::vector<double>& series, unsigned k, char mark) {
        for (std::size_t i = 0; i < series.size(); ++i) {
            const double v = std::max(series[i], 1.0);
            const double y = std::log2(v) / max_log;  // 0..1
            const unsigned row =
                static_cast<unsigned>(std::lround((1.0 - std::min(y, 1.0)) *
                                                  (height - 1)));
            // Mark the midpoint of the segment [p, p+k).
            const unsigned col = static_cast<unsigned>(i * k + k / 2);
            if (col < width) grid[row][col] = mark;
        }
    };
    // Draw coarse resolutions first so finer ones overwrite on collision.
    plot_series(plot.segments, 16, 'S');
    plot_series(plot.nybbles, 4, 'o');
    plot_series(plot.bits, 1, '.');

    std::string out = plot.title + "  (" + std::to_string(plot.address_count) +
                      " addrs; '.'=bits 'o'=nybbles 'S'=16-bit segments)\n";
    char label[32];
    for (unsigned r = 0; r < height; ++r) {
        const double log_val = max_log * (1.0 - static_cast<double>(r) / (height - 1));
        std::snprintf(label, sizeof label, "%7.0f |", std::exp2(log_val));
        out += label;
        out += grid[r];
        out += '\n';
    }
    out += "        +";
    out.append(width, '-');
    out += "\n         0       16      32      48      64      80      96      112     128\n";
    return out;
}

}  // namespace v6
