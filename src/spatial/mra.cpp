#include "v6class/spatial/mra.h"

#include <algorithm>
#include <cstring>

#include "v6class/obs/timer.h"
#include "v6class/simd/kernels.h"

namespace v6 {

namespace {

/// Shared by the sorted-vector and trie MRA paths: both produce the same
/// aggregate counts, so they share one histogram series.
const obs::histogram& mra_phase_histogram() {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_spatial_mra_seconds", obs::latency_buckets(), {},
        "Time to compute a multi-resolution aggregate count series.");
    return phase;
}

}  // namespace

double mra_series::ratio(unsigned p, unsigned k) const noexcept {
    const std::uint64_t lo = counts_[p];
    if (lo == 0) return 1.0;
    return static_cast<double>(counts_[p + k]) / static_cast<double>(lo);
}

std::vector<double> mra_series::ratios(unsigned k) const {
    std::vector<double> out;
    out.reserve(128 / k);
    for (unsigned p = 0; p + k <= 128; p += k) out.push_back(ratio(p, k));
    return out;
}

namespace {

mra_series from_split_histogram(const std::array<std::uint64_t, 129>& splits_below,
                                bool empty) {
    // splits_below[p] = number of covering-set splits at depths < p;
    // n_p = 1 + splits_below[p] for a non-empty set.
    std::array<std::uint64_t, 129> counts{};
    if (!empty)
        for (unsigned p = 0; p <= 128; ++p) counts[p] = 1 + splits_below[p];
    return mra_series{counts};
}

}  // namespace

mra_series compute_mra_sorted(const std::vector<address>& sorted_unique) {
    // Adjacent distinct addresses a_i, a_{i+1} share cpl bits: they fall
    // into the same /p prefix iff p <= cpl. Hence the number of /p
    // aggregates is 1 + |{i : cpl_i < p}|.
    std::array<std::uint64_t, 129> hist{};  // hist[c] = pairs with cpl == c
    for (std::size_t i = 0; i + 1 < sorted_unique.size(); ++i)
        ++hist[sorted_unique[i].common_prefix_length(sorted_unique[i + 1])];

    std::array<std::uint64_t, 129> below{};
    std::uint64_t running = 0;
    for (unsigned p = 0; p <= 128; ++p) {
        below[p] = running;
        if (p < 128) running += hist[p];
    }
    return from_split_histogram(below, sorted_unique.empty());
}

mra_series compute_mra(std::vector<address> addrs) {
    const obs::trace_scope span("mra", mra_phase_histogram());
    // Sort + dedupe on SoA lanes, then adjacent common-prefix lengths via
    // the batch kernel; identical to sort/unique/compute_mra_sorted.
    simd::address_block block(addrs.size());
    block.assign(addrs);
    simd::sort_unique_block(block);
    const std::size_t n = block.size();

    std::array<std::uint64_t, 129> hist{};  // hist[c] = pairs with cpl == c
    if (n >= 2) {
        simd::address_block a(n - 1), b(n - 1);
        a.resize(n - 1);
        b.resize(n - 1);
        std::memcpy(a.hi(), block.hi(), (n - 1) * sizeof(std::uint64_t));
        std::memcpy(a.lo(), block.lo(), (n - 1) * sizeof(std::uint64_t));
        std::memcpy(b.hi(), block.hi() + 1, (n - 1) * sizeof(std::uint64_t));
        std::memcpy(b.lo(), block.lo() + 1, (n - 1) * sizeof(std::uint64_t));
        std::vector<std::uint8_t> cpl(n - 1);
        simd::common_prefix_len_batch(a, b, cpl.data());
        for (const std::uint8_t c : cpl) ++hist[c];
    }

    std::array<std::uint64_t, 129> below{};
    std::uint64_t running = 0;
    for (unsigned p = 0; p <= 128; ++p) {
        below[p] = running;
        if (p < 128) running += hist[p];
    }
    return from_split_histogram(below, n == 0);
}

mra_series compute_mra_from_trie(const radix_tree& tree) {
    const obs::trace_scope span("mra_from_trie", mra_phase_histogram());
    std::array<std::uint64_t, 129> hist{};
    tree.visit_splits([&](unsigned len) { ++hist[len]; });
    std::array<std::uint64_t, 129> below{};
    std::uint64_t running = 0;
    for (unsigned p = 0; p <= 128; ++p) {
        below[p] = running;
        if (p < 128) running += hist[p];
    }
    return from_split_histogram(below, tree.empty());
}

}  // namespace v6
