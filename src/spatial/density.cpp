#include "v6class/spatial/density.h"

#include <algorithm>
#include <cmath>

#include "v6class/obs/timer.h"
#include "v6class/par/pool.h"

namespace v6 {

density_row compute_density_class(const radix_tree& tree, std::uint64_t n, unsigned p) {
    density_row row;
    row.n = n;
    row.p = p;
    const std::vector<dense_prefix> dense = tree.dense_prefixes_at(n, p);
    row.dense_prefix_count = dense.size();
    for (const dense_prefix& d : dense) row.covered_addresses += d.observed;
    row.possible_addresses =
        static_cast<long double>(row.dense_prefix_count) *
        std::ldexp(1.0L, static_cast<int>(128 - p));
    row.address_density = row.possible_addresses > 0
                              ? static_cast<long double>(row.covered_addresses) /
                                    row.possible_addresses
                              : 0.0L;
    return row;
}

std::vector<density_row> compute_density_table(
    const radix_tree& tree,
    const std::vector<std::pair<std::uint64_t, unsigned>>& classes) {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_spatial_density_table_seconds", obs::latency_buckets(), {},
        "Time to compute every configured n@/p density class over a trie.");
    const obs::trace_scope span("density_table", phase);
    // Classes are independent reads of one immutable trie; fan them out
    // and keep the rows in class order (slot per index → deterministic).
    return par::map_indexed<density_row>(classes.size(), [&](std::size_t i) {
        return compute_density_class(tree, classes[i].first, classes[i].second);
    });
}

std::vector<address> addresses_covered(const std::vector<dense_prefix>& dense,
                                       std::vector<address> candidates) {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<address> out;
    // Both lists are in address order; sweep them together.
    std::size_t di = 0;
    for (const address& a : candidates) {
        while (di < dense.size() && dense[di].pfx.last_address() < a) ++di;
        if (di < dense.size() && dense[di].pfx.contains(a)) out.push_back(a);
    }
    return out;
}

std::vector<address> expand_scan_targets(const std::vector<dense_prefix>& dense,
                                         std::size_t limit) {
    std::vector<address> out;
    for (const dense_prefix& d : dense) {
        if (d.pfx.length() < 96) continue;  // > 2^32 hosts: not scannable
        const std::uint64_t span = std::uint64_t{1}
                                   << (128 - d.pfx.length() > 63
                                           ? 63
                                           : 128 - d.pfx.length());
        const std::uint64_t base_lo = d.pfx.base().lo();
        const std::uint64_t hi = d.pfx.base().hi();
        for (std::uint64_t off = 0; off < span; ++off) {
            if (out.size() >= limit) return out;
            out.push_back(address::from_pair(hi, base_lo | off));
        }
    }
    return out;
}

}  // namespace v6
