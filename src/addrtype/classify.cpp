#include "v6class/addrtype/classify.h"

namespace v6 {

namespace {

constexpr std::uint16_t kTeredoHextet0 = 0x2001;
constexpr std::uint16_t kTeredoHextet1 = 0x0000;
constexpr std::uint16_t k6to4Hextet0 = 0x2002;
constexpr std::uint16_t kDocHextet1 = 0x0db8;

bool has_isatap_marker(std::uint64_t iid) noexcept {
    // RFC 5214: IID is 00-00-5E-FE or 02-00-5E-FE followed by the IPv4
    // address; only bit 70 (the u bit) may vary in the leading 32 bits.
    const std::uint64_t top32 = iid >> 32;
    return top32 == 0x00005efeull || top32 == 0x02005efeull;
}

bool has_eui64_marker(std::uint64_t iid) noexcept {
    return ((iid >> 24) & 0xffff) == 0xfffe;
}

address_scope scope_of(const address& a) noexcept {
    const std::uint8_t b0 = a.bytes()[0];
    if (b0 == 0xff) return address_scope::multicast;
    if (b0 == 0xfe && (a.bytes()[1] & 0xc0) == 0x80) return address_scope::link_local;
    if ((b0 & 0xfe) == 0xfc) return address_scope::unique_local;
    if (a.hi() == 0) {
        if (a.lo() == 0) return address_scope::unspecified;
        if (a.lo() == 1) return address_scope::loopback;
    }
    if (a.hextet(0) == 0x2001 && a.hextet(1) == kDocHextet1)
        return address_scope::documentation;
    if ((b0 & 0xe0) == 0x20) return address_scope::global_unicast;
    return address_scope::reserved;
}

// Counts populated (non-zero) nybbles in the low 64 bits.
unsigned populated_nybbles(std::uint64_t iid) noexcept {
    unsigned n = 0;
    for (unsigned i = 0; i < 16; ++i)
        if ((iid >> (4 * i)) & 0xf) ++n;
    return n;
}

// True when a 16-bit group could be one octet of an embedded dotted
// quad: either hex-coded (value <= 0xff) or decimal-coded, where the hex
// spelling read as decimal is a valid octet (0x192 "spells" 192).
bool octet_like(std::uint16_t group) noexcept {
    if (group <= 0xff) return true;
    if (group > 0x999) return false;
    unsigned dec = 0;
    for (int shift = 8; shift >= 0; shift -= 4) {
        const unsigned nybble = (group >> shift) & 0xf;
        if (nybble > 9) return false;
        dec = dec * 10 + nybble;
    }
    return dec <= 255;
}

// Heuristic for ad hoc IPv4 embedding in the IID: either the low 32 bits
// repeat an IPv4 address found in bits 16..48 (router convenience
// schemes) or the IID reads as a dotted quad, hex- or decimal-coded,
// such as ::192:0:2:33.
bool looks_v4_embedded(const address& a, std::uint64_t iid) noexcept {
    const std::uint32_t low32 = static_cast<std::uint32_t>(iid);
    const std::uint32_t mid_v4 =
        static_cast<std::uint32_t>((a.hi() >> 16) & 0xffffffffull);
    if (low32 != 0 && low32 == mid_v4) return true;
    for (unsigned g = 0; g < 4; ++g) {
        if (!octet_like(static_cast<std::uint16_t>(iid >> (48 - 16 * g))))
            return false;
    }
    // Require some spread so ::1 doesn't read as a dotted quad.
    return populated_nybbles(iid) >= 3 && (iid >> 48) != 0;
}

iid_kind iid_shape(const address& a) noexcept {
    const std::uint64_t iid = a.lo();
    if (has_isatap_marker(iid)) return iid_kind::isatap;
    if (has_eui64_marker(iid)) return iid_kind::eui64;
    if ((iid >> 16) == 0) return iid_kind::low_value;
    if (looks_v4_embedded(a, iid)) return iid_kind::embedded_ipv4;
    // A handful of populated nybbles scattered in an otherwise-zero IID is
    // the signature of a manually structured plan (Figure 1's second
    // sample, 2001:db8:167:1109::10:901).
    if (populated_nybbles(iid) <= 6) return iid_kind::structured;
    return iid_kind::pseudorandom;
}

}  // namespace

bool is_teredo(const address& a) noexcept {
    return a.hextet(0) == kTeredoHextet0 && a.hextet(1) == kTeredoHextet1;
}

bool is_6to4(const address& a) noexcept { return a.hextet(0) == k6to4Hextet0; }

bool is_isatap(const address& a) noexcept {
    return !is_teredo(a) && !is_6to4(a) && has_isatap_marker(a.lo());
}

bool is_eui64(const address& a) noexcept {
    const std::uint64_t iid = a.lo();
    return has_eui64_marker(iid) && !has_isatap_marker(iid);
}

std::optional<mac_address> eui64_mac(const address& a) noexcept {
    if (!is_eui64(a)) return std::nullopt;
    return mac_address::from_eui64_iid(a.lo());
}

unsigned iid_u_bit(const address& a) noexcept { return a.bit(70); }

classification classify(const address& a) noexcept {
    classification c;
    c.scope = scope_of(a);
    c.iid = iid_shape(a);

    if (is_teredo(a)) {
        c.transition = transition_kind::teredo;
        // Teredo stores the client IPv4 in the low 32 bits, bit-inverted.
        c.embedded_ipv4 = ~static_cast<std::uint32_t>(a.lo());
    } else if (is_6to4(a)) {
        c.transition = transition_kind::six_to_four;
        // 6to4 embeds the IPv4 address at bits 16..47.
        c.embedded_ipv4 = static_cast<std::uint32_t>((a.hi() >> 16) & 0xffffffffull);
    } else if (c.iid == iid_kind::isatap) {
        c.transition = transition_kind::isatap;
        c.embedded_ipv4 = static_cast<std::uint32_t>(a.lo());
    }

    if (c.iid == iid_kind::eui64) c.mac = mac_address::from_eui64_iid(a.lo());
    return c;
}

std::string_view to_string(transition_kind k) noexcept {
    switch (k) {
        case transition_kind::none: return "native";
        case transition_kind::teredo: return "teredo";
        case transition_kind::six_to_four: return "6to4";
        case transition_kind::isatap: return "isatap";
    }
    return "?";
}

std::string_view to_string(address_scope s) noexcept {
    switch (s) {
        case address_scope::unspecified: return "unspecified";
        case address_scope::loopback: return "loopback";
        case address_scope::multicast: return "multicast";
        case address_scope::link_local: return "link-local";
        case address_scope::unique_local: return "unique-local";
        case address_scope::documentation: return "documentation";
        case address_scope::global_unicast: return "global-unicast";
        case address_scope::reserved: return "reserved";
    }
    return "?";
}

std::string_view to_string(iid_kind k) noexcept {
    switch (k) {
        case iid_kind::eui64: return "eui64";
        case iid_kind::isatap: return "isatap";
        case iid_kind::low_value: return "low";
        case iid_kind::embedded_ipv4: return "embedded-ipv4";
        case iid_kind::structured: return "structured";
        case iid_kind::pseudorandom: return "pseudorandom";
    }
    return "?";
}

}  // namespace v6
