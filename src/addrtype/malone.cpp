#include "v6class/addrtype/malone.h"

#include "v6class/addrtype/classify.h"

namespace v6 {

namespace {

// "Wordy" IIDs: hexspeak (dead:beef, cafe, f00d...) or a single repeated
// nybble filling a 16-bit group, e.g. aaaa.
bool looks_wordy(std::uint64_t iid) noexcept {
    static constexpr std::uint16_t words[] = {
        0xdead, 0xbeef, 0xcafe, 0xbabe, 0xf00d, 0xfeed, 0xface, 0xc0de,
        0xd00d, 0xb00b, 0x1337,
    };
    unsigned wordish = 0;
    for (unsigned g = 0; g < 4; ++g) {
        const std::uint16_t group = static_cast<std::uint16_t>(iid >> (48 - 16 * g));
        for (std::uint16_t w : words)
            if (group == w) ++wordish;
        const unsigned n0 = group >> 12, n1 = (group >> 8) & 0xf, n2 = (group >> 4) & 0xf,
                       n3 = group & 0xf;
        if (group != 0 && n0 == n1 && n1 == n2 && n2 == n3) ++wordish;
    }
    return wordish >= 2;
}

}  // namespace

malone_label malone_classify(const address& a) noexcept {
    if (is_teredo(a)) return malone_label::teredo;
    if (is_6to4(a)) return malone_label::six_to_four;

    const std::uint64_t iid = a.lo();
    const std::uint64_t top32 = iid >> 32;
    if (top32 == 0x00005efeull || top32 == 0x02005efeull) return malone_label::isatap;
    if (((iid >> 24) & 0xffff) == 0xfffe) return malone_label::eui64;
    if ((iid >> 16) == 0) return malone_label::low;
    if (looks_wordy(iid)) return malone_label::word;

    {
        // Dotted quad in the IID, hex- or decimal-coded (::192:0:2:33).
        const auto octet_like = [](std::uint16_t group) {
            if (group <= 0xff) return true;
            if (group > 0x999) return false;
            unsigned dec = 0;
            for (int shift = 8; shift >= 0; shift -= 4) {
                const unsigned nybble = (group >> shift) & 0xf;
                if (nybble > 9) return false;
                dec = dec * 10 + nybble;
            }
            return dec <= 255;
        };
        bool all_octet_sized = true;
        for (unsigned g = 0; g < 4; ++g) {
            if (!octet_like(static_cast<std::uint16_t>(iid >> (48 - 16 * g)))) {
                all_octet_sized = false;
                break;
            }
        }
        if (all_octet_sized && (iid >> 48) != 0) return malone_label::v4_based;
    }

    // Randomness test (see header): every 16-bit group's leading nybble is
    // non-zero, and the u bit is clear as RFC 4941 requires. Catches
    // (15/16)^4 ~= 77% of uniformly random IIDs; the paper cites ~73% for
    // Malone's variant.
    bool leading_nybbles_populated = true;
    for (unsigned g = 0; g < 4; ++g) {
        const std::uint16_t group = static_cast<std::uint16_t>(iid >> (48 - 16 * g));
        if ((group >> 12) == 0) {
            leading_nybbles_populated = false;
            break;
        }
    }
    if (leading_nybbles_populated && a.bit(70) == 0) return malone_label::randomised;
    return malone_label::unclassified;
}

std::string_view to_string(malone_label l) noexcept {
    switch (l) {
        case malone_label::low: return "low";
        case malone_label::word: return "word";
        case malone_label::isatap: return "isatap";
        case malone_label::v4_based: return "v4-based";
        case malone_label::eui64: return "eui64";
        case malone_label::teredo: return "teredo";
        case malone_label::six_to_four: return "6to4";
        case malone_label::randomised: return "randomised";
        case malone_label::unclassified: return "unclassified";
    }
    return "?";
}

}  // namespace v6
