#include "v6class/netgen/rng.h"

#include <cmath>

namespace v6 {

zipf_sampler::zipf_sampler(std::uint64_t n, double exponent)
    : n_(n ? n : 1), exponent_(exponent), norm_(0.0) {
    for (std::uint64_t k = 1; k <= n_; ++k)
        norm_ += 1.0 / std::pow(static_cast<double>(k), exponent_);
}

std::uint64_t zipf_sampler::operator()(rng& r) const noexcept {
    // Inverse CDF by linear scan; fine for the modest n the generators
    // use (ASN ranks, hit-count buckets).
    double u = r.uniform_double() * norm_;
    for (std::uint64_t k = 1; k <= n_; ++k) {
        u -= 1.0 / std::pow(static_cast<double>(k), exponent_);
        if (u <= 0) return k;
    }
    return n_;
}

double zipf_sampler::mass(std::uint64_t rank) const noexcept {
    if (rank == 0 || rank > n_) return 0.0;
    return (1.0 / std::pow(static_cast<double>(rank), exponent_)) / norm_;
}

}  // namespace v6
