#include <stdexcept>

#include "model_util.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/models.h"

namespace v6 {

namespace {

constexpr std::uint64_t kRegionSalt = 0xe001;
constexpr std::uint64_t kPhaseSalt = 0xe002;
constexpr std::uint64_t kRenumSalt = 0xe003;
constexpr std::uint64_t kSubnetSalt = 0xe004;
constexpr std::uint64_t kDevCountSalt = 0xe005;
constexpr std::uint64_t kDevKindSalt = 0xe006;
constexpr std::uint64_t kDevMacSalt = 0xe007;
constexpr std::uint64_t kDevPrivSalt = 0xe008;
constexpr std::uint64_t kDevActiveSalt = 0xe009;
constexpr std::uint64_t kHitsSalt = 0xe00a;
constexpr std::uint64_t kSub16Salt = 0xe00b;
constexpr std::uint64_t kLowSalt = 0xe00c;
constexpr std::uint64_t kPoolSalt = 0xe00d;
constexpr std::uint64_t kPriv2Salt = 0xe00e;
constexpr std::uint64_t kCpeSalt = 0xe00f;
constexpr std::uint64_t kSpillSalt = 0xe010;

std::uint64_t device_count(std::uint64_t h, double mean) noexcept {
    // 1..5 devices with the requested mean (clamped): draw uniform in
    // [0,1) and scale; crude but deterministic and cheap.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double v = 1.0 + u * 2.0 * (mean - 1.0);
    const auto n = static_cast<std::uint64_t>(v + 0.5);
    return n < 1 ? 1 : (n > 5 ? 5 : n);
}

}  // namespace

// ---------------------------------------------------------------- eu_isp

eu_isp::eu_isp(model_config cfg, prefix bgp, options opt)
    : cfg_(cfg), pfx_{bgp}, opt_(opt) {
    if (bgp.length() > 32) throw std::invalid_argument("eu_isp expects a short prefix");
}

void eu_isp::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    const prefix& bgp = pfx_[0];
    const unsigned plen = bgp.length();

    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;

        // Network identifier: region bits (plen..40), a constant 0 at
        // bit 40, the on-demand pseudorandom 15-bit field at 41..55, and
        // a per-device 8-bit subnet at 56..63 biased to 0x00/0x01.
        const std::uint64_t region =
            hash_uniform(hash_ids(cfg_.seed, kRegionSalt, s), opt_.regions);
        std::uint64_t hi = detail::place(bgp.base().hi(), plen, 40 - plen, region);

        const bool renumbers_daily =
            hash_chance(hash_ids(cfg_.seed, kPhaseSalt ^ 0xD41, s),
                        static_cast<std::uint64_t>(opt_.daily_renumber_share * 1e6),
                        1'000'000);
        const int period = renumbers_daily ? 1 : opt_.renumber_period_days;
        const int phase = static_cast<int>(
            hash_uniform(hash_ids(cfg_.seed, kPhaseSalt, s),
                         static_cast<std::uint64_t>(period)));
        const std::uint64_t renum_epoch =
            static_cast<std::uint64_t>((day + 36500 + phase) / period);
        const std::uint64_t rand15 =
            hash_ids(cfg_.seed, kRenumSalt, s, renum_epoch) & 0x7fff;
        hi = detail::place(hi, 41, 15, rand15);

        const std::uint64_t ndev =
            device_count(hash_ids(cfg_.seed, kDevCountSalt, s), opt_.devices_mean);
        for (std::uint64_t dev = 0; dev < ndev; ++dev) {
            if (!hash_chance(hash_ids(cfg_.seed, kDevActiveSalt, s,
                                      (static_cast<std::uint64_t>(day) << 8) | dev),
                             70, 100))
                continue;

            const std::uint64_t sub_h = hash_ids(cfg_.seed, kSubnetSalt, s, dev);
            std::uint64_t subnet;
            const std::uint64_t sub_roll = hash_uniform(sub_h, 100);
            if (sub_roll < 55)
                subnet = 0x00;
            else if (sub_roll < 85)
                subnet = 0x01;
            else
                subnet = 2 + hash_uniform(sub_h >> 32, 254);
            const std::uint64_t dev_hi = detail::place(hi, 56, 8, subnet);

            const std::uint64_t kind_h = hash_ids(cfg_.seed, kDevKindSalt, s, dev);
            const std::uint64_t hits_h = hash_ids(
                cfg_.seed, kHitsSalt, s, (static_cast<std::uint64_t>(day) << 8) | dev);

            if (hash_chance(kind_h,
                            static_cast<std::uint64_t>(opt_.eui64_device_share * 1e6),
                            1'000'000)) {
                const mac_address mac =
                    device_mac(hash_ids(cfg_.seed, kDevMacSalt, s, dev));
                out.push_back(
                    {address::from_pair(dev_hi, mac.to_eui64_iid()), hits_draw(hits_h)});
            } else {
                const std::uint64_t iid = privacy_iid(hash_ids(
                    cfg_.seed, kDevPrivSalt, s,
                    (static_cast<std::uint64_t>(day) << 8) | dev));
                out.push_back({address::from_pair(dev_hi, iid), hits_draw(hits_h)});
                // A privacy address often straddles midnight (24h default
                // lifetime, plus log-processing slew): yesterday's IID
                // shows up again in today's log.
                if (hash_chance(hash_ids(cfg_.seed, kSpillSalt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                25, 100)) {
                    const std::uint64_t prev = privacy_iid(hash_ids(
                        cfg_.seed, kDevPrivSalt, s,
                        (static_cast<std::uint64_t>(day - 1) << 8) | dev));
                    out.push_back(
                        {address::from_pair(dev_hi, prev), hits_draw(hits_h >> 13)});
                }
                // Privacy IIDs rotate within the day as well (RFC 4941's
                // 24h default plus reboots): sometimes a second address.
                if (hash_chance(hash_ids(cfg_.seed, kPriv2Salt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                45, 100)) {
                    const std::uint64_t iid2 = privacy_iid(hash_ids(
                        cfg_.seed, kPriv2Salt ^ 0xff, s,
                        (static_cast<std::uint64_t>(day) << 8) | dev));
                    out.push_back(
                        {address::from_pair(dev_hi, iid2), hits_draw(hits_h >> 9)});
                }
            }
        }

        // The home gateway itself fetches content now and then: a stable
        // low-IID address in subnet 0 — one stable address per household,
        // spread across the operator's /64s.
        if (hash_chance(hash_ids(cfg_.seed, kCpeSalt, s,
                                 static_cast<std::uint64_t>(day)),
                        45, 100)) {
            const std::uint64_t cpe_hi = detail::place(hi, 56, 8, 0);
            out.push_back({address::from_pair(cpe_hi, 1),
                           hits_draw(hash_ids(cfg_.seed, kCpeSalt ^ 0xf0, s,
                                              static_cast<std::uint64_t>(day)))});
        }
    }
}

// ---------------------------------------------------------------- jp_isp

jp_isp::jp_isp(model_config cfg, prefix bgp, options opt)
    : cfg_(cfg), pfx_{bgp}, opt_(opt) {
    if (bgp.length() > 32) throw std::invalid_argument("jp_isp expects a short prefix");
}

void jp_isp::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    const prefix& bgp = pfx_[0];
    const unsigned plen = bgp.length();

    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;

        // Static per-subscriber /48, and a single 16-bit value in bits
        // 48..63 for every address of the /48 — Figure 5h's flat 48..64
        // segment.
        std::uint64_t hi = detail::place(bgp.base().hi(), plen, 48 - plen, s);
        const std::uint64_t sub16 = hash_ids(cfg_.seed, kSub16Salt, s) & 0xffff;
        hi = detail::place(hi, 48, 16, sub16);

        const std::uint64_t ndev =
            device_count(hash_ids(cfg_.seed, kDevCountSalt, s), opt_.devices_mean);
        for (std::uint64_t dev = 0; dev < ndev; ++dev) {
            if (!hash_chance(hash_ids(cfg_.seed, kDevActiveSalt, s,
                                      (static_cast<std::uint64_t>(day) << 8) | dev),
                             65, 100))
                continue;
            const std::uint64_t kind_h = hash_ids(cfg_.seed, kDevKindSalt, s, dev);
            const std::uint64_t hits_h = hash_ids(
                cfg_.seed, kHitsSalt, s, (static_cast<std::uint64_t>(day) << 8) | dev);
            if (hash_chance(kind_h,
                            static_cast<std::uint64_t>(opt_.eui64_device_share * 1e6),
                            1'000'000)) {
                // Stable MAC in a stable /48: 99.6% of this ISP's EUI-64
                // IIDs appear in exactly one /64 across a week.
                const mac_address mac =
                    device_mac(hash_ids(cfg_.seed, kDevMacSalt, s, dev));
                out.push_back(
                    {address::from_pair(hi, mac.to_eui64_iid()), hits_draw(hits_h)});
            } else {
                const std::uint64_t iid = privacy_iid(hash_ids(
                    cfg_.seed, kDevPrivSalt, s,
                    (static_cast<std::uint64_t>(day) << 8) | dev));
                out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
                if (hash_chance(hash_ids(cfg_.seed, kSpillSalt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                25, 100)) {
                    const std::uint64_t prev = privacy_iid(hash_ids(
                        cfg_.seed, kDevPrivSalt, s,
                        (static_cast<std::uint64_t>(day - 1) << 8) | dev));
                    out.push_back(
                        {address::from_pair(hi, prev), hits_draw(hits_h >> 13)});
                }
                if (hash_chance(hash_ids(cfg_.seed, kPriv2Salt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                45, 100)) {
                    const std::uint64_t iid2 = privacy_iid(hash_ids(
                        cfg_.seed, kPriv2Salt ^ 0xff, s,
                        (static_cast<std::uint64_t>(day) << 8) | dev));
                    out.push_back(
                        {address::from_pair(hi, iid2), hits_draw(hits_h >> 9)});
                }
            }
        }

        if (hash_chance(hash_ids(cfg_.seed, kCpeSalt, s,
                                 static_cast<std::uint64_t>(day)),
                        45, 100)) {
            out.push_back({address::from_pair(hi, 1),
                           hits_draw(hash_ids(cfg_.seed, kCpeSalt ^ 0xf0, s,
                                              static_cast<std::uint64_t>(day)))});
        }
    }
}

// ------------------------------------------------------------ generic_isp

generic_isp::generic_isp(std::string name, model_config cfg, prefix bgp, options opt)
    : name_(std::move(name)), cfg_(cfg), pfx_{bgp}, opt_(opt) {}

void generic_isp::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    const prefix& bgp = pfx_[0];
    const unsigned plen = bgp.length();

    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;

        std::uint64_t hi = bgp.base().hi();
        std::uint64_t forced_low_iid = 0;
        bool has_forced_low = false;

        switch (opt_.plan) {
            case practice::static_64_per_subscriber:
                hi = detail::place(hi, plen, 64 - plen, s);
                break;
            case practice::dynamic_64_pool: {
                const std::uint64_t pool = cfg_.subscribers + cfg_.subscribers / 4 + 1;
                const std::uint64_t slot = hash_uniform(
                    hash_ids(cfg_.seed, kPoolSalt, s, static_cast<std::uint64_t>(day)),
                    pool);
                hi = detail::place(hi, plen, 64 - plen, slot);
                break;
            }
            case practice::static_48_per_subscriber:
                hi = detail::place(hi, plen, 48 - plen, s);
                break;
            case practice::shared_64: {
                const std::uint64_t lans = cfg_.subscribers / 50 + 1;
                hi = detail::place(hi, plen, 64 - plen, s % lans);
                forced_low_iid = 0x100 + s / lans;  // packed DHCP-style range
                has_forced_low = true;
                break;
            }
        }

        const std::uint64_t ndev =
            device_count(hash_ids(cfg_.seed, kDevCountSalt, s), opt_.devices_mean);
        for (std::uint64_t dev = 0; dev < ndev; ++dev) {
            if (!hash_chance(hash_ids(cfg_.seed, kDevActiveSalt, s,
                                      (static_cast<std::uint64_t>(day) << 8) | dev),
                             70, 100))
                continue;
            const std::uint64_t hits_h = hash_ids(
                cfg_.seed, kHitsSalt, s, (static_cast<std::uint64_t>(day) << 8) | dev);
            if (has_forced_low) {
                out.push_back({address::from_pair(hi, forced_low_iid + (dev << 12)),
                               hits_draw(hits_h)});
                continue;
            }
            const std::uint64_t kind_h = hash_ids(cfg_.seed, kDevKindSalt, s, dev);
            const std::uint64_t roll = hash_uniform(kind_h, 1'000'000);
            const auto eui_cut =
                static_cast<std::uint64_t>(opt_.eui64_device_share * 1e6);
            const auto low_cut =
                eui_cut + static_cast<std::uint64_t>(opt_.low_iid_share * 1e6);
            if (roll < eui_cut) {
                const mac_address mac =
                    device_mac(hash_ids(cfg_.seed, kDevMacSalt, s, dev));
                out.push_back(
                    {address::from_pair(hi, mac.to_eui64_iid()), hits_draw(hits_h)});
            } else if (roll < low_cut) {
                out.push_back(
                    {address::from_pair(hi, 1 + hash_uniform(kind_h >> 32, 0x200)),
                     hits_draw(hits_h)});
            } else {
                const std::uint64_t iid = privacy_iid(hash_ids(
                    cfg_.seed, kDevPrivSalt, s,
                    (static_cast<std::uint64_t>(day) << 8) | dev));
                out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
                if (hash_chance(hash_ids(cfg_.seed, kSpillSalt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                25, 100)) {
                    const std::uint64_t prev = privacy_iid(hash_ids(
                        cfg_.seed, kDevPrivSalt, s,
                        (static_cast<std::uint64_t>(day - 1) << 8) | dev));
                    out.push_back(
                        {address::from_pair(hi, prev), hits_draw(hits_h >> 13)});
                }
                if (hash_chance(hash_ids(cfg_.seed, kPriv2Salt, s,
                                         (static_cast<std::uint64_t>(day) << 8) | dev),
                                45, 100)) {
                    const std::uint64_t iid2 = privacy_iid(hash_ids(
                        cfg_.seed, kPriv2Salt ^ 0xff, s,
                        (static_cast<std::uint64_t>(day) << 8) | dev));
                    out.push_back(
                        {address::from_pair(hi, iid2), hits_draw(hits_h >> 9)});
                }
            }
        }

        // Home-gateway address for the plans with a stable network id.
        if ((opt_.plan == practice::static_64_per_subscriber ||
             opt_.plan == practice::static_48_per_subscriber) &&
            hash_chance(hash_ids(cfg_.seed, kCpeSalt, s,
                                 static_cast<std::uint64_t>(day)),
                        45, 100)) {
            out.push_back({address::from_pair(hi, 1),
                           hits_draw(hash_ids(cfg_.seed, kCpeSalt ^ 0xf0, s,
                                              static_cast<std::uint64_t>(day)))});
        }
    }
}

}  // namespace v6
