#include <stdexcept>

#include "model_util.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/models.h"

namespace v6 {

namespace {

constexpr std::uint64_t kNetSalt = 0xed01;
constexpr std::uint64_t kSubnetSalt = 0xed02;
constexpr std::uint64_t kKindSalt = 0xed03;
constexpr std::uint64_t kMacSalt = 0xed04;
constexpr std::uint64_t kPrivSalt = 0xed05;
constexpr std::uint64_t kHitsSalt = 0xed06;
constexpr std::uint64_t kPhaseSalt = 0xed07;
constexpr std::uint64_t kLeaseSalt = 0xed08;
constexpr std::uint64_t kCpeSalt = 0xed09;

}  // namespace

// ---------------------------------------------------------- us_university

us_university::us_university(model_config cfg, prefix bgp, options opt)
    : cfg_(cfg), pfx_{bgp}, opt_(opt) {
    if (bgp.length() != 32)
        throw std::invalid_argument("us_university expects a /32");
}

void us_university::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);

    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;

        // Address plan (matches the operator-confirmed reading of
        // Figure 2a): nybble 32 takes one of three "customer network"
        // values; the next two nybbles carry the subnet; the rest of the
        // network identifier is zero, leaving sparse /64s.
        const std::uint64_t net_h = hash_ids(cfg_.seed, kNetSalt, s);
        const std::uint64_t roll = hash_uniform(net_h, 100);
        const unsigned customer =
            opt_.customer_nybbles[roll < 60 ? 0 : (roll < 90 ? 1 : 2)];
        const std::uint64_t subnet =
            hash_uniform(hash_ids(cfg_.seed, kSubnetSalt, s), opt_.subnets);

        std::uint64_t hi = detail::place(pfx_[0].base().hi(), 32, 4, customer);
        hi = detail::place(hi, 36, 8, subnet);

        const std::uint64_t kind_h = hash_ids(cfg_.seed, kKindSalt, s);
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s, static_cast<std::uint64_t>(day));
        if (hash_chance(kind_h,
                        static_cast<std::uint64_t>(opt_.eui64_device_share * 1e6),
                        1'000'000)) {
            const mac_address mac = device_mac(hash_ids(cfg_.seed, kMacSalt, s));
            out.push_back(
                {address::from_pair(hi, mac.to_eui64_iid()), hits_draw(hits_h)});
        } else {
            const std::uint64_t iid = privacy_iid(
                hash_ids(cfg_.seed, kPrivSalt, s, static_cast<std::uint64_t>(day)));
            out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
        }
    }
}

// -------------------------------------------------------------- jp_telco

jp_telco::jp_telco(model_config cfg, prefix bgp, options opt)
    : cfg_(cfg), pfx_{bgp}, opt_(opt) {
    if (bgp.length() > 48) throw std::invalid_argument("jp_telco expects a short prefix");
}

void jp_telco::day_activity(int day, std::vector<observation>& out) const {
    // Statically numbered CPE packed into a handful of /64s: addresses
    // differ only in their last bits, producing Figure 2b's prominence
    // between bits 112 and 128 (dense, scannable blocks).
    const std::uint64_t cpe_total = opt_.dense_64s * opt_.cpe_per_64;
    const std::uint64_t n_cpe =
        std::min(grown(cfg_, day), cpe_total);

    for (std::uint64_t c = 0; c < n_cpe; ++c) {
        if (!active_on(cfg_, c, day)) continue;
        const std::uint64_t block = c / opt_.cpe_per_64;
        const std::uint64_t host = c % opt_.cpe_per_64;
        // Blocks live at ::10:<small>::/64 — one constant hextet then a
        // small block number, as in the paper's sample addresses
        // (2001:db8:10:8::17f).
        std::uint64_t hi = detail::place(pfx_[0].base().hi(), 32, 16, 0x10);
        hi = detail::place(hi, 48, 16, block);
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, c, static_cast<std::uint64_t>(day));
        out.push_back({address::from_pair(hi, 0x100 + host), hits_draw(hits_h)});
    }

    // A minority of handsets with privacy addresses in a separate range
    // (the sparse half of Figure 2b).
    const std::uint64_t n_priv = static_cast<std::uint64_t>(
        static_cast<double>(grown(cfg_, day)) * opt_.privacy_share);
    for (std::uint64_t s = 0; s < n_priv; ++s) {
        if (!active_on(cfg_, s + cpe_total, day)) continue;
        std::uint64_t hi = detail::place(pfx_[0].base().hi(), 32, 16, 0x20);
        hi = detail::place(hi, 48, 16, 0xc000 + hash_uniform(
            hash_ids(cfg_.seed, kCpeSalt, s), 64));
        const std::uint64_t iid = privacy_iid(
            hash_ids(cfg_.seed, kPrivSalt, s, static_cast<std::uint64_t>(day)));
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s + cpe_total,
                     static_cast<std::uint64_t>(day));
        out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
    }
}

// ----------------------------------------------------- eu_university_dept

eu_university_dept::eu_university_dept(model_config cfg, prefix lan, options opt)
    : cfg_(cfg), pfx_{lan}, opt_(opt) {
    if (lan.length() != 64)
        throw std::invalid_argument("eu_university_dept expects a /64");
    if (opt_.clusters == 0) throw std::invalid_argument("clusters must be >= 1");
}

address eu_university_dept::host_address(std::uint64_t h, int day) const noexcept {
    // DHCPv6 leases: a host keeps its address for ~lease_churn_days, then
    // moves to another slot in its cluster's small range. Clusters are
    // one byte at bits 72..80; slots are the final byte — numerically
    // close addresses, multiple 2@/112-dense prefixes.
    const std::uint64_t cluster = h % opt_.clusters;
    const int churn = opt_.lease_churn_days;
    const int phase = static_cast<int>(
        hash_uniform(hash_ids(cfg_.seed, kPhaseSalt, h),
                     static_cast<std::uint64_t>(churn)));
    const std::uint64_t epoch =
        static_cast<std::uint64_t>((day + 36500 + phase) / churn);
    const std::uint64_t slot =
        1 + hash_uniform(hash_ids(cfg_.seed, kLeaseSalt, h, epoch), 200);

    std::uint64_t lo = 0;
    lo |= ((cluster + 1) << 4) << 48;  // bits 72..80: 0x10, 0x20, 0x30...
    lo |= slot;                        // bits 120..128
    return address::from_pair(pfx_[0].base().hi(), lo);
}

void eu_university_dept::day_activity(int day, std::vector<observation>& out) const {
    for (std::uint64_t h = 0; h < opt_.hosts; ++h) {
        if (!active_on(cfg_, h, day)) continue;
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, h, static_cast<std::uint64_t>(day));
        out.push_back({host_address(h, day), hits_draw(hits_h)});
    }
}

// --------------------------------------------------------- hosting_provider

hosting_provider::hosting_provider(model_config cfg, prefix bgp, options opt)
    : cfg_(cfg), pfx_{bgp}, opt_(opt) {
    if (bgp.length() > 48)
        throw std::invalid_argument("hosting_provider expects a short prefix");
}

void hosting_provider::day_activity(int day, std::vector<observation>& out) const {
    // Racks are /64s numbered sequentially under subnet 0x0f00 + rack;
    // servers hold static sequential IIDs (::1, ::2, ...) and the busier
    // ones answer for several vhost addresses right after their own.
    for (std::uint64_t rack = 0; rack < opt_.racks; ++rack) {
        const std::uint64_t hi =
            detail::place(pfx_[0].base().hi(), 48, 16, 0x0f00 + rack);
        for (std::uint64_t srv = 1; srv <= opt_.servers_per_rack; ++srv) {
            if (!active_on(cfg_, rack * opt_.servers_per_rack + srv, day))
                continue;
            const std::uint64_t hits_h = hash_ids(
                cfg_.seed, kHitsSalt, rack * 1000 + srv,
                static_cast<std::uint64_t>(day));
            const std::uint64_t base_iid = srv * 0x10;
            out.push_back({address::from_pair(hi, base_iid), hits_draw(hits_h)});
            const std::uint64_t role = hash_ids(cfg_.seed, kKindSalt, rack, srv);
            if (hash_chance(role, static_cast<std::uint64_t>(opt_.vhost_share * 1e6),
                            1'000'000)) {
                const std::uint64_t vhosts =
                    1 + hash_uniform(role >> 32, opt_.vhosts_mean * 2);
                for (std::uint64_t v = 1; v <= vhosts; ++v)
                    out.push_back({address::from_pair(hi, base_iid + v),
                                   hits_draw(hits_h >> (v % 13))});
            }
        }
    }
}

}  // namespace v6
