// model_util.h — shared internal helpers for the concrete model
// implementations (not installed; implementation detail).
#pragma once

#include <cstdint>

#include "v6class/ip/address.h"

namespace v6::detail {

/// Places `value` (width bits) into the high 64-bit half at address bit
/// positions [start, start+width). Bits of `value` above `width` are
/// discarded. Precondition: start + width <= 64.
constexpr std::uint64_t place(std::uint64_t hi, unsigned start, unsigned width,
                              std::uint64_t value) noexcept {
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return hi | ((value & mask) << (64 - start - width));
}

}  // namespace v6::detail
