#include <stdexcept>

#include "model_util.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/models.h"

namespace v6 {

namespace {

// Salt constants keep the stateless hash streams of different decisions
// independent of one another.
constexpr std::uint64_t kSlotSalt = 0x510f;
constexpr std::uint64_t kRoleSalt = 0xd011;
constexpr std::uint64_t kPrivSalt = 0x9a1d;
constexpr std::uint64_t kPriv2Salt = 0x9a2d;
constexpr std::uint64_t kHitsSalt = 0x4175;
constexpr std::uint64_t kSpillSalt = 0x4176;

}  // namespace

us_mobile_carrier::us_mobile_carrier(model_config cfg, std::vector<prefix> pools,
                                     options opt)
    : cfg_(cfg), pools_(std::move(pools)), opt_(opt) {
    if (pools_.empty()) throw std::invalid_argument("us_mobile_carrier: no pools");
    for (const prefix& p : pools_)
        if (p.length() > 60) throw std::invalid_argument("pool prefix too specific");
}

void us_mobile_carrier::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    const std::uint64_t pool =
        opt_.pool_64s ? opt_.pool_64s : cfg_.subscribers * 5 / 4;

    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;

        // Gateways hand out /64s from a pool sized to connection capacity;
        // a device receives a different /64 on each association, so the
        // same /64 serves different subscribers across days. Contiguous
        // slot numbering packs bits 44..63, which is what makes the
        // carrier's weekly MRA plot near-saturated in that segment.
        const std::uint64_t slot =
            hash_uniform(hash_ids(cfg_.seed, kSlotSalt, s,
                                  static_cast<std::uint64_t>(day)),
                         pool);
        const prefix& p = pools_[slot % pools_.size()];
        const std::uint64_t index = slot / pools_.size();
        const std::uint64_t hi =
            detail::place(p.base().hi(), p.length(), 64 - p.length(), index);

        const std::uint64_t role = hash_ids(cfg_.seed, kRoleSalt, s);
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s, static_cast<std::uint64_t>(day));

        const std::uint64_t fixed_cut =
            static_cast<std::uint64_t>(opt_.fixed_iid_share * 1e6);
        const std::uint64_t dup_cut =
            fixed_cut + static_cast<std::uint64_t>(opt_.duplicate_mac_share * 1e6);
        const std::uint64_t roll = hash_uniform(role, 1'000'000);

        if (roll < fixed_cut) {
            // The shared fixed IID: many handsets use ::1 behind their
            // dynamic /64. Reused slots recreate full addresses across
            // days — the source of "stable" addresses in a dynamic
            // network (Section 6.1's apparent contradiction).
            out.push_back({address::from_pair(hi, 1), hits_draw(hits_h)});
        } else if (roll < dup_cut) {
            out.push_back({address::from_pair(hi, duplicate_mac().to_eui64_iid()),
                           hits_draw(hits_h)});
        } else {
            const std::uint64_t iid = privacy_iid(
                hash_ids(cfg_.seed, kPrivSalt, s, static_cast<std::uint64_t>(day)));
            out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
            // Yesterday's privacy address (in yesterday's pool slot) can
            // straddle midnight into today's log.
            if (hash_chance(hash_ids(cfg_.seed, kSpillSalt, s,
                                     static_cast<std::uint64_t>(day)),
                            25, 100)) {
                const std::uint64_t prev_slot =
                    hash_uniform(hash_ids(cfg_.seed, kSlotSalt, s,
                                          static_cast<std::uint64_t>(day - 1)),
                                 pool);
                const prefix& prev_pool = pools_[prev_slot % pools_.size()];
                const std::uint64_t prev_hi = detail::place(
                    prev_pool.base().hi(), prev_pool.length(),
                    64 - prev_pool.length(), prev_slot / pools_.size());
                const std::uint64_t prev_iid = privacy_iid(hash_ids(
                    cfg_.seed, kPrivSalt, s, static_cast<std::uint64_t>(day - 1)));
                out.push_back({address::from_pair(prev_hi, prev_iid),
                               hits_draw(hits_h >> 13)});
            }
            if (hash_chance(hash_ids(cfg_.seed, kPriv2Salt, s,
                                     static_cast<std::uint64_t>(day)),
                            static_cast<std::uint64_t>(opt_.second_privacy_addr * 1e6),
                            1'000'000)) {
                const std::uint64_t iid2 = privacy_iid(hash_ids(
                    cfg_.seed, kPriv2Salt ^ 0xff, s, static_cast<std::uint64_t>(day)));
                out.push_back({address::from_pair(hi, iid2), hits_draw(hits_h >> 7)});
            }
        }
    }
}

}  // namespace v6
