#include "v6class/netgen/rir_registry.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace v6 {

std::string_view to_string(rir r) noexcept {
    switch (r) {
        case rir::arin: return "ARIN";
        case rir::ripe: return "RIPE";
        case rir::apnic: return "APNIC";
        case rir::lacnic: return "LACNIC";
        case rir::afrinic: return "AFRINIC";
    }
    return "?";
}

rir_registry::rir_registry() {
    // The real registries' principal blocks (each a /12, except the
    // legacy 2001::/16 which we leave out to keep Teredo's 2001::/32
    // distinct from unicast allocations).
    auto set_region = [&](rir region, const char* base, const char* limit) {
        regions_[region] = {address::must_parse(base), address::must_parse(limit)};
    };
    set_region(rir::arin, "2600::", "2610:0:0:0:0:0:0:0");
    set_region(rir::ripe, "2a00::", "2a10:0:0:0:0:0:0:0");
    set_region(rir::apnic, "2400::", "2410:0:0:0:0:0:0:0");
    set_region(rir::lacnic, "2800::", "2810:0:0:0:0:0:0:0");
    set_region(rir::afrinic, "2c00::", "2c10:0:0:0:0:0:0:0");
}

rir_registry::region_state& rir_registry::state_of(rir region) {
    return regions_.at(region);
}

prefix rir_registry::allocate(rir region, std::uint32_t asn, unsigned len) {
    if (len < 16 || len > 64) throw std::invalid_argument("allocation length");
    region_state& st = state_of(region);
    // Round the cursor up to a /len boundary, take the block, advance.
    address base = st.next.masked(len);
    if (base < st.next) {
        // Cursor is inside this block: skip to the next /len block by
        // taking the last address of the current block and stepping once.
        const address last = base.masked_upper(len);
        // Increment `last` by one (big-integer increment over 16 bytes).
        std::array<std::uint8_t, 16> b = last.bytes();
        for (int i = 15; i >= 0; --i) {
            if (++b[static_cast<std::size_t>(i)] != 0) break;
        }
        base = address{b};
    }
    const prefix block{base, len};
    if (!(block.last_address() < st.limit)) throw std::length_error("region exhausted");
    // Advance the cursor past the block.
    std::array<std::uint8_t, 16> b = block.last_address().bytes();
    for (int i = 15; i >= 0; --i) {
        if (++b[static_cast<std::size_t>(i)] != 0) break;
    }
    st.next = address{b};
    advertise(block, asn);
    return block;
}

void rir_registry::advertise(const prefix& pfx, std::uint32_t asn) {
    // Sorted insert keeps routes_ ordered eagerly, so routes() is a pure
    // const read — safe to call concurrently from parallel drivers
    // (fig5a fans out over it). Advertisement happens at world-build
    // time, so the O(n) insert is off every measured path.
    const bgp_route route{pfx, asn};
    const auto at = std::upper_bound(
        routes_.begin(), routes_.end(), route,
        [](const bgp_route& a, const bgp_route& b) { return a.pfx < b.pfx; });
    routes_.insert(at, route);
    table_.insert(pfx, asn);
}

const std::vector<bgp_route>& rir_registry::routes() const noexcept {
    return routes_;
}

std::optional<bgp_route> rir_registry::origin_of(const address& a) const noexcept {
    const auto match = table_.longest_match(a);
    if (!match) return std::nullopt;
    return bgp_route{match->first, match->second.get()};
}

std::size_t rir_registry::asn_count() const {
    std::set<std::uint32_t> asns;
    for (const auto& r : routes()) asns.insert(r.asn);
    return asns.size();
}

}  // namespace v6
