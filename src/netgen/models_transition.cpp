#include <stdexcept>

#include "model_util.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/models.h"

namespace v6 {

namespace {

constexpr std::uint64_t kV4Salt = 0x7401;
constexpr std::uint64_t kKindSalt = 0x7402;
constexpr std::uint64_t kPrivSalt = 0x7403;
constexpr std::uint64_t kHitsSalt = 0x7404;
constexpr std::uint64_t kServerSalt = 0x7405;
constexpr std::uint64_t kPortSalt = 0x7406;
constexpr std::uint64_t kSubnetSalt = 0x7407;

// A plausible public IPv4 address: one of several consumer /8s with a
// hashed host part.
std::uint32_t client_v4(std::uint64_t h) noexcept {
    constexpr std::uint32_t blocks[] = {24, 46, 71, 98, 121, 151, 189, 203};
    const std::uint32_t b = blocks[h % (sizeof(blocks) / sizeof(blocks[0]))];
    return (b << 24) | static_cast<std::uint32_t>((h >> 8) & 0xffffff);
}

}  // namespace

// ------------------------------------------------------------- relay_6to4

relay_6to4::relay_6to4(model_config cfg, options opt) : cfg_(cfg), opt_(opt) {
    pfx_.push_back(prefix::must_parse("2002::/16"));
}

void relay_6to4::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;
        const std::uint32_t v4 = client_v4(hash_ids(cfg_.seed, kV4Salt, s));
        // 2002:V4HI:V4LO:<subnet>::/64 — the IPv4 address occupies bits
        // 16..47, the segment Figure 5d shows aggregating like IPv4.
        std::uint64_t hi = detail::place(0x2002ull << 48, 16, 32, v4);
        hi = detail::place(hi, 48, 16, 0);  // home routers advertise subnet 0

        const std::uint64_t kind_h = hash_ids(cfg_.seed, kKindSalt, s);
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s, static_cast<std::uint64_t>(day));
        if (hash_chance(kind_h, static_cast<std::uint64_t>(opt_.low_iid_share * 1e6),
                        1'000'000)) {
            out.push_back({address::from_pair(hi, 1), hits_draw(hits_h)});
        } else {
            const std::uint64_t iid = privacy_iid(
                hash_ids(cfg_.seed, kPrivSalt, s, static_cast<std::uint64_t>(day)));
            out.push_back({address::from_pair(hi, iid), hits_draw(hits_h)});
        }
    }
}

// ------------------------------------------------------------ teredo_model

teredo_model::teredo_model(model_config cfg) : cfg_(cfg) {
    pfx_.push_back(prefix::must_parse("2001::/32"));
}

void teredo_model::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;
        // RFC 4380: 2001:0:<server v4>:<flags>:<obfuscated port>:<~v4>.
        constexpr std::uint32_t servers[] = {0x41c86952, 0x53ef3c9a, 0xd945d0d4};
        const std::uint32_t server =
            servers[hash_ids(cfg_.seed, kServerSalt, s) % 3];
        const std::uint32_t v4 = client_v4(hash_ids(cfg_.seed, kV4Salt, s));
        const std::uint16_t port = static_cast<std::uint16_t>(
            1024 + hash_uniform(hash_ids(cfg_.seed, kPortSalt, s,
                                         static_cast<std::uint64_t>(day)),
                                60000));
        const std::uint64_t hi = (0x20010000ull << 32) | server;
        std::uint64_t lo = 0x8000ull << 48;                       // cone flag
        lo |= static_cast<std::uint64_t>(~port & 0xffff) << 32;   // obfuscated port
        lo |= static_cast<std::uint64_t>(~v4);                    // obfuscated v4
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s, static_cast<std::uint64_t>(day));
        out.push_back({address::from_pair(hi, lo), hits_draw(hits_h)});
    }
}

// ------------------------------------------------------------ isatap_model

isatap_model::isatap_model(model_config cfg, prefix enterprise)
    : cfg_(cfg), pfx_{enterprise} {
    if (enterprise.length() > 64)
        throw std::invalid_argument("isatap_model expects a /64 or shorter");
}

void isatap_model::day_activity(int day, std::vector<observation>& out) const {
    const std::uint64_t n = grown(cfg_, day);
    const unsigned plen = pfx_[0].length();
    for (std::uint64_t s = 0; s < n; ++s) {
        if (!active_on(cfg_, s, day)) continue;
        const std::uint64_t subnet =
            hash_uniform(hash_ids(cfg_.seed, kSubnetSalt, s), 16);
        const std::uint64_t hi =
            plen < 64 ? detail::place(pfx_[0].base().hi(), plen, 64 - plen, subnet)
                      : pfx_[0].base().hi();
        const std::uint32_t v4 = client_v4(hash_ids(cfg_.seed, kV4Salt, s));
        const std::uint64_t hits_h =
            hash_ids(cfg_.seed, kHitsSalt, s, static_cast<std::uint64_t>(day));
        out.push_back(
            {address::from_pair(hi, isatap_iid(v4, true)), hits_draw(hits_h)});
    }
}

}  // namespace v6
