// Portable SWAR/scalar kernel implementations — the reference level.
//
// Every other dispatch level must reproduce these outputs bit for bit
// (tests/simd_differential_test.cpp enforces it against 100k+ inputs).

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "kernels_internal.h"

namespace v6::simd::detail {

namespace {

constexpr std::array<std::uint8_t, 256> make_hex_lut() {
    std::array<std::uint8_t, 256> lut{};
    for (int i = 0; i < 256; ++i) lut[i] = 0xff;
    for (int c = '0'; c <= '9'; ++c) lut[c] = static_cast<std::uint8_t>(c - '0');
    for (int c = 'a'; c <= 'f'; ++c)
        lut[c] = static_cast<std::uint8_t>(c - 'a' + 10);
    for (int c = 'A'; c <= 'F'; ++c)
        lut[c] = static_cast<std::uint8_t>(c - 'A' + 10);
    return lut;
}

constexpr std::array<std::uint8_t, 256> kHexLut = make_hex_lut();

void scan_scalar(const char* s, std::size_t n, scan_result& sc) noexcept {
    sc.colon = 0;
    sc.dot = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned char c = static_cast<unsigned char>(s[i]);
        sc.colon |= static_cast<std::uint64_t>(c == ':') << i;
        sc.dot |= static_cast<std::uint64_t>(c == '.') << i;
        sc.hexval[i] = kHexLut[c];
    }
}

std::size_t parse_batch_scalar(const std::string_view* texts, std::size_t n,
                               address_block& out, std::uint8_t* ok) {
    out.resize(n);
    std::uint64_t* hi = out.hi();
    std::uint64_t* lo = out.lo();
    std::size_t good = 0;
    scan_result sc;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string_view t = texts[i];
        hi[i] = 0;
        lo[i] = 0;
        if (t.empty() || t.size() > 45) {
            ok[i] = 0;
            continue;
        }
        scan_scalar(t.data(), t.size(), sc);
        const bool v = assemble(t.data(), t.size(), sc, hi[i], lo[i]);
        if (!v) {
            hi[i] = 0;
            lo[i] = 0;
        }
        ok[i] = v ? 1 : 0;
        good += v ? 1 : 0;
    }
    return good;
}

void format_batch_scalar(const address_block& in, char* buf,
                         std::uint8_t* lens) {
    const std::size_t n = in.size();
    const std::uint64_t* hi = in.hi();
    const std::uint64_t* lo = in.lo();
    char hex32[32];
    for (std::size_t i = 0; i < n; ++i) {
        hex_expand_u64(hi[i], hex32);
        hex_expand_u64(lo[i], hex32 + 16);
        lens[i] = static_cast<std::uint8_t>(
            format_one(hi[i], lo[i], hex32, buf + kFormatStride * i));
    }
}

void classify_batch_scalar(const address_block& in, std::uint8_t* transition,
                           std::uint8_t* scope, std::uint8_t* iid) {
    const std::size_t n = in.size();
    const std::uint64_t* hi = in.hi();
    const std::uint64_t* lo = in.lo();
    for (std::size_t i = 0; i < n; ++i)
        classify_lane(hi[i], lo[i], transition[i], scope[i], iid[i]);
}

void mask_batch_scalar(address_block& block, unsigned len) {
    const std::size_t n = block.size();
    std::uint64_t* hi = block.hi();
    std::uint64_t* lo = block.lo();
    for (std::size_t i = 0; i < n; ++i) mask_lane(hi[i], lo[i], len);
}

}  // namespace

void malone_batch_scalar(const address_block& in, std::uint8_t* labels) {
    const std::size_t n = in.size();
    const std::uint64_t* hi = in.hi();
    const std::uint64_t* lo = in.lo();
    for (std::size_t i = 0; i < n; ++i) labels[i] = malone_lane(hi[i], lo[i]);
}

void cpl_batch_scalar(const address_block& a, const address_block& b,
                      std::uint8_t* out) {
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(
            cpl_lane(a.hi()[i], a.lo()[i], b.hi()[i], b.lo()[i]));
}

namespace {

// MSD radix partition on the top hi byte, then std::sort of (hi, lo)
// pairs per bucket.  (hi, lo) numeric order equals the byte-lexicographic
// ip address order, so this matches std::sort over ip addresses.
void sort_pairs(address_block& block,
                std::vector<std::pair<std::uint64_t, std::uint64_t>>& v) {
    const std::size_t n = block.size();
    v.resize(n);
    const std::uint64_t* hi = block.hi();
    const std::uint64_t* lo = block.lo();

    std::size_t bucket_count[256] = {};
    for (std::size_t i = 0; i < n; ++i) ++bucket_count[hi[i] >> 56];

    std::size_t start[257];
    start[0] = 0;
    for (int b = 0; b < 256; ++b) start[b + 1] = start[b] + bucket_count[b];

    std::size_t cursor[256];
    for (int b = 0; b < 256; ++b) cursor[b] = start[b];
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t b = hi[i] >> 56;
        v[cursor[b]++] = {hi[i], lo[i]};
    }
    for (int b = 0; b < 256; ++b) {
        if (bucket_count[b] > 1)
            std::sort(v.begin() + static_cast<std::ptrdiff_t>(start[b]),
                      v.begin() + static_cast<std::ptrdiff_t>(start[b + 1]));
    }
}

}  // namespace

void block_sort(address_block& block) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> v;
    sort_pairs(block, v);
    std::uint64_t* hi = block.hi();
    std::uint64_t* lo = block.lo();
    for (std::size_t i = 0; i < v.size(); ++i) {
        hi[i] = v[i].first;
        lo[i] = v[i].second;
    }
}

void block_sort_unique(address_block& block) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> v;
    sort_pairs(block, v);
    std::uint64_t* hi = block.hi();
    std::uint64_t* lo = block.lo();
    std::size_t out = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0 && v[i] == v[i - 1]) continue;
        hi[out] = v[i].first;
        lo[out] = v[i].second;
        ++out;
    }
    block.resize(out);
}

const kernel_table& scalar_table() noexcept {
    static const kernel_table t = {
        &parse_batch_scalar,    &format_batch_scalar, &classify_batch_scalar,
        &malone_batch_scalar,   &cpl_batch_scalar,    &mask_batch_scalar,
        &block_sort,            &block_sort_unique,
    };
    return t;
}

}  // namespace v6::simd::detail
