// AVX2 kernel implementations.
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt in
// this directory) and is only referenced through the dispatch table, so
// the binary stays runnable on non-AVX2 machines.  The vector code here
// only accelerates *character classification* (parse) and *bit
// classification* (classify/mask); all semantic assembly goes through the
// shared cores in kernels_internal.h, which is how the bit-identical
// contract with the scalar level is kept.

#if defined(V6CLASS_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

#include "kernels_internal.h"

namespace v6::simd::detail {

namespace {

// ---------------------------------------------------------------- parse --

inline void scan_avx2(const char* s, std::size_t n, scan_result& sc) noexcept {
    // The scratch carries stale bytes from the previous lane past `n`;
    // assemble() masks every mask/byte it reads by the string length.
    char* buf = sc.text;
    copy_text(buf, s, n);

    const __m256i set0 = _mm256_set1_epi8('0');
    const __m256i ten = _mm256_set1_epi8(10);
    const __m256i six = _mm256_set1_epi8(6);
    const __m256i minus1 = _mm256_set1_epi8(-1);
    const __m256i lcase = _mm256_set1_epi8(0x20);
    const __m256i seta = _mm256_set1_epi8('a');
    const __m256i colon_c = _mm256_set1_epi8(':');
    const __m256i dot_c = _mm256_set1_epi8('.');
    const __m256i bad = _mm256_set1_epi8(static_cast<char>(0xff));

    std::uint32_t colon_m[2], dot_m[2];
    for (int half = 0; half < 2; ++half) {
        const __m256i c = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(buf + 32 * half));
        const __m256i d = _mm256_sub_epi8(c, set0);
        const __m256i is_digit = _mm256_and_si256(_mm256_cmpgt_epi8(d, minus1),
                                                  _mm256_cmpgt_epi8(ten, d));
        const __m256i l = _mm256_sub_epi8(_mm256_or_si256(c, lcase), seta);
        const __m256i is_af = _mm256_and_si256(_mm256_cmpgt_epi8(l, minus1),
                                               _mm256_cmpgt_epi8(six, l));
        __m256i hex = bad;
        hex = _mm256_blendv_epi8(hex, d, is_digit);
        hex = _mm256_blendv_epi8(hex, _mm256_add_epi8(l, ten), is_af);
        _mm256_store_si256(reinterpret_cast<__m256i*>(sc.hexval + 32 * half),
                           hex);
        colon_m[half] = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(c, colon_c)));
        dot_m[half] = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(c, dot_c)));
    }
    sc.colon = colon_m[0] | (static_cast<std::uint64_t>(colon_m[1]) << 32);
    sc.dot = dot_m[0] | (static_cast<std::uint64_t>(dot_m[1]) << 32);
}

std::size_t parse_batch_avx2(const std::string_view* texts, std::size_t n,
                             address_block& out, std::uint8_t* ok) {
    out.resize(n);
    std::uint64_t* hi = out.hi();
    std::uint64_t* lo = out.lo();
    std::size_t good = 0;
    scan_result sc;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string_view t = texts[i];
        hi[i] = 0;
        lo[i] = 0;
        if (t.empty() || t.size() > 45) {
            ok[i] = 0;
            continue;
        }
        scan_avx2(t.data(), t.size(), sc);
        const bool v = assemble(t.data(), t.size(), sc, hi[i], lo[i]);
        if (!v) {
            hi[i] = 0;
            lo[i] = 0;
        }
        ok[i] = v ? 1 : 0;
        good += v ? 1 : 0;
    }
    return good;
}

// --------------------------------------------------------------- format --

void format_batch_avx2(const address_block& in, char* buf,
                       std::uint8_t* lens) {
    const __m128i lut =
        _mm_setr_epi8('0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a',
                      'b', 'c', 'd', 'e', 'f');
    const __m128i nyb = _mm_set1_epi8(0x0f);
    const std::size_t n = in.size();
    const std::uint64_t* hi = in.hi();
    const std::uint64_t* lo = in.lo();
    alignas(16) char hex32[32];
    for (std::size_t i = 0; i < n; ++i) {
        // Memory byte order must be the address's network byte order.
        const __m128i bytes = _mm_set_epi64x(
            static_cast<long long>(__builtin_bswap64(lo[i])),
            static_cast<long long>(__builtin_bswap64(hi[i])));
        const __m128i hiN = _mm_and_si128(_mm_srli_epi16(bytes, 4), nyb);
        const __m128i loN = _mm_and_si128(bytes, nyb);
        const __m128i hc = _mm_shuffle_epi8(lut, hiN);
        const __m128i lc = _mm_shuffle_epi8(lut, loN);
        _mm_store_si128(reinterpret_cast<__m128i*>(hex32),
                        _mm_unpacklo_epi8(hc, lc));
        _mm_store_si128(reinterpret_cast<__m128i*>(hex32 + 16),
                        _mm_unpackhi_epi8(hc, lc));
        lens[i] = static_cast<std::uint8_t>(
            format_one(hi[i], lo[i], hex32, buf + kFormatStride * i));
    }
}

// ------------------------------------------------------------- classify --

inline __m256i c64(std::uint64_t v) noexcept {
    return _mm256_set1_epi64x(static_cast<long long>(v));
}

inline __m256i eq64(__m256i a, __m256i b) noexcept {
    return _mm256_cmpeq_epi64(a, b);
}

inline __m256i blend_code(__m256i cur, std::uint64_t code,
                          __m256i mask) noexcept {
    return _mm256_blendv_epi8(cur, c64(code), mask);
}

void classify_batch_avx2(const address_block& in, std::uint8_t* transition,
                         std::uint8_t* scope, std::uint8_t* iid) {
    using tk = v6::transition_kind;
    using sk = v6::address_scope;
    using ik = v6::iid_kind;

    const std::size_t n = in.size();
    const std::uint64_t* hi = in.hi();
    const std::uint64_t* lo = in.lo();
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i H =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
        const __m256i L =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));

        const __m256i b0 = _mm256_srli_epi64(H, 56);
        const __m256i top16 = _mm256_srli_epi64(H, 48);
        const __m256i top32 = _mm256_srli_epi64(H, 32);

        // ---- scope_of, applied lowest priority first ----
        const __m256i mc = eq64(b0, c64(0xff));
        const __m256i ll = _mm256_and_si256(
            eq64(b0, c64(0xfe)),
            eq64(_mm256_and_si256(top16, c64(0xc0)), c64(0x80)));
        const __m256i ul = eq64(_mm256_and_si256(b0, c64(0xfe)), c64(0xfc));
        const __m256i hi0 = eq64(H, zero);
        const __m256i unspec = _mm256_and_si256(hi0, eq64(L, zero));
        const __m256i loopb = _mm256_and_si256(hi0, eq64(L, c64(1)));
        const __m256i doc = eq64(top32, c64(0x20010db8));
        const __m256i gu = eq64(_mm256_and_si256(b0, c64(0xe0)), c64(0x20));

        __m256i scode = c64(static_cast<std::uint64_t>(sk::reserved));
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::global_unicast), gu);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::documentation), doc);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::loopback), loopb);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::unspecified), unspec);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::unique_local), ul);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::link_local), ll);
        scode = blend_code(scode, static_cast<std::uint64_t>(sk::multicast), mc);

        // ---- iid_shape ----
        const __m256i ltop32 = _mm256_srli_epi64(L, 32);
        const __m256i isat = _mm256_or_si256(eq64(ltop32, c64(0x00005efe)),
                                             eq64(ltop32, c64(0x02005efe)));
        const __m256i eui = eq64(
            _mm256_and_si256(_mm256_srli_epi64(L, 24), c64(0xffff)), c64(0xfffe));
        const __m256i lowv = eq64(_mm256_srli_epi64(L, 16), zero);

        // populated-nybble count per lane (flag bit per nybble, then SAD).
        __m256i pn = _mm256_or_si256(L, _mm256_srli_epi64(L, 1));
        pn = _mm256_or_si256(pn, _mm256_srli_epi64(pn, 2));
        pn = _mm256_and_si256(pn, c64(0x1111111111111111ull));
        const __m256i ones8 = c64(0x0101010101010101ull);
        const __m256i perbyte = _mm256_add_epi8(
            _mm256_and_si256(pn, ones8),
            _mm256_and_si256(_mm256_srli_epi64(pn, 4), ones8));
        const __m256i popn = _mm256_sad_epu8(perbyte, zero);
        const __m256i structured = _mm256_cmpgt_epi64(c64(7), popn);
        const __m256i ge3 = _mm256_cmpgt_epi64(popn, c64(2));

        // octet_like per 16-bit group (A: hex-coded <= 0xff; B: decimal-
        // coded digits whose decimal reading is <= 255).
        const __m256i ten16 = _mm256_set1_epi16(10);
        const __m256i nyb16 = _mm256_set1_epi16(0xf);
        const __m256i A = _mm256_cmpeq_epi16(
            _mm256_min_epu16(L, _mm256_set1_epi16(0xff)), L);
        const __m256i le999 = _mm256_cmpeq_epi16(
            _mm256_min_epu16(L, _mm256_set1_epi16(0x999)), L);
        const __m256i mid = _mm256_and_si256(_mm256_srli_epi16(L, 4), nyb16);
        const __m256i lon = _mm256_and_si256(L, nyb16);
        const __m256i hin = _mm256_srli_epi16(L, 8);
        const __m256i midle = _mm256_cmpgt_epi16(ten16, mid);
        const __m256i lole = _mm256_cmpgt_epi16(ten16, lon);
        const __m256i dec = _mm256_add_epi16(
            _mm256_add_epi16(_mm256_mullo_epi16(hin, _mm256_set1_epi16(100)),
                             _mm256_mullo_epi16(mid, ten16)),
            lon);
        const __m256i decle = _mm256_cmpgt_epi16(_mm256_set1_epi16(256), dec);
        const __m256i B = _mm256_and_si256(
            _mm256_and_si256(le999, midle), _mm256_and_si256(lole, decle));
        const __m256i oct16 = _mm256_or_si256(A, B);
        const __m256i all4 = eq64(oct16, _mm256_set1_epi64x(-1));

        const __m256i low32 = _mm256_and_si256(L, c64(0xffffffffull));
        const __m256i midv4 = _mm256_and_si256(_mm256_srli_epi64(H, 16),
                                               c64(0xffffffffull));
        const __m256i rep =
            _mm256_andnot_si256(eq64(low32, zero), eq64(low32, midv4));
        const __m256i ltop16nz =
            _mm256_xor_si256(eq64(_mm256_srli_epi64(L, 48), zero),
                             _mm256_set1_epi64x(-1));
        const __m256i v4emb = _mm256_or_si256(
            rep,
            _mm256_and_si256(_mm256_and_si256(all4, ge3), ltop16nz));

        __m256i icode = c64(static_cast<std::uint64_t>(ik::pseudorandom));
        icode = blend_code(icode, static_cast<std::uint64_t>(ik::structured), structured);
        icode = blend_code(icode, static_cast<std::uint64_t>(ik::embedded_ipv4), v4emb);
        icode = blend_code(icode, static_cast<std::uint64_t>(ik::low_value), lowv);
        icode = blend_code(icode, static_cast<std::uint64_t>(ik::eui64), eui);
        icode = blend_code(icode, static_cast<std::uint64_t>(ik::isatap), isat);

        // ---- transition ----
        const __m256i teredo = eq64(top32, c64(0x20010000));
        const __m256i sixfour = eq64(top16, c64(0x2002));
        __m256i tcode = zero;  // transition_kind::none
        tcode = blend_code(tcode, static_cast<std::uint64_t>(tk::isatap), isat);
        tcode = blend_code(tcode, static_cast<std::uint64_t>(tk::six_to_four), sixfour);
        tcode = blend_code(tcode, static_cast<std::uint64_t>(tk::teredo), teredo);

        alignas(32) std::uint64_t sv[4], iv[4], tv[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(sv), scode);
        _mm256_store_si256(reinterpret_cast<__m256i*>(iv), icode);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tv), tcode);
        for (int k = 0; k < 4; ++k) {
            scope[i + k] = static_cast<std::uint8_t>(sv[k]);
            iid[i + k] = static_cast<std::uint8_t>(iv[k]);
            transition[i + k] = static_cast<std::uint8_t>(tv[k]);
        }
    }
    for (; i < n; ++i)
        classify_lane(hi[i], lo[i], transition[i], scope[i], iid[i]);
}

// ----------------------------------------------------------------- mask --

void mask_batch_avx2(address_block& block, unsigned len) {
    std::uint64_t hm = ~0ull, lm = ~0ull;
    mask_lane(hm, lm, len);
    const __m256i hmv = c64(hm);
    const __m256i lmv = c64(lm);
    const std::size_t n = block.size();
    std::uint64_t* hi = block.hi();
    std::uint64_t* lo = block.lo();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(hi + i),
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i)),
                hmv));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(lo + i),
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i)),
                lmv));
    }
    for (; i < n; ++i) {
        hi[i] &= hm;
        lo[i] &= lm;
    }
}

}  // namespace

const kernel_table& avx2_table() noexcept {
    static const kernel_table t = {
        &parse_batch_avx2,    &format_batch_avx2,  &classify_batch_avx2,
        &malone_batch_scalar, &cpl_batch_scalar,   &mask_batch_avx2,
        &block_sort,          &block_sort_unique,
    };
    return t;
}

}  // namespace v6::simd::detail

#endif  // V6CLASS_HAVE_AVX2
