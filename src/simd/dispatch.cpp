// One-time runtime dispatch between kernel levels.
//
// The decision is split so it can be tested without poking the process
// environment or depending on the build machine's CPU:
//   detect_level()   CPUID probe only
//   resolve_level()  pure (env value, detected) -> level
//   active_level()   cached resolve(getenv(...), detect())

#include <cstdlib>

#include "kernels_internal.h"

namespace v6::simd {

level detect_level() noexcept {
#if defined(V6CLASS_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2")) return level::avx2;
#endif
    return level::scalar;
}

level resolve_level(const char* force_scalar_env, level detected) noexcept {
    if (force_scalar_env != nullptr && force_scalar_env[0] != '\0' &&
        !(force_scalar_env[0] == '0' && force_scalar_env[1] == '\0'))
        return level::scalar;
    return detected;
}

level active_level() noexcept {
    static const level chosen =
        resolve_level(std::getenv("V6CLASS_FORCE_SCALAR"), detect_level());
    return chosen;
}

std::string_view level_name(level l) noexcept {
    switch (l) {
        case level::scalar: return "scalar";
        case level::avx2: return "avx2";
    }
    return "?";
}

const kernel_table& table_for(level l) noexcept {
#if defined(V6CLASS_HAVE_AVX2)
    if (l == level::avx2 && detect_level() == level::avx2)
        return detail::avx2_table();
#endif
    (void)l;
    return detail::scalar_table();
}

const kernel_table& active_table() noexcept { return table_for(active_level()); }

}  // namespace v6::simd
