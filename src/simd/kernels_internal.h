#pragma once

// Shared scalar cores for the v6::simd kernels.
//
// Both dispatch levels are built from the same "scan -> assemble" split:
// the level-specific code only classifies characters (parse) or expands
// nybbles to hex digits (format); everything with semantic content — group
// walking, `::` handling, embedded dotted-quads, RFC 5952 run compression,
// classification predicates — lives here and is executed identically on
// every level.  That is what makes the bit-identical contract cheap to
// keep: a divergence would have to be introduced in the few dozen lines of
// character-classification code, which the differential test hammers.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"
#include "v6class/simd/kernels.h"

namespace v6::simd::detail {

// Loads 4 bytes most-significant-first as one u32.  GCC does not fold
// the shift/or idiom over a variable index into a single load, so spell
// out the load + byte swap on little-endian targets.
inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint32_t w;
    std::memcpy(&w, p, 4);
    return __builtin_bswap32(w);
#else
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
#endif
}

inline void store_be32(std::uint8_t* p, std::uint32_t w) noexcept {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    w = __builtin_bswap32(w);
    std::memcpy(p, &w, 4);
#else
    p[0] = static_cast<std::uint8_t>(w >> 24);
    p[1] = static_cast<std::uint8_t>(w >> 16);
    p[2] = static_cast<std::uint8_t>(w >> 8);
    p[3] = static_cast<std::uint8_t>(w);
#endif
}

// ---------------------------------------------------------------- parse --

// Character-classification output for one input string (<= 45 chars,
// padded to 64 so vector stores never spill).  colon/dot are position
// bitmasks; hexval[i] is the hex digit value of character i, or 0xff when
// it is not a hex digit.
struct scan_result {
    std::uint64_t colon = 0;
    std::uint64_t dot = 0;
    // Copy destination for vector scans.  Zero-initialised once per batch
    // (scan_result lives across lanes); bytes past the current string are
    // stale but every consumer masks by the string length, so they never
    // influence a result.
    alignas(32) char text[64] = {};
    alignas(32) std::uint8_t hexval[64] = {};
};

inline std::uint64_t low_mask(std::size_t k) noexcept {
    return k >= 64 ? ~0ull : ((1ull << k) - 1);
}

// Copies a 1..45 byte string with overlapping fixed-size chunks: no
// libc call, no tail zeroing.  `dst` must have 64 bytes of room.
inline void copy_text(char* dst, const char* s, std::size_t n) noexcept {
    if (n >= 32) {
        std::memcpy(dst, s, 32);
        std::memcpy(dst + n - 32, s + n - 32, 32);
    } else if (n >= 16) {
        std::memcpy(dst, s, 16);
        std::memcpy(dst + n - 16, s + n - 16, 16);
    } else if (n >= 8) {
        std::memcpy(dst, s, 8);
        std::memcpy(dst + n - 8, s + n - 8, 8);
    } else if (n >= 4) {
        std::memcpy(dst, s, 4);
        std::memcpy(dst + n - 4, s + n - 4, 4);
    } else {
        for (std::size_t i = 0; i < n; ++i) dst[i] = s[i];
    }
}

// Mirrors parse_embedded_ipv4 in src/ip/address.cpp (inet_pton rules:
// 1-3 decimal digits, no leading zeroes, <= 255, exactly four octets
// consuming the whole group).
inline bool parse_quad(const char* s, const std::uint8_t* hexval,
                       std::size_t pos, std::size_t end, std::uint16_t& h0,
                       std::uint16_t& h1) noexcept {
    unsigned octet[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (pos >= end || s[pos] != '.') return false;
            ++pos;
        }
        if (pos >= end || hexval[pos] > 9) return false;
        unsigned v = 0;
        std::size_t digits = 0;
        while (pos < end && hexval[pos] <= 9) {
            v = v * 10 + hexval[pos];
            ++pos;
            if (++digits > 3) return false;
        }
        if (v > 255) return false;
        if (digits > 1 && s[pos - digits] == '0') return false;
        octet[i] = v;
    }
    if (pos != end) return false;
    h0 = static_cast<std::uint16_t>((octet[0] << 8) | octet[1]);
    h1 = static_cast<std::uint16_t>((octet[2] << 8) | octet[3]);
    return true;
}

// Mirrors the `tokenize` lambda in address::parse: walks the colon-
// separated groups of [p0, p1); a dotted quad may close the part.
inline bool tokenize_part(const char* s, const scan_result& sc,
                          std::size_t p0, std::size_t p1, std::uint16_t* out,
                          std::size_t& count) noexcept {
    if (p0 == p1) return true;
    const std::uint64_t span = low_mask(p1) & ~low_mask(p0);
    std::uint64_t colons = sc.colon & span;
    const std::uint64_t dots = sc.dot & span;
    std::size_t pos = p0;
    if (dots == 0) {
        // Fast loop for the overwhelmingly common dot-free part: group
        // boundaries from the colon mask, branchless digit extraction.
        for (;;) {
            const std::size_t ge =
                colons ? static_cast<std::size_t>(std::countr_zero(colons)) : p1;
            const std::size_t len = ge - pos;
            if (len - 1 > 3) return false;  // empty group or > 4 digits
            std::uint32_t t = load_be32(sc.hexval + pos) >> (8 * (4 - len));
            if (t & 0xf0f0f0f0u) return false;
            t = (t | (t >> 4)) & 0x00ff00ffu;
            if (count >= 8) return false;
            out[count++] = static_cast<std::uint16_t>((t | (t >> 8)) & 0xffffu);
            if (!colons) return true;
            colons &= colons - 1;
            pos = ge + 1;
        }
    }
    for (;;) {
        const std::size_t ge =
            colons ? static_cast<std::size_t>(std::countr_zero(colons)) : p1;
        if (ge == pos) return false;  // empty group: "1::2:" or ":1:2"
        if (dots & (low_mask(ge) & ~low_mask(pos))) {
            if (colons) return false;  // dotted quad must close the part
            if (count + 2 > 8) return false;
            std::uint16_t h0 = 0, h1 = 0;
            if (!parse_quad(s, sc.hexval, pos, ge, h0, h1)) return false;
            out[count++] = h0;
            out[count++] = h1;
            return true;
        }
        const std::size_t len = ge - pos;
        if (len > 4) return false;
        // Branchless group extraction: the scan buffer is 64 bytes and
        // pos <= 45, so reading 4 bytes never spills; the trailing
        // garbage bytes are shifted out before the validity test.
        // Invalid characters scan as 0xff, which the high-nybble test
        // rejects.
        std::uint32_t t = load_be32(sc.hexval + pos) >> (8 * (4 - len));
        if (t & 0xf0f0f0f0u) return false;
        // Fold digit bytes (most significant first) into nybbles.
        t = (t | (t >> 4)) & 0x00ff00ffu;
        const unsigned v = (t | (t >> 8)) & 0xffffu;
        if (count >= 8) return false;
        out[count++] = static_cast<std::uint16_t>(v);
        if (!colons) return true;
        colons &= colons - 1;
        pos = ge + 1;
    }
}

// Assembles a scanned string into (hi, lo).  Semantics must track
// address::parse exactly — including the quirks: a dotted quad may close
// the part *before* the gap ("1.2.3.4::1" parses), and "::" must stand
// for at least one zero group.
inline bool assemble(const char* s, std::size_t n, const scan_result& sc,
                     std::uint64_t& hi, std::uint64_t& lo) noexcept {
    const std::uint64_t colon = sc.colon & low_mask(n);
    const std::uint64_t pairs = colon & (colon >> 1);
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t gap = npos;
    if (pairs) {
        if (pairs & (pairs - 1)) return false;  // more than one "::"
        gap = static_cast<std::size_t>(std::countr_zero(pairs));
    }
    std::uint16_t tail_g[8];
    std::size_t head_n = 0, tail_n = 0;
    std::uint16_t g[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    if (gap == npos) {
        if (!tokenize_part(s, sc, 0, n, g, head_n)) return false;
        if (head_n != 8) return false;
    } else {
        if (!tokenize_part(s, sc, 0, gap, g, head_n)) return false;
        if (!tokenize_part(s, sc, gap + 2, n, tail_g, tail_n)) return false;
        if (head_n + tail_n > 7) return false;
        for (std::size_t i = 0; i < tail_n; ++i) g[8 - tail_n + i] = tail_g[i];
    }
    hi = (static_cast<std::uint64_t>(g[0]) << 48) |
         (static_cast<std::uint64_t>(g[1]) << 32) |
         (static_cast<std::uint64_t>(g[2]) << 16) | g[3];
    lo = (static_cast<std::uint64_t>(g[4]) << 48) |
         (static_cast<std::uint64_t>(g[5]) << 32) |
         (static_cast<std::uint64_t>(g[6]) << 16) | g[7];
    return true;
}

// --------------------------------------------------------------- format --

// Emits the RFC 5952 text of (hi, lo) given its 32-char full-hex
// expansion (level-specific).  Returns the length.  Matches
// address::to_string byte for byte: longest zero run >= 2 compressed,
// leftmost on tie, lowercase, no leading zeroes.  `out` must have
// kFormatStride bytes (the digit copy below over-writes up to 3 bytes
// past the emitted text).
inline std::size_t format_one(std::uint64_t hi, std::uint64_t lo,
                              const char* hex32, char* out) noexcept {
    const std::uint16_t h[8] = {
        static_cast<std::uint16_t>(hi >> 48), static_cast<std::uint16_t>(hi >> 32),
        static_cast<std::uint16_t>(hi >> 16), static_cast<std::uint16_t>(hi),
        static_cast<std::uint16_t>(lo >> 48), static_cast<std::uint16_t>(lo >> 32),
        static_cast<std::uint16_t>(lo >> 16), static_cast<std::uint16_t>(lo)};

    // Longest zero run via mask folding: bit i of `r` after k folds means
    // groups i..i+k are all zero, so the last non-empty fold holds the
    // starts of every maximal run and countr_zero picks the leftmost.
    unsigned zmask = 0;
    for (int i = 0; i < 8; ++i) zmask |= static_cast<unsigned>(h[i] == 0) << i;
    int best_start = -1, best_len = 0;
    if (zmask) {
        unsigned r = zmask, starts = zmask;
        int len = 0;
        while (r) {
            starts = r;
            r &= r >> 1;
            ++len;
        }
        if (len >= 2) {
            best_len = len;
            best_start = std::countr_zero(starts);
        }
    }

    char* p = out;
    const auto emit = [&](int i, bool lead_colon) noexcept {
        if (lead_colon) *p++ = ':';
        const unsigned nd =
            (35u - static_cast<unsigned>(std::countl_zero(
                       static_cast<std::uint32_t>(h[i]) | 1u))) >>
            2;
        // Group-aligned 4-byte load stays inside hex32; shifting drops
        // the 4-nd leading-zero digits. The trailing zero bytes written
        // past p+nd are overwritten by the next group or left in the
        // out slot's slack.
        std::uint32_t w = load_be32(
            reinterpret_cast<const std::uint8_t*>(hex32) + 4 * i);
        store_be32(reinterpret_cast<std::uint8_t*>(p), w << (8 * (4 - nd)));
        p += nd;
    };
    if (best_start < 0) {
        for (int i = 0; i < 8; ++i) emit(i, i > 0);
    } else {
        for (int i = 0; i < best_start; ++i) emit(i, i > 0);
        *p++ = ':';
        *p++ = ':';
        const int tail0 = best_start + best_len;
        for (int i = tail0; i < 8; ++i) emit(i, i > tail0);
    }
    return static_cast<std::size_t>(p - out);
}

// Portable 16-nybble -> 16-char lowercase hex expansion of one u64
// (big-endian digit order), SWAR ascii adjustment.
inline void hex_expand_u64(std::uint64_t x, char* out16) noexcept {
    const std::uint64_t kNyb = 0x0f0f0f0f0f0f0f0full;
    const std::uint64_t hiN = (x >> 4) & kNyb;
    const std::uint64_t loN = x & kNyb;
    const auto ascii = [](std::uint64_t n) noexcept {
        const std::uint64_t gt9 =
            ((n + 0x0606060606060606ull) & 0x1010101010101010ull) >> 4;
        return n + 0x3030303030303030ull + gt9 * 0x27ull;
    };
    const std::uint64_t hc = ascii(hiN);
    const std::uint64_t lc = ascii(loN);
    for (int i = 0; i < 8; ++i) {
        out16[2 * i] = static_cast<char>(hc >> (56 - 8 * i));
        out16[2 * i + 1] = static_cast<char>(lc >> (56 - 8 * i));
    }
}

// ------------------------------------------------------------- classify --

inline unsigned populated_nybbles_u64(std::uint64_t x) noexcept {
    std::uint64_t n = x | (x >> 1);
    n |= n >> 2;
    n &= 0x1111111111111111ull;
    return static_cast<unsigned>(std::popcount(n));
}

inline bool octet_like_u16(std::uint16_t group) noexcept {
    if (group <= 0xff) return true;
    if (group > 0x999) return false;
    unsigned dec = 0;
    for (int shift = 8; shift >= 0; shift -= 4) {
        const unsigned nybble = (group >> shift) & 0xf;
        if (nybble > 9) return false;
        dec = dec * 10 + nybble;
    }
    return dec <= 255;
}

// scope_of / iid_shape / transition over lanes; value-identical to
// classify() in src/addrtype/classify.cpp.
inline void classify_lane(std::uint64_t hi, std::uint64_t lo,
                          std::uint8_t& transition, std::uint8_t& scope,
                          std::uint8_t& iid_out) noexcept {
    using tk = v6::transition_kind;
    using sc = v6::address_scope;
    using ik = v6::iid_kind;

    // scope_of
    const unsigned b0 = static_cast<unsigned>(hi >> 56);
    sc s = sc::reserved;
    if (b0 == 0xff) {
        s = sc::multicast;
    } else if (b0 == 0xfe && ((static_cast<unsigned>(hi >> 48) & 0xc0u) == 0x80u)) {
        s = sc::link_local;
    } else if ((b0 & 0xfe) == 0xfc) {
        s = sc::unique_local;
    } else if (hi == 0 && lo == 0) {
        s = sc::unspecified;
    } else if (hi == 0 && lo == 1) {
        s = sc::loopback;
    } else if ((hi >> 32) == 0x20010db8ull) {
        s = sc::documentation;
    } else if ((b0 & 0xe0) == 0x20) {
        s = sc::global_unicast;
    }

    // iid_shape
    const std::uint64_t top32 = lo >> 32;
    const bool isatap_iid = top32 == 0x00005efeull || top32 == 0x02005efeull;
    const bool eui64_iid = ((lo >> 24) & 0xffffull) == 0xfffeull;
    ik k;
    if (isatap_iid) {
        k = ik::isatap;
    } else if (eui64_iid) {
        k = ik::eui64;
    } else if ((lo >> 16) == 0) {
        k = ik::low_value;
    } else {
        const std::uint32_t low32 = static_cast<std::uint32_t>(lo);
        const std::uint32_t mid_v4 =
            static_cast<std::uint32_t>((hi >> 16) & 0xffffffffull);
        bool v4emb = low32 != 0 && low32 == mid_v4;
        if (!v4emb) {
            bool all4 = true;
            for (unsigned g = 0; g < 4 && all4; ++g)
                all4 = octet_like_u16(static_cast<std::uint16_t>(lo >> (48 - 16 * g)));
            v4emb = all4 && populated_nybbles_u64(lo) >= 3 && (lo >> 48) != 0;
        }
        if (v4emb) {
            k = ik::embedded_ipv4;
        } else if (populated_nybbles_u64(lo) <= 6) {
            k = ik::structured;
        } else {
            k = ik::pseudorandom;
        }
    }

    // transition
    tk t = tk::none;
    if ((hi >> 32) == 0x20010000ull) {
        t = tk::teredo;
    } else if ((hi >> 48) == 0x2002ull) {
        t = tk::six_to_four;
    } else if (k == ik::isatap) {
        t = tk::isatap;
    }

    transition = static_cast<std::uint8_t>(t);
    scope = static_cast<std::uint8_t>(s);
    iid_out = static_cast<std::uint8_t>(k);
}

// malone_classify over lanes; value-identical to src/addrtype/malone.cpp.
inline std::uint8_t malone_lane(std::uint64_t hi, std::uint64_t lo) noexcept {
    using ml = v6::malone_label;
    if ((hi >> 32) == 0x20010000ull) return static_cast<std::uint8_t>(ml::teredo);
    if ((hi >> 48) == 0x2002ull) return static_cast<std::uint8_t>(ml::six_to_four);

    const std::uint64_t top32 = lo >> 32;
    if (top32 == 0x00005efeull || top32 == 0x02005efeull)
        return static_cast<std::uint8_t>(ml::isatap);
    if (((lo >> 24) & 0xffffull) == 0xfffeull)
        return static_cast<std::uint8_t>(ml::eui64);
    if ((lo >> 16) == 0) return static_cast<std::uint8_t>(ml::low);

    static constexpr std::uint16_t kWords[] = {
        0xdead, 0xbeef, 0xcafe, 0xbabe, 0xf00d, 0xfeed,
        0xface, 0xc0de, 0xd00d, 0xb00b, 0x1337,
    };
    unsigned wordish = 0;
    for (unsigned g = 0; g < 4; ++g) {
        const std::uint16_t group = static_cast<std::uint16_t>(lo >> (48 - 16 * g));
        for (std::uint16_t w : kWords)
            if (group == w) ++wordish;
        const unsigned n0 = group >> 12, n1 = (group >> 8) & 0xf,
                       n2 = (group >> 4) & 0xf, n3 = group & 0xf;
        if (group != 0 && n0 == n1 && n1 == n2 && n2 == n3) ++wordish;
    }
    if (wordish >= 2) return static_cast<std::uint8_t>(ml::word);

    bool all_octet_sized = true;
    for (unsigned g = 0; g < 4 && all_octet_sized; ++g)
        all_octet_sized =
            octet_like_u16(static_cast<std::uint16_t>(lo >> (48 - 16 * g)));
    if (all_octet_sized && (lo >> 48) != 0)
        return static_cast<std::uint8_t>(ml::v4_based);

    bool leading_populated = true;
    for (unsigned g = 0; g < 4 && leading_populated; ++g)
        leading_populated = ((lo >> (60 - 16 * g)) & 0xf) != 0;
    // u bit == address bit 70 == bit 57 of lo.
    if (leading_populated && ((lo >> 57) & 1) == 0)
        return static_cast<std::uint8_t>(ml::randomised);
    return static_cast<std::uint8_t>(ml::unclassified);
}

// ---------------------------------------------------------- cpl / mask --

inline unsigned cpl_lane(std::uint64_t ah, std::uint64_t al, std::uint64_t bh,
                         std::uint64_t bl) noexcept {
    const std::uint64_t xh = ah ^ bh;
    if (xh != 0) return static_cast<unsigned>(std::countl_zero(xh));
    const std::uint64_t xl = al ^ bl;
    if (xl != 0) return 64 + static_cast<unsigned>(std::countl_zero(xl));
    return 128;
}

inline void mask_lane(std::uint64_t& hi, std::uint64_t& lo,
                      unsigned len) noexcept {
    if (len >= 128) return;
    if (len >= 64) {
        lo = (len == 64) ? 0 : (lo & (~0ull << (128 - len)));
    } else {
        hi = (len == 0) ? 0 : (hi & (~0ull << (64 - len)));
        lo = 0;
    }
}

// --------------------------------------------------- table definitions --

const kernel_table& scalar_table() noexcept;
#if defined(V6CLASS_HAVE_AVX2)
const kernel_table& avx2_table() noexcept;
#endif

// Shared (level-independent) kernels defined in kernels_scalar.cpp and
// reused by the AVX2 table.
void malone_batch_scalar(const address_block& in, std::uint8_t* labels);
void cpl_batch_scalar(const address_block& a, const address_block& b,
                      std::uint8_t* out);
void block_sort(address_block& block);
void block_sort_unique(address_block& block);

}  // namespace v6::simd::detail
