#include "v6class/cdnsim/corpus.h"

#include <charconv>
#include <fstream>
#include <stdexcept>

#include "v6class/cdnsim/world.h"
#include "v6class/ip/io.h"

namespace v6 {

std::string corpus_file_name(int day) {
    return "day_" + std::to_string(day) + ".log";
}

void write_log_file(const std::filesystem::path& dir, const daily_log& log) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path file = dir / corpus_file_name(log.day);
    std::ofstream out(file);
    if (!out) throw std::runtime_error("cannot write " + file.string());
    out << "# aggregated CDN log, day " << log.day << ", " << log.records.size()
        << " distinct client addresses\n";
    for (const observation& o : log.records)
        out << o.addr.to_string() << ' ' << o.hits << '\n';
    if (!out.flush()) throw std::runtime_error("short write to " + file.string());
}

int write_corpus(const world& w, int first_day, int last_day,
                 const std::filesystem::path& dir) {
    int written = 0;
    for (int d = first_day; d <= last_day; ++d) {
        write_log_file(dir, w.day_log(d));
        ++written;
    }
    return written;
}

daily_log read_log_file(const std::filesystem::path& file, int day) {
    std::ifstream in(file);
    if (!in) throw std::runtime_error("cannot read " + file.string());
    std::vector<observation> raw;
    read_address_lines(in, [&](const address& a, std::uint64_t count) {
        raw.push_back({a, static_cast<std::uint32_t>(
                              count > 0xffffffffull ? 0xffffffffull : count)});
    });
    return aggregate_log(day, std::move(raw));
}

daily_series read_corpus(const std::filesystem::path& dir) {
    daily_series series;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("day_", 0) != 0 || name.size() < 9 ||
            name.substr(name.size() - 4) != ".log")
            continue;
        const std::string_view digits(name.data() + 4, name.size() - 8);
        int day = 0;
        const auto [ptr, ec] =
            std::from_chars(digits.data(), digits.data() + digits.size(), day);
        if (ec != std::errc{} || ptr != digits.data() + digits.size()) continue;
        series.set_day(day, read_log_file(entry.path(), day).addresses());
    }
    return series;
}

}  // namespace v6
