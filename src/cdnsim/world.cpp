#include "v6class/cdnsim/world.h"

#include <cmath>
#include <future>
#include <thread>

#include "v6class/netgen/iid.h"

namespace v6 {

namespace {

std::uint64_t scaled(double base, double scale) {
    const double v = base * scale;
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

}  // namespace

world::world(world_config cfg) : cfg_(cfg) {
    const double sc = cfg_.scale;
    const std::uint64_t seed = cfg_.seed;

    // --- the two US mobile carriers (top-5 ASNs; Figure 5e) ------------
    {
        model_config mc;
        mc.asn = 20001;
        mc.seed = mix64(seed ^ 0xA1);
        mc.subscribers = scaled(20'000, sc);
        mc.annual_growth = 1.3;
        mc.daily_activity = 0.55;
        std::vector<prefix> pools;
        for (int i = 0; i < 8; ++i)
            pools.push_back(registry_.allocate(rir::arin, mc.asn, 44));
        auto m = std::make_unique<us_mobile_carrier>(mc, std::move(pools));
        mobile1_ = m.get();
        models_.push_back(std::move(m));
    }
    {
        model_config mc;
        mc.asn = 20002;
        mc.seed = mix64(seed ^ 0xA2);
        mc.subscribers = scaled(12'000, sc);
        mc.annual_growth = 1.5;
        mc.daily_activity = 0.55;
        std::vector<prefix> pools;
        for (int i = 0; i < 6; ++i)
            pools.push_back(registry_.allocate(rir::arin, mc.asn, 44));
        us_mobile_carrier::options opt;
        opt.fixed_iid_share = 0.22;
        opt.duplicate_mac_share = 0.005;
        auto m = std::make_unique<us_mobile_carrier>(mc, std::move(pools), opt);
        mobile2_ = m.get();
        models_.push_back(std::move(m));
    }

    // --- the European ISP with on-demand renumbering (Figure 5f) -------
    {
        model_config mc;
        mc.asn = 20003;
        mc.seed = mix64(seed ^ 0xA3);
        mc.subscribers = scaled(15'000, sc);
        mc.annual_growth = 0.9;
        mc.daily_activity = 0.35;
        const prefix bgp = registry_.allocate(rir::ripe, mc.asn, 19);
        auto m = std::make_unique<eu_isp>(mc, bgp);
        eu_ = m.get();
        models_.push_back(std::move(m));
    }

    // --- the Japanese ISP with static /48s (Figure 5h) -----------------
    {
        model_config mc;
        mc.asn = 20004;
        mc.seed = mix64(seed ^ 0xA4);
        mc.subscribers = scaled(10'000, sc);
        mc.annual_growth = 0.8;
        mc.daily_activity = 0.35;
        const prefix bgp = registry_.allocate(rir::apnic, mc.asn, 24);
        auto m = std::make_unique<jp_isp>(mc, bgp);
        jp_ = m.get();
        models_.push_back(std::move(m));
    }

    // --- a large American wireline ISP (the 5th top ASN) ---------------
    {
        model_config mc;
        mc.asn = 20005;
        mc.seed = mix64(seed ^ 0xA5);
        mc.subscribers = scaled(11'000, sc);
        mc.annual_growth = 1.0;
        mc.daily_activity = 0.35;
        const prefix bgp = registry_.allocate(rir::arin, mc.asn, 32);
        models_.push_back(std::make_unique<generic_isp>("us-isp", mc, bgp));
    }

    // --- transition mechanisms (Table 1's culled rows) ------------------
    {
        model_config mc;
        mc.asn = 20006;
        mc.seed = mix64(seed ^ 0xA6);
        mc.subscribers = scaled(9'000, sc);
        mc.annual_growth = 0.08;  // 6to4 share declines as native grows
        mc.daily_activity = 0.40;
        registry_.advertise(prefix::must_parse("2002::/16"), mc.asn);
        models_.push_back(std::make_unique<relay_6to4>(mc));
    }
    {
        model_config mc;
        mc.asn = 20007;
        mc.seed = mix64(seed ^ 0xA7);
        mc.subscribers = scaled(25, sc);
        mc.annual_growth = 9.0;  // Teredo grew 10x over the study year
        mc.daily_activity = 0.5;
        registry_.advertise(prefix::must_parse("2001::/32"), mc.asn);
        models_.push_back(std::make_unique<teredo_model>(mc));
    }
    {
        model_config mc;
        mc.asn = 20008;
        mc.seed = mix64(seed ^ 0xA8);
        mc.subscribers = scaled(120, sc);
        mc.annual_growth = 0.5;
        mc.daily_activity = 0.5;
        const prefix ent = registry_.allocate(rir::arin, mc.asn, 48);
        models_.push_back(std::make_unique<isatap_model>(mc, ent));
    }

    // --- the instructive small networks of Figures 2 and 5g ------------
    {
        model_config mc;
        mc.asn = 20010;
        mc.seed = mix64(seed ^ 0xB0);
        mc.subscribers = scaled(600, sc);
        mc.annual_growth = 0.3;
        mc.daily_activity = 0.35;
        const prefix bgp = registry_.allocate(rir::arin, mc.asn, 32);
        auto m = std::make_unique<us_university>(mc, bgp);
        univ_ = m.get();
        models_.push_back(std::move(m));
    }
    {
        model_config mc;
        mc.asn = 20011;
        mc.seed = mix64(seed ^ 0xB1);
        mc.subscribers = scaled(3'000, sc);
        mc.annual_growth = 0.4;
        mc.daily_activity = 0.35;
        const prefix bgp = registry_.allocate(rir::apnic, mc.asn, 32);
        auto m = std::make_unique<jp_telco>(mc, bgp);
        telco_ = m.get();
        models_.push_back(std::move(m));
    }
    {
        model_config mc;
        mc.asn = 20012;
        mc.seed = mix64(seed ^ 0xB2);
        mc.subscribers = 100;  // one department; does not scale
        mc.annual_growth = 0.0;
        mc.daily_activity = 0.80;
        const prefix campus = registry_.allocate(rir::ripe, mc.asn, 32);
        const prefix lan{campus.base(), 64};  // first /48, subnet 0
        auto m = std::make_unique<eu_university_dept>(mc, lan);
        dept_ = m.get();
        models_.push_back(std::move(m));
    }

    // --- a hosting provider (dense, stable server blocks) ---------------
    {
        model_config mc;
        mc.asn = 20013;
        mc.seed = mix64(seed ^ 0xB3);
        mc.subscribers = scaled(500, sc);  // informational; racks drive size
        mc.annual_growth = 0.6;
        mc.daily_activity = 0.9;  // servers are nearly always on
        const prefix bgp = registry_.allocate(rir::arin, mc.asn, 32);
        hosting_provider::options opt;
        opt.racks = static_cast<std::uint64_t>(8 * sc) + 4;
        models_.push_back(std::make_unique<hosting_provider>(mc, bgp, opt));
    }

    // --- the long tail ---------------------------------------------------
    constexpr rir regions[] = {rir::arin, rir::ripe, rir::apnic, rir::lacnic,
                               rir::afrinic};
    constexpr isp_practice plans[] = {
        isp_practice::static_64_per_subscriber,
        isp_practice::static_64_per_subscriber,
        isp_practice::dynamic_64_pool,
        isp_practice::static_48_per_subscriber,
        isp_practice::shared_64,
    };
    for (unsigned i = 0; i < cfg_.tail_isps; ++i) {
        model_config mc;
        mc.asn = 30000 + i;
        mc.seed = mix64(seed ^ (0xC000 + i));
        mc.subscribers = scaled(3'000.0 / std::pow(i + 1.0, 0.9), sc);
        mc.annual_growth = 0.4 + 0.1 * static_cast<double>(hash_uniform(
                                          hash_ids(seed, 0x970, i), 12));
        mc.daily_activity = 0.35;
        const rir region = regions[i % 5];
        const unsigned len = 32 + 4 * static_cast<unsigned>(i % 3);  // /32../40
        const prefix bgp = registry_.allocate(region, mc.asn, len);
        generic_isp::options opt;
        opt.plan = plans[hash_uniform(hash_ids(seed, 0x971, i), 5)];
        opt.eui64_device_share = 0.01 + 0.01 * static_cast<double>(i % 4);
        models_.push_back(std::make_unique<generic_isp>(
            "tail-isp-" + std::to_string(i), mc, bgp, opt));
    }

}

void world::raw_day(int day, std::vector<observation>& out) const {
    for (const auto& m : models_) m->day_activity(day, out);
}

daily_log world::day_log(int day) const {
    std::vector<observation> raw;
    if (cfg_.slew_probability <= 0.0) {
        raw_day(day, raw);
        return aggregate_log(day, std::move(raw));
    }
    // Timestamp slew: a record generated on day d lands in day d's log
    // unless its processing ran long, in which case it lands in d+1's.
    const auto is_late = [&](const observation& o, int d) {
        const std::uint64_t h =
            hash_ids(cfg_.seed, 0x51e3, address_hash{}(o.addr),
                     static_cast<std::uint64_t>(d));
        return hash_chance(h,
                           static_cast<std::uint64_t>(cfg_.slew_probability * 1e6),
                           1'000'000);
    };
    std::vector<observation> today, yesterday;
    raw_day(day, today);
    raw_day(day - 1, yesterday);
    for (const observation& o : today)
        if (!is_late(o, day)) raw.push_back(o);
    for (const observation& o : yesterday)
        if (is_late(o, day - 1)) raw.push_back(o);
    return aggregate_log(day, std::move(raw));
}

std::vector<address> world::active_addresses(int day) const {
    return day_log(day).addresses();
}

daily_series world::series(int first_day, int last_day) const {
    daily_series s;
    const int span = last_day - first_day + 1;
    if (span <= 0) return s;
    // Day generation is pure and independent; fan it out. Each worker
    // takes a strided slice so the load balances across epochs.
    const unsigned workers = std::min<unsigned>(
        std::max(1u, std::thread::hardware_concurrency()),
        static_cast<unsigned>(span));
    if (workers <= 1 || span < 3) {
        for (int d = first_day; d <= last_day; ++d)
            s.set_day(d, active_addresses(d));
        return s;
    }
    using day_batch = std::vector<std::pair<int, std::vector<address>>>;
    std::vector<std::future<day_batch>> futures;
    futures.reserve(workers);
    for (unsigned k = 0; k < workers; ++k) {
        futures.push_back(std::async(std::launch::async, [&, k] {
            day_batch batch;
            for (int d = first_day + static_cast<int>(k); d <= last_day;
                 d += static_cast<int>(workers))
                batch.emplace_back(d, active_addresses(d));
            return batch;
        }));
    }
    for (auto& f : futures)
        for (auto& [day, active] : f.get()) s.set_day(day, std::move(active));
    return s;
}

}  // namespace v6
