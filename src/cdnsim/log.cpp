#include "v6class/cdnsim/log.h"

#include <algorithm>

namespace v6 {

std::vector<address> daily_log::addresses() const {
    std::vector<address> out;
    out.reserve(records.size());
    for (const observation& o : records) out.push_back(o.addr);
    return out;  // records are unique and sorted already
}

std::uint64_t daily_log::total_hits() const noexcept {
    std::uint64_t sum = 0;
    for (const observation& o : records) sum += o.hits;
    return sum;
}

daily_log aggregate_log(int day, std::vector<observation> raw) {
    std::sort(raw.begin(), raw.end(),
              [](const observation& a, const observation& b) { return a.addr < b.addr; });
    daily_log log;
    log.day = day;
    log.records.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
        observation merged = raw[i];
        std::size_t j = i + 1;
        while (j < raw.size() && raw[j].addr == raw[i].addr) {
            merged.hits += raw[j].hits;
            ++j;
        }
        log.records.push_back(merged);
        i = j;
    }
    return log;
}

culled_addresses cull_transition(const std::vector<address>& addrs) {
    culled_addresses out;
    for (const address& a : addrs) {
        if (is_teredo(a))
            out.teredo.push_back(a);
        else if (is_6to4(a))
            out.six_to_four.push_back(a);
        else if (is_isatap(a))
            out.isatap.push_back(a);
        else
            out.other.push_back(a);
    }
    auto tidy = [](std::vector<address>& v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    tidy(out.teredo);
    tidy(out.isatap);
    tidy(out.six_to_four);
    tidy(out.other);
    return out;
}

}  // namespace v6
