#include "v6class/ip/prefix.h"

#include <cmath>
#include <charconv>
#include <stdexcept>

namespace v6 {

std::optional<prefix> prefix::parse(std::string_view text) noexcept {
    const std::size_t slash = text.rfind('/');
    if (slash == std::string_view::npos) {
        auto a = address::parse(text);
        if (!a) return std::nullopt;
        return prefix{*a, 128};
    }
    auto a = address::parse(text.substr(0, slash));
    if (!a) return std::nullopt;
    const std::string_view len_text = text.substr(slash + 1);
    unsigned len = 0;
    const auto* begin = len_text.data();
    const auto* end = begin + len_text.size();
    auto [ptr, ec] = std::from_chars(begin, end, len);
    if (ec != std::errc{} || ptr != end || len > 128) return std::nullopt;
    // Reject non-canonical text such as "/" with leading '+' already
    // handled by from_chars; leading zeroes ("/064") are accepted.
    return prefix{*a, len};
}

prefix prefix::must_parse(std::string_view text) {
    auto p = parse(text);
    if (!p) throw std::invalid_argument("invalid IPv6 prefix: " + std::string(text));
    return *p;
}

long double prefix::count() const noexcept {
    return std::ldexp(1.0L, static_cast<int>(128 - length_));
}

std::string prefix::to_string() const {
    std::string out = addr_.to_string();
    out += '/';
    char buf[4];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, static_cast<unsigned>(length_));
    (void)ec;
    out.append(buf, end);
    return out;
}

}  // namespace v6
