#include "v6class/ip/mac.h"

namespace v6 {

std::string mac_address::to_string() const {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(17);
    for (std::size_t i = 0; i < 6; ++i) {
        if (i) out += ':';
        out += digits[octets_[i] >> 4];
        out += digits[octets_[i] & 0x0f];
    }
    return out;
}

}  // namespace v6
