#include "v6class/ip/arithmetic.h"

namespace v6 {

address address_add(const address& a, std::uint64_t offset) noexcept {
    std::array<std::uint8_t, 16> bytes = a.bytes();
    // Ripple-carry the 64-bit offset into the low 8 bytes, then let any
    // final carry propagate upward.
    unsigned carry = 0;
    for (int i = 15; i >= 8 && (offset || carry); --i) {
        const unsigned sum = bytes[static_cast<std::size_t>(i)] +
                             static_cast<unsigned>(offset & 0xff) + carry;
        bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(sum);
        carry = sum >> 8;
        offset >>= 8;
    }
    for (int i = 7; i >= 0 && carry; --i) {
        const unsigned sum = bytes[static_cast<std::size_t>(i)] + carry;
        bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(sum);
        carry = sum >> 8;
    }
    return address{bytes};
}

std::optional<std::uint64_t> address_distance(const address& a,
                                              const address& b) noexcept {
    if (b < a) return std::nullopt;
    if (a.hi() != b.hi()) {
        // The gap exceeds 64 bits unless the high halves differ by one
        // and the low halves wrap.
        if (b.hi() - a.hi() != 1) return std::nullopt;
        if (b.lo() >= a.lo()) return std::nullopt;  // >= 2^64
        return (~a.lo() + 1) + b.lo();  // 2^64 - a.lo + b.lo
    }
    return b.lo() - a.lo();
}

}  // namespace v6
