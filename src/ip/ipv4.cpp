#include "v6class/ip/ipv4.h"

#include <stdexcept>

namespace v6 {

std::optional<ipv4_address> ipv4_address::parse(std::string_view text) noexcept {
    std::uint32_t value = 0;
    std::size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (pos >= text.size() || text[pos] != '.') return std::nullopt;
            ++pos;
        }
        if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
            return std::nullopt;
        unsigned octet = 0;
        std::size_t digits = 0;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            octet = octet * 10 + static_cast<unsigned>(text[pos] - '0');
            ++pos;
            if (++digits > 3) return std::nullopt;
        }
        if (octet > 255) return std::nullopt;
        if (digits > 1 && text[pos - digits] == '0') return std::nullopt;
        value = (value << 8) | octet;
    }
    if (pos != text.size()) return std::nullopt;
    return ipv4_address{value};
}

ipv4_address ipv4_address::must_parse(std::string_view text) {
    auto a = parse(text);
    if (!a) throw std::invalid_argument("invalid IPv4 address: " + std::string(text));
    return *a;
}

std::string ipv4_address::to_string() const {
    std::string out;
    out.reserve(15);
    for (unsigned i = 0; i < 4; ++i) {
        if (i) out += '.';
        out += std::to_string(octet(i));
    }
    return out;
}

}  // namespace v6
