#include "v6class/ip/address.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <stdexcept>

namespace v6 {

namespace {

int hex_value(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

// Parses a trailing dotted-quad ("192.0.2.33") into two hextets.
bool parse_embedded_ipv4(std::string_view text, std::uint16_t& h0, std::uint16_t& h1) noexcept {
    std::array<unsigned, 4> octet{};
    std::size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (pos >= text.size() || text[pos] != '.') return false;
            ++pos;
        }
        if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return false;
        unsigned v = 0;
        std::size_t digits = 0;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            v = v * 10 + static_cast<unsigned>(text[pos] - '0');
            ++pos;
            if (++digits > 3) return false;
        }
        if (v > 255) return false;
        // Reject leading zeroes like "01" (inet_pton behaviour).
        if (digits > 1 && text[pos - digits] == '0') return false;
        octet[static_cast<std::size_t>(i)] = v;
    }
    if (pos != text.size()) return false;
    h0 = static_cast<std::uint16_t>((octet[0] << 8) | octet[1]);
    h1 = static_cast<std::uint16_t>((octet[2] << 8) | octet[3]);
    return true;
}

}  // namespace

std::optional<address> address::parse(std::string_view text) noexcept {
    if (text.empty() || text.size() > 45) return std::nullopt;

    // Split into the parts before and after a single "::", if present.
    std::size_t gap = text.find("::");
    if (gap != std::string_view::npos && text.find("::", gap + 1) != std::string_view::npos)
        return std::nullopt;

    std::string_view head = (gap == std::string_view::npos) ? text : text.substr(0, gap);
    std::string_view tail = (gap == std::string_view::npos) ? std::string_view{}
                                                            : text.substr(gap + 2);

    // Tokenizes colon-separated groups; the final group may be a dotted
    // quad, which expands to two hextets.
    auto tokenize = [](std::string_view part, std::array<std::uint16_t, 8>& out,
                       std::size_t& count) -> bool {
        if (part.empty()) return true;
        std::size_t pos = 0;
        while (true) {
            std::size_t colon = part.find(':', pos);
            std::string_view group = (colon == std::string_view::npos)
                                         ? part.substr(pos)
                                         : part.substr(pos, colon - pos);
            if (group.empty()) return false;  // "1::2:" or ":1:2"
            if (group.find('.') != std::string_view::npos) {
                // Embedded IPv4 must be the final group.
                if (colon != std::string_view::npos) return false;
                if (count + 2 > 8) return false;
                std::uint16_t h0 = 0, h1 = 0;
                if (!parse_embedded_ipv4(group, h0, h1)) return false;
                out[count++] = h0;
                out[count++] = h1;
                return true;
            }
            if (group.size() > 4) return false;
            unsigned v = 0;
            for (char c : group) {
                int d = hex_value(c);
                if (d < 0) return false;
                v = (v << 4) | static_cast<unsigned>(d);
            }
            if (count >= 8) return false;
            out[count++] = static_cast<std::uint16_t>(v);
            if (colon == std::string_view::npos) return true;
            pos = colon + 1;
        }
    };

    std::array<std::uint16_t, 8> head_groups{};
    std::array<std::uint16_t, 8> tail_groups{};
    std::size_t head_count = 0, tail_count = 0;
    if (!tokenize(head, head_groups, head_count)) return std::nullopt;
    if (!tokenize(tail, tail_groups, tail_count)) return std::nullopt;

    std::array<std::uint16_t, 8> groups{};
    if (gap == std::string_view::npos) {
        if (head_count != 8) return std::nullopt;
        groups = head_groups;
    } else {
        // "::" must stand for at least one zero group, so at most 7
        // explicit groups may accompany it ("1:2:3:4:5:6:7::8" is
        // rejected, matching inet_pton).
        if (head_count + tail_count > 7) return std::nullopt;
        for (std::size_t i = 0; i < head_count; ++i) groups[i] = head_groups[i];
        for (std::size_t i = 0; i < tail_count; ++i)
            groups[8 - tail_count + i] = tail_groups[i];
    }
    return from_hextets(groups);
}

address address::must_parse(std::string_view text) {
    auto a = parse(text);
    if (!a) throw std::invalid_argument("invalid IPv6 address: " + std::string(text));
    return *a;
}

address address::masked(unsigned len) const noexcept {
    address a;
    const unsigned full_bytes = len / 8;
    for (unsigned i = 0; i < full_bytes; ++i) a.bytes_[i] = bytes_[i];
    if (len % 8 != 0 && full_bytes < 16) {
        const std::uint8_t mask = static_cast<std::uint8_t>(0xff00u >> (len % 8));
        a.bytes_[full_bytes] = static_cast<std::uint8_t>(bytes_[full_bytes] & mask);
    }
    return a;
}

address address::masked_upper(unsigned len) const noexcept {
    address a = masked(len);
    const unsigned full_bytes = len / 8;
    if (len % 8 != 0 && full_bytes < 16) {
        const std::uint8_t mask = static_cast<std::uint8_t>(0xffu >> (len % 8));
        a.bytes_[full_bytes] = static_cast<std::uint8_t>(a.bytes_[full_bytes] | mask);
    }
    for (unsigned i = (len + 7) / 8; i < 16; ++i) a.bytes_[i] = 0xff;
    return a;
}

unsigned address::common_prefix_length(const address& other) const noexcept {
    unsigned len = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const std::uint8_t diff = static_cast<std::uint8_t>(bytes_[i] ^ other.bytes_[i]);
        if (diff == 0) {
            len += 8;
            continue;
        }
        len += static_cast<unsigned>(std::countl_zero(diff));
        break;
    }
    return len;
}

std::string address::to_string() const {
    std::array<std::uint16_t, 8> h{};
    for (unsigned i = 0; i < 8; ++i) h[i] = hextet(i);

    // RFC 5952: compress the longest run of zero hextets (leftmost on
    // tie), but only runs of length >= 2.
    int best_start = -1, best_len = 0;
    for (int i = 0; i < 8;) {
        if (h[static_cast<std::size_t>(i)] != 0) {
            ++i;
            continue;
        }
        int j = i;
        while (j < 8 && h[static_cast<std::size_t>(j)] == 0) ++j;
        if (j - i > best_len) {
            best_start = i;
            best_len = j - i;
        }
        i = j;
    }
    if (best_len < 2) best_start = -1;

    std::string out;
    out.reserve(45);
    char buf[8];
    for (int i = 0; i < 8;) {
        if (i == best_start) {
            out += "::";
            i += best_len;
            continue;
        }
        if (!out.empty() && out.back() != ':') out += ':';
        auto [end, ec] = std::to_chars(buf, buf + sizeof buf,
                                       h[static_cast<std::size_t>(i)], 16);
        (void)ec;
        out.append(buf, end);
        ++i;
    }
    if (out.empty()) out = "::";
    return out;
}

std::string address::to_full_hex() const {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (unsigned i = 0; i < 32; ++i) out[i] = digits[nybble(i)];
    return out;
}

}  // namespace v6
