#include "v6class/ip/io.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace v6 {

namespace {

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

}  // namespace

read_report read_address_lines(
    std::istream& in,
    const std::function<void(const address&, std::uint64_t count)>& sink) {
    read_report report;
    std::string line;
    while (std::getline(in, line)) {
        ++report.lines;
        const std::string_view text = trim(line);
        if (text.empty()) {
            ++report.blank;
            continue;
        }
        if (text.front() == '#') {
            ++report.comments;
            continue;
        }
        const std::size_t space = text.find_first_of(" \t");
        const std::string_view addr_text =
            space == std::string_view::npos ? text : text.substr(0, space);
        const auto addr = address::parse(addr_text);
        std::uint64_t count = 1;
        bool ok = addr.has_value();
        if (ok && space != std::string_view::npos) {
            const std::string_view count_text = trim(text.substr(space));
            const auto* begin = count_text.data();
            const auto* end = begin + count_text.size();
            auto [ptr, ec] = std::from_chars(begin, end, count);
            ok = ec == std::errc{} && ptr == end && count > 0;
        }
        if (!ok) {
            ++report.malformed;
            if (report.first_errors.size() < 8)
                report.first_errors.push_back({report.lines, line});
            continue;
        }
        ++report.parsed;
        sink(*addr, count);
    }
    return report;
}

read_report read_addresses(std::istream& in, std::vector<address>& out) {
    return read_address_lines(
        in, [&](const address& a, std::uint64_t) { out.push_back(a); });
}

void write_addresses(std::ostream& out, const std::vector<address>& addrs) {
    for (const address& a : addrs) out << a.to_string() << '\n';
}

void write_address_counts(
    std::ostream& out,
    const std::vector<std::pair<address, std::uint64_t>>& records) {
    for (const auto& [addr, count] : records)
        out << addr.to_string() << ' ' << count << '\n';
}

read_report read_prefix_lines(
    std::istream& in,
    const std::function<void(const prefix&, std::uint64_t value)>& sink) {
    read_report report;
    std::string line;
    while (std::getline(in, line)) {
        ++report.lines;
        const std::string_view text = trim(line);
        if (text.empty()) {
            ++report.blank;
            continue;
        }
        if (text.front() == '#') {
            ++report.comments;
            continue;
        }
        const std::size_t space = text.find_first_of(" \t");
        const std::string_view pfx_text =
            space == std::string_view::npos ? text : text.substr(0, space);
        const auto pfx = prefix::parse(pfx_text);
        std::uint64_t value = 0;
        bool ok = pfx.has_value();
        if (ok && space != std::string_view::npos) {
            const std::string_view value_text = trim(text.substr(space));
            const auto* begin = value_text.data();
            const auto* end = begin + value_text.size();
            auto [ptr, ec] = std::from_chars(begin, end, value);
            ok = ec == std::errc{} && ptr == end;
        }
        if (!ok) {
            ++report.malformed;
            if (report.first_errors.size() < 8)
                report.first_errors.push_back({report.lines, line});
            continue;
        }
        ++report.parsed;
        sink(*pfx, value);
    }
    return report;
}

void write_prefix_values(
    std::ostream& out,
    const std::vector<std::pair<prefix, std::uint64_t>>& records) {
    for (const auto& [pfx, value] : records)
        out << pfx.to_string() << ' ' << value << '\n';
}

}  // namespace v6
