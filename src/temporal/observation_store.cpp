#include "v6class/temporal/observation_store.h"

#include <algorithm>
#include <bit>

#include "v6class/obs/timer.h"

namespace v6 {

void observation_store::record::set_bit(unsigned offset) {
    if (offset < 64) {
        inline_bits |= std::uint64_t{1} << offset;
        return;
    }
    const unsigned word = offset / 64 - 1;  // overflow words cover bits 64+
    if (!overflow) overflow = std::make_unique<std::vector<std::uint64_t>>();
    if (overflow->size() <= word) overflow->resize(word + 1, 0);
    (*overflow)[word] |= std::uint64_t{1} << (offset % 64);
}

bool observation_store::record::get_bit(unsigned offset) const noexcept {
    if (offset < 64) return (inline_bits >> offset) & 1;
    const unsigned word = offset / 64 - 1;
    if (!overflow || overflow->size() <= word) return false;
    return ((*overflow)[word] >> (offset % 64)) & 1;
}

void observation_store::record::shift_right(unsigned by) {
    if (by == 0) return;
    // Whole-word shift toward higher offsets. The record is one
    // conceptual little-endian bit array — inline_bits is word 0, the
    // overflow words follow — so moving every observation `by` days
    // later is a word move by by/64 plus a carrying bit shift by by%64.
    // Still the rare path (an earlier day arriving after later ones),
    // but a long backfill is now linear in words, not bits.
    const unsigned ws = by / 64;
    const unsigned bs = by % 64;
    std::vector<std::uint64_t> words;
    words.reserve(1 + (overflow ? overflow->size() : 0));
    words.push_back(inline_bits);
    if (overflow) words.insert(words.end(), overflow->begin(), overflow->end());
    std::vector<std::uint64_t> out(words.size() + ws + (bs != 0 ? 1 : 0), 0);
    for (std::size_t i = 0; i < words.size(); ++i) {
        out[i + ws] |= words[i] << bs;
        if (bs != 0) out[i + ws + 1] |= words[i] >> (64 - bs);
    }
    while (out.size() > 1 && out.back() == 0) out.pop_back();
    inline_bits = out[0];
    if (out.size() > 1) {
        if (!overflow) overflow = std::make_unique<std::vector<std::uint64_t>>();
        overflow->assign(out.begin() + 1, out.end());
    } else if (overflow) {
        overflow->clear();
    }
}

unsigned observation_store::record::popcount() const noexcept {
    unsigned n = static_cast<unsigned>(std::popcount(inline_bits));
    if (overflow)
        for (std::uint64_t word : *overflow)
            n += static_cast<unsigned>(std::popcount(word));
    return n;
}

void observation_store::record_one(int day, const address& a) {
    auto [it, fresh] = records_.try_emplace(a);
    record& r = it->second;
    if (fresh) {
        r.first_day = day;
        r.last_day = day;
        r.set_bit(0);
        return;
    }
    if (day < r.first_day) {
        r.shift_right(static_cast<unsigned>(r.first_day - day));
        r.first_day = day;
        r.set_bit(0);
    } else {
        r.set_bit(static_cast<unsigned>(day - r.first_day));
    }
    r.last_day = std::max(r.last_day, day);
}

void observation_store::record_day(int day, const std::vector<address>& active) {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_temporal_record_day_seconds", obs::latency_buckets(), {},
        "Time to fold one day of active addresses into the lifetime store.");
    const obs::trace_scope span("record_day", phase);
    records_.reserve(records_.size() + active.size());
    for (const address& a : active)
        record_one(day, prefix_length_ == 128 ? a : a.masked(prefix_length_));
}

unsigned observation_store::days_seen(const address& a) const noexcept {
    const auto it = records_.find(prefix_length_ == 128 ? a : a.masked(prefix_length_));
    return it == records_.end() ? 0 : it->second.popcount();
}

std::optional<std::pair<int, int>> observation_store::first_last(
    const address& a) const noexcept {
    const auto it = records_.find(prefix_length_ == 128 ? a : a.masked(prefix_length_));
    if (it == records_.end()) return std::nullopt;
    return std::make_pair(it->second.first_day, it->second.last_day);
}

bool observation_store::is_stable(const address& a, unsigned n) const noexcept {
    const auto fl = first_last(a);
    return fl && fl->second - fl->first >= static_cast<int>(n);
}

std::vector<address> observation_store::stable_addresses(unsigned n) const {
    std::vector<address> out;
    for (const auto& [addr, rec] : records_)
        if (rec.last_day - rec.first_day >= static_cast<int>(n)) out.push_back(addr);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::uint64_t> observation_store::stability_spectrum(
    unsigned max_n) const {
    std::vector<std::uint64_t> span_hist(max_n + 1, 0);
    for (const auto& [addr, rec] : records_) {
        const unsigned span = static_cast<unsigned>(rec.last_day - rec.first_day);
        ++span_hist[std::min(span, max_n)];
    }
    // Suffix-sum: spectrum[n] = addresses with span >= n.
    std::vector<std::uint64_t> spectrum(max_n + 1, 0);
    std::uint64_t running = 0;
    for (unsigned n = max_n + 1; n-- > 0;) {
        running += span_hist[n];
        spectrum[n] = running;
    }
    return spectrum;
}

std::vector<std::uint64_t> observation_store::gap_histogram(unsigned max_gap) const {
    std::vector<std::uint64_t> hist(max_gap + 1, 0);
    for (const auto& [addr, rec] : records_) {
        const unsigned top =
            64 + (rec.overflow ? static_cast<unsigned>(rec.overflow->size()) * 64 : 0);
        int prev = -1;
        for (unsigned i = 0; i < top; ++i) {
            if (!rec.get_bit(i)) continue;
            if (prev >= 0) {
                const unsigned gap = i - static_cast<unsigned>(prev);
                ++hist[std::min(gap, max_gap)];
            }
            prev = static_cast<int>(i);
        }
    }
    return hist;
}

}  // namespace v6
