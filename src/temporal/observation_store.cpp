#include "v6class/temporal/observation_store.h"

#include <algorithm>
#include <bit>

#include "v6class/obs/timer.h"

namespace v6 {

namespace {

// Same bit semantics as address::masked(len), on the lane representation.
inline void mask_pair(std::uint64_t& hi, std::uint64_t& lo,
                      unsigned len) noexcept {
    if (len >= 128) return;
    if (len >= 64) {
        lo = (len == 64) ? 0 : (lo & (~0ull << (128 - len)));
    } else {
        hi = (len == 0) ? 0 : (hi & (~0ull << (64 - len)));
        lo = 0;
    }
}

inline std::uint64_t hash_pair(std::uint64_t hi, std::uint64_t lo) noexcept {
    std::uint64_t h = hi ^ (lo + 0x9e3779b97f4a7c15ull + (hi << 6) + (hi >> 2));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

}  // namespace

void observation_store::record::set_bit(unsigned offset) {
    if (offset < 64) {
        inline_bits |= std::uint64_t{1} << offset;
        return;
    }
    const unsigned word = offset / 64 - 1;  // overflow words cover bits 64+
    if (!overflow) overflow = std::make_unique<std::vector<std::uint64_t>>();
    if (overflow->size() <= word) overflow->resize(word + 1, 0);
    (*overflow)[word] |= std::uint64_t{1} << (offset % 64);
}

bool observation_store::record::get_bit(unsigned offset) const noexcept {
    if (offset < 64) return (inline_bits >> offset) & 1;
    const unsigned word = offset / 64 - 1;
    if (!overflow || overflow->size() <= word) return false;
    return ((*overflow)[word] >> (offset % 64)) & 1;
}

void observation_store::record::shift_right(unsigned by) {
    if (by == 0) return;
    // Whole-word shift toward higher offsets. The record is one
    // conceptual little-endian bit array — inline_bits is word 0, the
    // overflow words follow — so moving every observation `by` days
    // later is a word move by by/64 plus a carrying bit shift by by%64.
    // Still the rare path (an earlier day arriving after later ones),
    // but a long backfill is now linear in words, not bits.
    const unsigned ws = by / 64;
    const unsigned bs = by % 64;
    std::vector<std::uint64_t> words;
    words.reserve(1 + (overflow ? overflow->size() : 0));
    words.push_back(inline_bits);
    if (overflow) words.insert(words.end(), overflow->begin(), overflow->end());
    std::vector<std::uint64_t> out(words.size() + ws + (bs != 0 ? 1 : 0), 0);
    for (std::size_t i = 0; i < words.size(); ++i) {
        out[i + ws] |= words[i] << bs;
        if (bs != 0) out[i + ws + 1] |= words[i] >> (64 - bs);
    }
    while (out.size() > 1 && out.back() == 0) out.pop_back();
    inline_bits = out[0];
    if (out.size() > 1) {
        if (!overflow) overflow = std::make_unique<std::vector<std::uint64_t>>();
        overflow->assign(out.begin() + 1, out.end());
    } else if (overflow) {
        overflow->clear();
    }
}

unsigned observation_store::record::popcount() const noexcept {
    unsigned n = static_cast<unsigned>(std::popcount(inline_bits));
    if (overflow)
        for (std::uint64_t word : *overflow)
            n += static_cast<unsigned>(std::popcount(word));
    return n;
}

std::uint32_t observation_store::lookup(std::uint64_t hi,
                                        std::uint64_t lo) const noexcept {
    if (index_.empty()) return kEmptySlot;
    const std::size_t mask = index_.size() - 1;
    std::size_t slot = hash_pair(hi, lo) & mask;
    for (;;) {
        const std::uint32_t idx = index_[slot];
        if (idx == kEmptySlot) return kEmptySlot;
        if (key_hi_[idx] == hi && key_lo_[idx] == lo) return idx;
        slot = (slot + 1) & mask;
    }
}

void observation_store::reserve_for(std::size_t additional) {
    const std::size_t need = recs_.size() + additional;
    key_hi_.reserve(need);
    key_lo_.reserve(need);
    recs_.reserve(need);
    // Keep the probe table under 7/8 load; one rehash up front covers the
    // whole batch.
    if (index_.empty() || need * 8 >= index_.size() * 7) {
        std::size_t cap = std::bit_ceil(std::max<std::size_t>(1024, need * 2));
        std::vector<std::uint32_t> fresh(cap, kEmptySlot);
        const std::size_t mask = cap - 1;
        for (std::uint32_t idx = 0; idx < recs_.size(); ++idx) {
            std::size_t slot = hash_pair(key_hi_[idx], key_lo_[idx]) & mask;
            while (fresh[slot] != kEmptySlot) slot = (slot + 1) & mask;
            fresh[slot] = idx;
        }
        index_ = std::move(fresh);
    }
}

void observation_store::record_one(int day, std::uint64_t hi,
                                   std::uint64_t lo) {
    const std::size_t mask = index_.size() - 1;
    std::size_t slot = hash_pair(hi, lo) & mask;
    std::uint32_t idx;
    for (;;) {
        idx = index_[slot];
        if (idx == kEmptySlot) {
            idx = static_cast<std::uint32_t>(recs_.size());
            index_[slot] = idx;
            key_hi_.push_back(hi);
            key_lo_.push_back(lo);
            record& fresh = recs_.emplace_back();
            fresh.first_day = day;
            fresh.last_day = day;
            fresh.set_bit(0);
            return;
        }
        if (key_hi_[idx] == hi && key_lo_[idx] == lo) break;
        slot = (slot + 1) & mask;
    }
    record& r = recs_[idx];
    if (day < r.first_day) {
        r.shift_right(static_cast<unsigned>(r.first_day - day));
        r.first_day = day;
        r.set_bit(0);
    } else {
        r.set_bit(static_cast<unsigned>(day - r.first_day));
    }
    r.last_day = std::max(r.last_day, day);
}

void observation_store::record_day(int day, const std::vector<address>& active) {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_temporal_record_day_seconds", obs::latency_buckets(), {},
        "Time to fold one day of active addresses into the lifetime store.");
    const obs::trace_scope span("record_day", phase);
    reserve_for(active.size());
    for (const address& a : active) {
        std::uint64_t hi = a.hi(), lo = a.lo();
        mask_pair(hi, lo, prefix_length_);
        record_one(day, hi, lo);
    }
}

void observation_store::record_day(int day, const simd::address_block& active) {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_temporal_record_day_seconds", obs::latency_buckets(), {},
        "Time to fold one day of active addresses into the lifetime store.");
    const obs::trace_scope span("record_day", phase);
    reserve_for(active.size());
    const std::uint64_t* his = active.hi();
    const std::uint64_t* los = active.lo();
    for (std::size_t i = 0; i < active.size(); ++i) {
        std::uint64_t hi = his[i], lo = los[i];
        mask_pair(hi, lo, prefix_length_);
        record_one(day, hi, lo);
    }
}

unsigned observation_store::days_seen(const address& a) const noexcept {
    std::uint64_t hi = a.hi(), lo = a.lo();
    mask_pair(hi, lo, prefix_length_);
    const std::uint32_t idx = lookup(hi, lo);
    return idx == kEmptySlot ? 0 : recs_[idx].popcount();
}

std::optional<std::pair<int, int>> observation_store::first_last(
    const address& a) const noexcept {
    std::uint64_t hi = a.hi(), lo = a.lo();
    mask_pair(hi, lo, prefix_length_);
    const std::uint32_t idx = lookup(hi, lo);
    if (idx == kEmptySlot) return std::nullopt;
    return std::make_pair(recs_[idx].first_day, recs_[idx].last_day);
}

bool observation_store::is_stable(const address& a, unsigned n) const noexcept {
    const auto fl = first_last(a);
    return fl && fl->second - fl->first >= static_cast<int>(n);
}

std::vector<address> observation_store::stable_addresses(unsigned n) const {
    std::vector<address> out;
    for (std::size_t i = 0; i < recs_.size(); ++i)
        if (recs_[i].last_day - recs_[i].first_day >= static_cast<int>(n))
            out.push_back(address::from_pair(key_hi_[i], key_lo_[i]));
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::uint64_t> observation_store::stability_spectrum(
    unsigned max_n) const {
    std::vector<std::uint64_t> span_hist(max_n + 1, 0);
    for (const record& rec : recs_) {
        const unsigned span = static_cast<unsigned>(rec.last_day - rec.first_day);
        ++span_hist[std::min(span, max_n)];
    }
    // Suffix-sum: spectrum[n] = addresses with span >= n.
    std::vector<std::uint64_t> spectrum(max_n + 1, 0);
    std::uint64_t running = 0;
    for (unsigned n = max_n + 1; n-- > 0;) {
        running += span_hist[n];
        spectrum[n] = running;
    }
    return spectrum;
}

std::vector<std::uint64_t> observation_store::gap_histogram(unsigned max_gap) const {
    std::vector<std::uint64_t> hist(max_gap + 1, 0);
    for (const record& rec : recs_) {
        const unsigned top =
            64 + (rec.overflow ? static_cast<unsigned>(rec.overflow->size()) * 64 : 0);
        int prev = -1;
        for (unsigned i = 0; i < top; ++i) {
            if (!rec.get_bit(i)) continue;
            if (prev >= 0) {
                const unsigned gap = i - static_cast<unsigned>(prev);
                ++hist[std::min(gap, max_gap)];
            }
            prev = static_cast<int>(i);
        }
    }
    return hist;
}

}  // namespace v6
