#include "v6class/temporal/stability.h"

#include <algorithm>

#include "v6class/obs/timer.h"

namespace v6 {

stability_split stability_analyzer::classify_day(day_index ref_day, unsigned n) const {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_temporal_classify_day_seconds", obs::latency_buckets(), {},
        "Time to nd-stable-classify one reference day against its window.");
    const obs::trace_scope span("classify_day", phase);
    const std::vector<address>& ref = series_->day(ref_day);
    stability_split out;
    if (ref.empty()) return out;

    // first[i]/last[i]: earliest and latest day within the window on
    // which ref[i] was seen. Initialized to the reference day itself.
    std::vector<day_index> first(ref.size(), ref_day);
    std::vector<day_index> last(ref.size(), ref_day);

    const day_index lo = ref_day - opt_.window_back;
    const day_index hi = ref_day + opt_.window_fwd;
    for (day_index d = lo; d <= hi; ++d) {
        if (d == ref_day) continue;
        const std::vector<address>& set = series_->day(d);
        // Two-pointer merge against the (sorted) reference set.
        std::size_t i = 0, j = 0;
        while (i < ref.size() && j < set.size()) {
            if (ref[i] < set[j]) {
                ++i;
            } else if (set[j] < ref[i]) {
                ++j;
            } else {
                first[i] = std::min(first[i], d);
                last[i] = std::max(last[i], d);
                ++i;
                ++j;
            }
        }
    }

    const int required_gap = static_cast<int>(n) + opt_.slew_tolerance;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (last[i] - first[i] >= required_gap)
            out.stable.push_back(ref[i]);
        else
            out.not_stable.push_back(ref[i]);
    }
    return out;
}

std::uint64_t stability_analyzer::count_stable(day_index ref_day, unsigned n) const {
    return classify_day(ref_day, n).stable.size();
}

stability_split stability_analyzer::classify_week(day_index first_day, unsigned n) const {
    std::vector<address> stable_union;
    std::vector<address> not_stable_union;
    for (day_index d = first_day; d < first_day + 7; ++d) {
        stability_split s = classify_day(d, n);
        stable_union = union_sorted(stable_union, s.stable);
        not_stable_union = union_sorted(not_stable_union, s.not_stable);
    }
    return {std::move(stable_union), std::move(not_stable_union)};
}

std::vector<std::uint64_t> stability_analyzer::overlap_series(day_index ref_day,
                                                              day_index from,
                                                              day_index to) const {
    const std::vector<address>& ref = series_->day(ref_day);
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(std::max(0, to - from + 1)));
    for (day_index d = from; d <= to; ++d) {
        const std::vector<address>& set = series_->day(d);
        std::uint64_t overlap = 0;
        std::size_t i = 0, j = 0;
        while (i < ref.size() && j < set.size()) {
            if (ref[i] < set[j])
                ++i;
            else if (set[j] < ref[i])
                ++j;
            else {
                ++overlap;
                ++i;
                ++j;
            }
        }
        out.push_back(overlap);
    }
    return out;
}

}  // namespace v6
