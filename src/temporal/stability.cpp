#include "v6class/temporal/stability.h"

#include <algorithm>

#include "v6class/obs/timer.h"
#include "v6class/par/pool.h"

namespace v6 {

stability_split stability_analyzer::classify_day(day_index ref_day, unsigned n) const {
    static const obs::histogram phase = obs::registry::global().get_histogram(
        "v6_temporal_classify_day_seconds", obs::latency_buckets(), {},
        "Time to nd-stable-classify one reference day against its window.");
    const obs::trace_scope span("classify_day", phase);
    const std::vector<address>& ref = series_->day(ref_day);
    stability_split out;
    if (ref.empty()) return out;

    // first[i]/last[i]: earliest and latest day within the window on
    // which ref[i] was seen. Initialized to the reference day itself.
    std::vector<day_index> first(ref.size(), ref_day);
    std::vector<day_index> last(ref.size(), ref_day);

    const day_index lo = ref_day - opt_.window_back;
    const day_index hi = ref_day + opt_.window_fwd;
    for (day_index d = lo; d <= hi; ++d) {
        if (d == ref_day) continue;
        const std::vector<address>& set = series_->day(d);
        // Two-pointer merge against the (sorted) reference set.
        std::size_t i = 0, j = 0;
        while (i < ref.size() && j < set.size()) {
            if (ref[i] < set[j]) {
                ++i;
            } else if (set[j] < ref[i]) {
                ++j;
            } else {
                first[i] = std::min(first[i], d);
                last[i] = std::max(last[i], d);
                ++i;
                ++j;
            }
        }
    }

    const int required_gap = static_cast<int>(n) + opt_.slew_tolerance;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (last[i] - first[i] >= required_gap)
            out.stable.push_back(ref[i]);
        else
            out.not_stable.push_back(ref[i]);
    }
    return out;
}

std::uint64_t stability_analyzer::count_stable(day_index ref_day, unsigned n) const {
    return classify_day(ref_day, n).stable.size();
}

stability_split stability_analyzer::classify_week(day_index first_day, unsigned n) const {
    // The seven reference days only read the (immutable) series; classify
    // them concurrently, then fold the unions in day order so the result
    // matches the serial path exactly.
    const std::vector<stability_split> splits =
        par::map_indexed<stability_split>(7, [&](std::size_t i) {
            return classify_day(first_day + static_cast<day_index>(i), n);
        });
    const obs::span merge_span("merge_week", obs::span_kind::merge);
    std::vector<address> stable_union;
    std::vector<address> not_stable_union;
    for (const stability_split& s : splits) {
        stable_union = union_sorted(stable_union, s.stable);
        not_stable_union = union_sorted(not_stable_union, s.not_stable);
    }
    return {std::move(stable_union), std::move(not_stable_union)};
}

std::vector<std::uint64_t> stability_analyzer::overlap_series(day_index ref_day,
                                                              day_index from,
                                                              day_index to) const {
    const std::vector<address>& ref = series_->day(ref_day);
    if (to < from) return {};
    // One independent merge per day; slot d-from keeps the series in day
    // order regardless of scheduling.
    return par::map_indexed<std::uint64_t>(
        static_cast<std::size_t>(to - from + 1), [&](std::size_t k) {
            const std::vector<address>& set =
                series_->day(from + static_cast<day_index>(k));
            std::uint64_t overlap = 0;
            std::size_t i = 0, j = 0;
            while (i < ref.size() && j < set.size()) {
                if (ref[i] < set[j])
                    ++i;
                else if (set[j] < ref[i])
                    ++j;
                else {
                    ++overlap;
                    ++i;
                    ++j;
                }
            }
            return overlap;
        });
}

}  // namespace v6
