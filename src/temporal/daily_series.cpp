#include "v6class/temporal/daily_series.h"

#include <algorithm>

namespace v6 {

const std::vector<address> daily_series::empty_{};

namespace {

void sort_unique(std::vector<address>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

void daily_series::set_day(day_index day, std::vector<address> active) {
    sort_unique(active);
    days_[day] = std::move(active);
}

void daily_series::merge_day(day_index day, const std::vector<address>& active) {
    auto it = days_.find(day);
    if (it == days_.end()) {
        set_day(day, active);
        return;
    }
    std::vector<address> incoming = active;
    sort_unique(incoming);
    it->second = union_sorted(it->second, incoming);
}

const std::vector<address>& daily_series::day(day_index d) const noexcept {
    auto it = days_.find(d);
    return it == days_.end() ? empty_ : it->second;
}

bool daily_series::active_on(day_index d, const address& a) const noexcept {
    const auto& set = day(d);
    return std::binary_search(set.begin(), set.end(), a);
}

std::vector<address> daily_series::union_over(day_index from, day_index to) const {
    std::vector<address> out;
    for (auto it = days_.lower_bound(from); it != days_.end() && it->first <= to; ++it)
        out.insert(out.end(), it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<day_index> daily_series::days() const {
    std::vector<day_index> out;
    out.reserve(days_.size());
    for (const auto& [d, _] : days_) out.push_back(d);
    return out;
}

daily_series daily_series::project(unsigned len) const {
    daily_series out;
    for (const auto& [d, set] : days_) {
        std::vector<address> cut;
        cut.reserve(set.size());
        for (const address& a : set) cut.push_back(a.masked(len));
        out.set_day(d, std::move(cut));
    }
    return out;
}

std::vector<address> intersect_sorted(const std::vector<address>& a,
                                      const std::vector<address>& b) {
    std::vector<address> out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

std::vector<address> union_sorted(const std::vector<address>& a,
                                  const std::vector<address>& b) {
    std::vector<address> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

}  // namespace v6
