// replay.cpp — wire-file / pcap replay and the UDP send driver.
#include "v6class/net/replay.h"

#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "v6class/net/collector.h"

namespace v6::net {

namespace {

using clock = std::chrono::steady_clock;

bool should_stop(const replay_options& opt) noexcept {
    return opt.stop != nullptr && *opt.stop != 0;
}

/// Sleeps until `done` records fit the rate schedule, in <=50 ms slices
/// so the stop flag stays responsive. Returns false when stopped.
bool pace(const replay_options& opt, const clock::time_point& start,
          std::uint64_t done) {
    if (opt.rate <= 0) return !should_stop(opt);
    const auto target = start + std::chrono::duration_cast<clock::duration>(
                                    std::chrono::duration<double>(
                                        static_cast<double>(done) / opt.rate));
    for (;;) {
        if (should_stop(opt)) return false;
        const auto now = clock::now();
        if (now >= target) return true;
        const auto remaining = target - now;
        std::this_thread::sleep_for(
            remaining < std::chrono::milliseconds(50)
                ? remaining
                : clock::duration(std::chrono::milliseconds(50)));
    }
}

}  // namespace

replay_result replay_wire_file(const std::string& path, stream_engine& engine,
                               enrichment* enrich, asn_ledger* ledger,
                               const replay_options& opt) {
    replay_result result;
    wire_file_reader reader(path);
    if (!reader.valid()) {
        result.error = reader.error();
        return result;
    }
    const auto start = clock::now();
    wire_decoder decoder;
    lookup_cache cache;
    std::vector<std::uint8_t> datagram;
    simd::record_block batch;
    while (reader.next(datagram)) {
        ++result.datagrams;
        result.bytes += datagram.size();
        batch.clear();
        decoder.decode(datagram.data(), datagram.size(), batch);
        ingest_block(engine, batch, enrich, ledger, &cache);
        result.records += batch.size();
        if (!pace(opt, start, result.records)) {
            result.stopped = true;
            break;
        }
    }
    if (!reader.error().empty() && !result.stopped) result.error = reader.error();
    result.decode = decoder.stats();
    return result;
}

replay_result replay_pcap_file(const std::string& path, stream_engine& engine,
                               enrichment* enrich, asn_ledger* ledger,
                               const replay_options& opt) {
    replay_result result;
    const auto start = clock::now();
    wire_decoder decoder;
    lookup_cache cache;
    simd::record_block batch;
    std::string error;
    const auto stats = pcap_extract_udp(
        path, opt.pcap_port,
        [&](const std::uint8_t* payload, std::size_t len) {
            if (result.stopped) return;
            ++result.datagrams;
            result.bytes += len;
            batch.clear();
            decoder.decode(payload, len, batch);
            ingest_block(engine, batch, enrich, ledger, &cache);
            result.records += batch.size();
            if (!pace(opt, start, result.records)) result.stopped = true;
        },
        &error);
    if (!stats) {
        result.error = error;
        return result;
    }
    result.pcap = *stats;
    result.decode = decoder.stats();
    return result;
}

replay_result send_wire_file(const std::string& path, const std::string& host,
                             std::uint16_t port, const replay_options& opt) {
    replay_result result;
    wire_file_reader reader(path);
    if (!reader.valid()) {
        result.error = reader.error();
        return result;
    }

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_DGRAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                  &hints, &res);
    if (gai != 0) {
        result.error = host + ": " + ::gai_strerror(gai);
        return result;
    }
    const int fd = ::socket(res->ai_family, SOCK_DGRAM | SOCK_CLOEXEC,
                            res->ai_protocol);
    if (fd < 0) {
        result.error = std::string("socket: ") + std::strerror(errno);
        ::freeaddrinfo(res);
        return result;
    }
    if (::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
        result.error = "connect [" + host + "]:" + std::to_string(port) + ": " +
                       std::strerror(errno);
        ::freeaddrinfo(res);
        ::close(fd);
        return result;
    }
    ::freeaddrinfo(res);

    const auto start = clock::now();
    std::vector<std::uint8_t> datagram;
    while (reader.next(datagram)) {
        if (::send(fd, datagram.data(), datagram.size(), 0) < 0) {
            // A full socket buffer on a blocking socket waits; any other
            // send failure (e.g. ICMP port unreachable reflected back on
            // a connected socket) is retried once, then reported.
            if (errno == ECONNREFUSED &&
                ::send(fd, datagram.data(), datagram.size(), 0) >= 0) {
                // retry succeeded
            } else {
                result.error = std::string("send: ") + std::strerror(errno);
                break;
            }
        }
        ++result.datagrams;
        result.bytes += datagram.size();
        // Record count without decoding: trust the header's count field
        // for pacing only (a corrupt file still sends byte-exact).
        if (datagram.size() >= kWireHeaderSize)
            result.records += static_cast<std::uint16_t>(datagram[6] |
                                                         (datagram[7] << 8));
        if (!pace(opt, start, result.records)) {
            result.stopped = true;
            break;
        }
    }
    if (!reader.error().empty() && !result.stopped && result.error.empty())
        result.error = reader.error();
    ::close(fd);
    return result;
}

}  // namespace v6::net
