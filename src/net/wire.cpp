// wire.cpp — v6wire codec: see the layout comment in wire.h.
//
// The decoder is written for hostile input: every field is range-checked
// before use, every load goes through memcpy (no alignment assumptions
// on a datagram buffer), and a rejection is a counter bump, never a
// throw. The fuzz-style property test in tests/net_wire_test.cpp mutates
// valid datagrams at random and asserts exactly this contract.
#include "v6class/net/wire.h"

#include <cstring>

namespace v6::net {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

}  // namespace

std::size_t wire_encoder::encode(const stream_record* records, std::size_t n,
                                 std::vector<std::uint8_t>& out) {
    const std::size_t take = n < batch_ ? n : batch_;
    out.clear();
    out.resize(kWireHeaderSize + take * kWireRecordSize);
    std::uint8_t* p = out.data();
    std::memcpy(p, kWireMagic, 4);
    p[4] = kWireVersion;
    p[5] = 0;
    put_u16(p + 6, static_cast<std::uint16_t>(take));
    put_u64(p + 8, seq_++);
    p += kWireHeaderSize;
    for (std::size_t i = 0; i < take; ++i, p += kWireRecordSize) {
        std::memcpy(p, records[i].addr.bytes().data(), 16);
        put_u32(p + 16, static_cast<std::uint32_t>(records[i].day));
        put_u64(p + 20, records[i].hits);
        put_u32(p + 28, 0);
    }
    return take;
}

std::size_t wire_encoder::encode_all(
    const std::vector<stream_record>& records,
    const std::function<void(const std::vector<std::uint8_t>&)>& sink) {
    std::vector<std::uint8_t> datagram;
    std::size_t produced = 0;
    std::size_t done = 0;
    while (done < records.size()) {
        done += encode(records.data() + done, records.size() - done, datagram);
        sink(datagram);
        ++produced;
    }
    return produced;
}

bool wire_decoder::accept(const std::uint8_t* data, std::size_t len,
                          std::size_t& count) {
    if (len < kWireHeaderSize) {
        ++stats_.short_header;
        return false;
    }
    if (std::memcmp(data, kWireMagic, 4) != 0) {
        ++stats_.bad_magic;
        return false;
    }
    if (data[4] != kWireVersion) {
        ++stats_.bad_version;
        return false;
    }
    if (data[5] != 0) {
        ++stats_.bad_flags;
        return false;
    }
    count = get_u16(data + 6);
    const std::size_t need = kWireHeaderSize + count * kWireRecordSize;
    if (len < need) {
        ++stats_.truncated;
        return false;
    }
    if (len > need) {
        ++stats_.trailing;
        return false;
    }
    const std::uint64_t seq = get_u64(data + 8);
    if (!seen_any_) {
        seen_any_ = true;
        high_seq_ = seq;
    } else if (seq > high_seq_) {
        stats_.seq_gaps += seq - high_seq_ - 1;
        high_seq_ = seq;
    } else {
        // At or below the high-water mark: a duplicate or late arrival.
        ++stats_.seq_reorder;
        if (stats_.seq_gaps > 0) --stats_.seq_gaps;  // it was counted lost
    }
    ++stats_.datagrams;
    stats_.records += count;
    return true;
}

bool wire_decoder::decode(const std::uint8_t* data, std::size_t len,
                          std::vector<stream_record>& out) {
    std::size_t count = 0;
    if (!accept(data, len, count)) return false;
    const std::uint8_t* p = data + kWireHeaderSize;
    out.reserve(out.size() + count);
    for (std::size_t i = 0; i < count; ++i, p += kWireRecordSize) {
        std::array<std::uint8_t, 16> bytes;
        std::memcpy(bytes.data(), p, 16);
        stream_record r;
        r.addr = address{bytes};
        r.day = static_cast<std::int32_t>(get_u32(p + 16));
        r.hits = get_u64(p + 20);
        out.push_back(r);
    }
    return true;
}

bool wire_decoder::decode(const std::uint8_t* data, std::size_t len,
                          simd::record_block& out) {
    std::size_t count = 0;
    if (!accept(data, len, count)) return false;
    const std::uint8_t* p = data + kWireHeaderSize;
    out.reserve(out.size() + count);
    for (std::size_t i = 0; i < count; ++i, p += kWireRecordSize) {
        // The 16 address bytes are network order; the lanes hold the
        // big-endian halves as host u64 values, exactly address::hi()/lo().
        out.push_back(simd::load_be64(p), simd::load_be64(p + 8),
                      static_cast<std::int32_t>(get_u32(p + 16)),
                      get_u64(p + 20));
    }
    return true;
}

// ------------------------------------------------------------ files

wire_file_writer::wire_file_writer(const std::string& path)
    : out_(std::fopen(path.c_str(), "wb")) {
    if (out_ && std::fwrite(kWireFileMagic, 1, 8, out_) != 8) error_ = true;
}

wire_file_writer::~wire_file_writer() { close(); }

void wire_file_writer::append(const std::vector<std::uint8_t>& datagram) {
    if (!out_ || error_) return;
    std::uint8_t len[4];
    put_u32(len, static_cast<std::uint32_t>(datagram.size()));
    if (std::fwrite(len, 1, 4, out_) != 4 ||
        std::fwrite(datagram.data(), 1, datagram.size(), out_) != datagram.size()) {
        error_ = true;
        return;
    }
    ++datagrams_;
}

bool wire_file_writer::close() {
    if (out_) {
        if (std::fclose(out_) != 0) error_ = true;
        out_ = nullptr;
    }
    return !error_;
}

wire_file_reader::wire_file_reader(const std::string& path)
    : in_(std::fopen(path.c_str(), "rb")) {
    if (!in_) {
        error_ = "cannot open " + path;
        return;
    }
    std::uint8_t magic[8];
    if (std::fread(magic, 1, 8, in_) != 8 ||
        std::memcmp(magic, kWireFileMagic, 8) != 0)
        error_ = path + ": not a v6wire file";
}

wire_file_reader::~wire_file_reader() {
    if (in_) std::fclose(in_);
}

bool wire_file_reader::next(std::vector<std::uint8_t>& out) {
    out.clear();
    if (!valid()) return false;
    std::uint8_t len_bytes[4];
    const std::size_t got = std::fread(len_bytes, 1, 4, in_);
    if (got == 0 && std::feof(in_)) return false;  // clean EOF
    if (got != 4) {
        error_ = "truncated datagram length prefix";
        return false;
    }
    const std::uint32_t len = get_u32(len_bytes);
    if (len > kWireMaxDatagram) {
        error_ = "datagram length " + std::to_string(len) + " exceeds " +
                 std::to_string(kWireMaxDatagram);
        return false;
    }
    out.resize(len);
    if (std::fread(out.data(), 1, len, in_) != len) {
        error_ = "truncated datagram body";
        out.clear();
        return false;
    }
    return true;
}

std::optional<std::uint64_t> write_wire_file(const std::string& path,
                                             const std::vector<stream_record>& records,
                                             std::size_t batch) {
    wire_file_writer writer(path);
    if (!writer.valid()) return std::nullopt;
    wire_encoder enc(batch);
    enc.encode_all(records, [&](const std::vector<std::uint8_t>& d) { writer.append(d); });
    if (!writer.close()) return std::nullopt;
    return writer.datagrams();
}

// ------------------------------------------------------------ pcap

namespace {

// Classic pcap savefile constants. (pcapng is out of scope; tcpdump -w
// still writes this format.)
constexpr std::uint32_t kPcapMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRawIp = 101;
constexpr std::uint32_t kLinkLinuxSll = 113;
constexpr std::uint32_t kLinkNull = 0;

std::uint32_t swap32(std::uint32_t v) noexcept {
    return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

std::uint16_t read_be16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

/// Walks one captured packet from its link-layer start to a UDP payload.
/// Returns false (without touching outputs) when the packet is not a
/// parsable UDP-in-IP packet.
bool find_udp_payload(const std::uint8_t* p, std::size_t len, std::uint32_t linktype,
                      std::uint16_t port, const std::uint8_t** payload,
                      std::size_t* payload_len) {
    // Strip the link layer down to an IP version + header.
    int ip_version = 0;
    switch (linktype) {
        case kLinkEthernet: {
            if (len < 14) return false;
            std::uint16_t ethertype = read_be16(p + 12);
            std::size_t off = 14;
            if (ethertype == 0x8100) {  // one 802.1Q tag
                if (len < 18) return false;
                ethertype = read_be16(p + 16);
                off = 18;
            }
            if (ethertype == 0x0800) ip_version = 4;
            else if (ethertype == 0x86dd) ip_version = 6;
            else return false;
            p += off;
            len -= off;
            break;
        }
        case kLinkLinuxSll: {
            if (len < 16) return false;
            const std::uint16_t ethertype = read_be16(p + 14);
            if (ethertype == 0x0800) ip_version = 4;
            else if (ethertype == 0x86dd) ip_version = 6;
            else return false;
            p += 16;
            len -= 16;
            break;
        }
        case kLinkRawIp:
        case kLinkNull: {
            if (linktype == kLinkNull) {
                if (len < 4) return false;
                p += 4;
                len -= 4;
            }
            if (len < 1) return false;
            ip_version = p[0] >> 4;
            break;
        }
        default:
            return false;
    }

    // IP header to UDP header.
    if (ip_version == 4) {
        if (len < 20) return false;
        const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0f) * 4;
        if (ihl < 20 || len < ihl + 8) return false;
        if (p[9] != 17) return false;                       // not UDP
        if ((read_be16(p + 6) & 0x1fff) != 0) return false;  // non-first fragment
        p += ihl;
        len -= ihl;
    } else if (ip_version == 6) {
        if (len < 48) return false;  // fixed header + UDP header
        if (p[6] != 17) return false;  // extension headers unsupported
        p += 40;
        len -= 40;
    } else {
        return false;
    }

    // UDP header: dst port filter, length check.
    const std::uint16_t dst_port = read_be16(p + 2);
    if (port != 0 && dst_port != port) return false;
    const std::uint16_t udp_len = read_be16(p + 4);
    if (udp_len < 8 || udp_len > len) return false;
    *payload = p + 8;
    *payload_len = udp_len - 8;
    return true;
}

}  // namespace

std::optional<pcap_scan_stats> pcap_extract_udp(
    const std::string& path, std::uint16_t port,
    const std::function<void(const std::uint8_t*, std::size_t)>& sink,
    std::string* error) {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (!in) {
        if (error) *error = "cannot open " + path;
        return std::nullopt;
    }
    std::uint8_t gh[24];
    if (std::fread(gh, 1, 24, in) != 24) {
        if (error) *error = path + ": short pcap global header";
        std::fclose(in);
        return std::nullopt;
    }
    std::uint32_t magic;
    std::memcpy(&magic, gh, 4);
    bool swapped = false;
    if (magic == kPcapMagicUsec || magic == kPcapMagicNsec) {
        swapped = false;
    } else if (swap32(magic) == kPcapMagicUsec || swap32(magic) == kPcapMagicNsec) {
        swapped = true;
    } else {
        if (error) *error = path + ": not a pcap savefile";
        std::fclose(in);
        return std::nullopt;
    }
    std::uint32_t linktype;
    std::memcpy(&linktype, gh + 20, 4);
    if (swapped) linktype = swap32(linktype);

    pcap_scan_stats stats;
    std::vector<std::uint8_t> pkt;
    for (;;) {
        std::uint8_t rh[16];
        const std::size_t got = std::fread(rh, 1, 16, in);
        if (got == 0 && std::feof(in)) break;
        if (got != 16) {
            ++stats.malformed;
            break;
        }
        std::uint32_t incl;
        std::memcpy(&incl, rh + 8, 4);
        if (swapped) incl = swap32(incl);
        if (incl > 262144) {  // libpcap's own sanity bound
            ++stats.malformed;
            break;
        }
        pkt.resize(incl);
        if (std::fread(pkt.data(), 1, incl, in) != incl) {
            ++stats.malformed;
            break;
        }
        ++stats.packets;
        const std::uint8_t* payload = nullptr;
        std::size_t payload_len = 0;
        if (find_udp_payload(pkt.data(), pkt.size(), linktype, port, &payload,
                             &payload_len)) {
            ++stats.udp_payloads;
            sink(payload, payload_len);
        } else {
            ++stats.skipped;
        }
    }
    std::fclose(in);
    return stats;
}

}  // namespace v6::net
