// enrich.cpp — ASN/geo database build, load, hot-reload, and the
// per-ASN ingest ledger. See enrich.h for the format and the reload
// safety argument.
#include "v6class/net/enrich.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>

#include "v6class/obs/atomic_file.h"

namespace v6::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

/// Splits on commas or runs of whitespace, trimming each field — covers
/// both RIR-style CSV ("2001:db8::/32,64500,nl") and route-dump lines
/// ("2001:db8::/32 64500").
std::vector<std::string_view> split_fields(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == ',' ||
            std::isspace(static_cast<unsigned char>(line[i]))) {
            const std::string_view field = trim(line.substr(start, i - start));
            if (!field.empty()) out.push_back(field);
            start = i + 1;
        }
    }
    return out;
}

}  // namespace

std::optional<enrich_entry> parse_enrich_line(std::string_view line) noexcept {
    const std::vector<std::string_view> fields = split_fields(line);
    if (fields.size() < 2 || fields.size() > 3) return std::nullopt;
    const std::optional<prefix> pfx = prefix::parse(fields[0]);
    if (!pfx) return std::nullopt;
    std::string_view asn_text = fields[1];
    if (asn_text.size() > 2 && (asn_text[0] == 'A' || asn_text[0] == 'a') &&
        (asn_text[1] == 'S' || asn_text[1] == 's'))
        asn_text.remove_prefix(2);
    if (asn_text.empty()) return std::nullopt;
    std::uint64_t asn = 0;
    for (const char c : asn_text) {
        if (c < '0' || c > '9') return std::nullopt;
        asn = asn * 10 + static_cast<std::uint64_t>(c - '0');
        if (asn > 0xffffffffull) return std::nullopt;
    }
    enrich_entry e;
    e.pfx = *pfx;
    e.info.asn = static_cast<std::uint32_t>(asn);
    if (fields.size() == 3) {
        if (fields[2].size() != 2) return std::nullopt;
        e.info.country = {static_cast<char>(std::tolower(
                              static_cast<unsigned char>(fields[2][0]))),
                          static_cast<char>(std::tolower(
                              static_cast<unsigned char>(fields[2][1])))};
    }
    return e;
}

std::optional<std::vector<enrich_entry>> read_enrich_source(
    const std::string& path, std::uint64_t* malformed) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::vector<enrich_entry> entries;
    std::uint64_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        const std::string_view text = trim(line);
        if (text.empty() || text.front() == '#') continue;
        if (const auto e = parse_enrich_line(text))
            entries.push_back(*e);
        else
            ++bad;
    }
    if (malformed) *malformed = bad;
    return entries;
}

std::vector<std::uint8_t> encode_asn_db(std::vector<enrich_entry> entries) {
    // Sort by prefix; stable, so within a run of duplicates the input's
    // last entry is the run's last — kept below (last-writer-wins,
    // matching prefix_map::insert overwrite semantics).
    std::stable_sort(entries.begin(), entries.end(),
                     [](const enrich_entry& a, const enrich_entry& b) {
                         return a.pfx < b.pfx;
                     });
    std::vector<enrich_entry> unique_entries;
    unique_entries.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (i + 1 == entries.size() || !(entries[i].pfx == entries[i + 1].pfx))
            unique_entries.push_back(entries[i]);
    entries = std::move(unique_entries);
    std::vector<std::uint8_t> out(kAsnDbHeaderSize + entries.size() * kAsnDbEntrySize);
    std::uint8_t* p = out.data();
    std::memcpy(p, kAsnDbMagic, 8);
    put_u32(p + 8, kAsnDbVersion);
    put_u32(p + 12, static_cast<std::uint32_t>(entries.size()));
    p += kAsnDbHeaderSize;
    for (const enrich_entry& e : entries) {
        std::memcpy(p, e.pfx.base().bytes().data(), 16);
        p[16] = static_cast<std::uint8_t>(e.pfx.length());
        p[17] = 0;
        p[18] = static_cast<std::uint8_t>(e.info.country[0]);
        p[19] = static_cast<std::uint8_t>(e.info.country[1]);
        put_u32(p + 20, e.info.asn);
        p += kAsnDbEntrySize;
    }
    return out;
}

std::optional<std::vector<enrich_entry>> decode_asn_db(
    const std::uint8_t* data, std::size_t len, std::string* error) {
    const auto fail = [&](const std::string& why) -> std::optional<std::vector<enrich_entry>> {
        if (error) *error = why;
        return std::nullopt;
    };
    if (len < kAsnDbHeaderSize) return fail("short header");
    if (std::memcmp(data, kAsnDbMagic, 8) != 0) return fail("bad magic");
    const std::uint32_t version = get_u32(data + 8);
    if (version != kAsnDbVersion)
        return fail("unsupported version " + std::to_string(version));
    const std::uint64_t count = get_u32(data + 12);
    if (len != kAsnDbHeaderSize + count * kAsnDbEntrySize)
        return fail("size mismatch: " + std::to_string(count) + " entries vs " +
                    std::to_string(len) + " bytes");
    std::vector<enrich_entry> entries;
    entries.reserve(count);
    const std::uint8_t* p = data + kAsnDbHeaderSize;
    for (std::uint64_t i = 0; i < count; ++i, p += kAsnDbEntrySize) {
        if (p[16] > 128)
            return fail("entry " + std::to_string(i) + ": prefix length " +
                        std::to_string(p[16]));
        if (p[17] != 0) return fail("entry " + std::to_string(i) + ": reserved byte set");
        std::array<std::uint8_t, 16> bytes;
        std::memcpy(bytes.data(), p, 16);
        enrich_entry e;
        e.pfx = prefix{address{bytes}, p[16]};
        if (e.pfx.base() != address{bytes})
            return fail("entry " + std::to_string(i) + ": host bits set");
        e.info.country = {static_cast<char>(p[18]), static_cast<char>(p[19])};
        e.info.asn = get_u32(p + 20);
        entries.push_back(e);
    }
    return entries;
}

bool write_asn_db(const std::string& path, const std::vector<enrich_entry>& entries) {
    const std::vector<std::uint8_t> image = encode_asn_db(entries);
    return obs::atomic_write_file(
        path, std::string(reinterpret_cast<const char*>(image.data()), image.size()));
}

asn_db::asn_db(std::vector<enrich_entry> entries, std::uint64_t generation)
    : generation_(generation) {
    for (const enrich_entry& e : entries) {
        map_.insert(e.pfx, e.info);
        max_length_ = std::max(max_length_, e.pfx.length());
    }
}

std::shared_ptr<const asn_db> asn_db::load(const std::string& path,
                                           std::uint64_t generation,
                                           std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error) *error = "cannot open " + path;
        return nullptr;
    }
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    std::string why;
    auto entries = decode_asn_db(reinterpret_cast<const std::uint8_t*>(raw.data()),
                                 raw.size(), &why);
    if (!entries) {
        if (error) *error = path + ": " + why;
        return nullptr;
    }
    return std::make_shared<const asn_db>(std::move(*entries), generation);
}

enrichment::enrichment(std::string path, obs::registry* registry)
    : path_(std::move(path)) {
    if (registry) {
        reloads_ = registry->get_counter(
            "v6_net_enrich_reloads_total", {},
            "Successful enrichment database (re)loads.");
        failures_ = registry->get_counter(
            "v6_net_enrich_reload_failures_total", {},
            "Enrichment reloads that failed (previous snapshot kept).");
        entries_gauge_ = registry->get_gauge(
            "v6_net_enrich_entries", {},
            "Prefix entries in the live enrichment snapshot.");
        generation_gauge_ = registry->get_gauge(
            "v6_net_enrich_generation", {},
            "Generation number of the live enrichment snapshot.");
    }
}

bool enrichment::reload(std::string* error) {
    std::shared_ptr<const asn_db> fresh = asn_db::load(path_, generation_ + 1, error);
    if (!fresh) {
        failure_count_.fetch_add(1, std::memory_order_relaxed);
        failures_.inc();
        return false;
    }
    ++generation_;
    entries_gauge_.set(static_cast<std::int64_t>(fresh->size()));
    generation_gauge_.set(static_cast<std::int64_t>(generation_));
    {
        // The RCU swap: readers copying under the same mutex see the
        // old snapshot or the new one, never anything in between.
        std::lock_guard<std::mutex> lock(snap_mutex_);
        snap_ = std::move(fresh);
    }
    reload_count_.fetch_add(1, std::memory_order_relaxed);
    reloads_.inc();
    return true;
}

// ------------------------------------------------------------ ledger

asn_ledger::asn_ledger(obs::registry* registry, std::size_t max_series)
    : registry_(registry), max_series_(max_series) {
    if (registry_) {
        matched_ = registry_->get_counter(
            "v6_net_enrich_matched_total", {},
            "Ingested records a database prefix covered.");
        unmatched_ = registry_->get_counter(
            "v6_net_enrich_unmatched_total", {},
            "Ingested records no database prefix covered.");
    }
}

obs::counter asn_ledger::series_for(std::uint32_t asn) {
    if (!registry_) return {};
    const auto it = series_.find(asn);
    if (it != series_.end()) return it->second;
    if (series_.size() < max_series_) {
        const obs::counter c = registry_->get_counter(
            "v6_net_asn_records_total", {{"asn", std::to_string(asn)}},
            "Ingested records by origin ASN (capped label set; overflow "
            "lands in asn=\"other\").");
        series_.emplace(asn, c);
        return c;
    }
    if (!other_series_)
        other_series_ = registry_->get_counter(
            "v6_net_asn_records_total", {{"asn", "other"}},
            "Ingested records by origin ASN (capped label set; overflow "
            "lands in asn=\"other\").");
    return other_series_;
}

void asn_ledger::note(int day, const enrich_info* info, std::uint64_t hits) {
    const note_row row{day, info, 1, hits};
    note_many(&row, 1);
}

void asn_ledger::note_many(const note_row* rows, std::size_t n) {
    std::uint64_t matched = 0, unmatched = 0;
    for (std::size_t i = 0; i < n; ++i)
        (rows[i].info ? matched : unmatched) += rows[i].records;
    if (matched) {
        matched_count_.fetch_add(matched, std::memory_order_relaxed);
        matched_.inc(matched);
    }
    if (unmatched) {
        unmatched_count_.fetch_add(unmatched, std::memory_order_relaxed);
        unmatched_.inc(unmatched);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
        const note_row& row = rows[i];
        const enrich_info* info = row.info;
        const std::uint32_t asn = info ? info->asn : 0;
        cell& day_cell = days_[row.day][asn];
        cell& life_cell = lifetime_[asn];
        if (info) {
            day_cell.country = info->country;
            life_cell.country = info->country;
        }
        day_cell.records += row.records;
        day_cell.hits += row.hits;
        life_cell.records += row.records;
        life_cell.hits += row.hits;
        series_for(asn).inc(row.records);
    }
}

std::vector<asn_row> asn_ledger::take_day(int day) {
    std::map<std::uint32_t, cell> rows;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = days_.find(day);
        if (it == days_.end()) return {};
        rows = std::move(it->second);
        days_.erase(it);
    }
    std::vector<asn_row> out;
    out.reserve(rows.size());
    for (const auto& [asn, c] : rows)
        out.push_back({asn, c.country, c.records, c.hits});
    std::sort(out.begin(), out.end(), [](const asn_row& a, const asn_row& b) {
        return a.records != b.records ? a.records > b.records : a.asn < b.asn;
    });
    return out;
}

void flush_day_asn(obs::tsdb::database& db, int day,
                   const std::vector<asn_row>& rows, std::size_t max_rows) {
    std::uint64_t other_records = 0, other_hits = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i >= max_rows) {
            other_records += rows[i].records;
            other_hits += rows[i].hits;
            continue;
        }
        const std::string label =
            rows[i].asn ? "AS" + std::to_string(rows[i].asn)
                        : std::string("unrouted");
        db.append("v6class_asn_records", label, day,
                  static_cast<double>(rows[i].records));
        db.append("v6class_asn_hits", label, day,
                  static_cast<double>(rows[i].hits));
    }
    if (other_records || other_hits) {
        db.append("v6class_asn_records", "other", day,
                  static_cast<double>(other_records));
        db.append("v6class_asn_hits", "other", day,
                  static_cast<double>(other_hits));
    }
}

std::vector<asn_row> asn_ledger::top(std::size_t n) const {
    std::vector<asn_row> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(lifetime_.size());
        for (const auto& [asn, c] : lifetime_)
            out.push_back({asn, c.country, c.records, c.hits});
    }
    std::sort(out.begin(), out.end(), [](const asn_row& a, const asn_row& b) {
        return a.records != b.records ? a.records > b.records : a.asn < b.asn;
    });
    if (out.size() > n) out.resize(n);
    return out;
}

}  // namespace v6::net
