// collector.cpp — UDP collector rx loop. See collector.h for the
// threading model.
#include "v6class/net/collector.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace v6::net {

void ingest_batch(stream_engine& engine, const std::vector<stream_record>& records,
                  enrichment* enrich, asn_ledger* ledger, lookup_cache* cache) {
    std::shared_ptr<const asn_db> snap;
    if (enrich) snap = enrich->snapshot();
    const asn_db* db = snap.get();
    // The per-/64 memo is only sound when no db prefix is longer than
    // /64 (then hi-64 determines the longest match); and it must be
    // flushed whenever the snapshot changed under a reload.
    const bool memo = cache && db && db->max_length() <= 64;
    if (memo && !cache->matches(db)) cache->reset(db);

    // Aggregate ledger rows per (day, info) so the ledger mutex is
    // taken once per batch. A wire datagram holds at most a handful of
    // distinct day/ASN combinations, so a linear scan beats any map.
    std::vector<asn_ledger::note_row> agg;
    for (const stream_record& r : records) {
        if (ledger) {
            const enrich_info* info = nullptr;
            if (db) {
                if (memo) {
                    const std::uint64_t hi = r.addr.hi();
                    lookup_cache::slot& s =
                        cache->slots[(hi * 0x9e3779b97f4a7c15ull) >>
                                     (64 - 8)];  // kSlots == 256
                    if (s.valid && s.hi == hi) {
                        info = s.info;
                    } else {
                        info = db->lookup(r.addr);
                        s = {hi, info, true};
                    }
                } else {
                    info = db->lookup(r.addr);
                }
            }
            bool merged = false;
            for (asn_ledger::note_row& a : agg)
                if (a.day == r.day && a.info == info) {
                    ++a.records;
                    a.hits += r.hits;
                    merged = true;
                    break;
                }
            if (!merged) agg.push_back({r.day, info, 1, r.hits});
        }
        engine.push(r);
    }
    if (!agg.empty()) ledger->note_many(agg.data(), agg.size());
}

void ingest_block(stream_engine& engine, const simd::record_block& block,
                  enrichment* enrich, asn_ledger* ledger, lookup_cache* cache) {
    std::shared_ptr<const asn_db> snap;
    if (enrich) snap = enrich->snapshot();
    const asn_db* db = snap.get();
    const bool memo = cache && db && db->max_length() <= 64;
    if (memo && !cache->matches(db)) cache->reset(db);

    std::vector<asn_ledger::note_row> agg;
    if (ledger) {
        const std::uint64_t* his = block.addrs.hi();
        for (std::size_t i = 0; i < block.size(); ++i) {
            const enrich_info* info = nullptr;
            if (db) {
                if (memo) {
                    const std::uint64_t hi = his[i];
                    lookup_cache::slot& s =
                        cache->slots[(hi * 0x9e3779b97f4a7c15ull) >>
                                     (64 - 8)];  // kSlots == 256
                    if (s.valid && s.hi == hi) {
                        info = s.info;
                    } else {
                        info = db->lookup(block.addrs.at(i));
                        s = {hi, info, true};
                    }
                } else {
                    info = db->lookup(block.addrs.at(i));
                }
            }
            bool merged = false;
            for (asn_ledger::note_row& a : agg)
                if (a.day == block.day[i] && a.info == info) {
                    ++a.records;
                    a.hits += block.hits[i];
                    merged = true;
                    break;
                }
            if (!merged) agg.push_back({block.day[i], info, 1, block.hits[i]});
        }
    }
    engine.push_block(block);
    if (!agg.empty()) ledger->note_many(agg.data(), agg.size());
}

udp_collector::udp_collector(stream_engine& engine, collector_config cfg,
                             enrichment* enrich, asn_ledger* ledger)
    : engine_(engine), cfg_(std::move(cfg)), enrich_(enrich), ledger_(ledger) {
    if (cfg_.rx_batch == 0) cfg_.rx_batch = 1;
    if (cfg_.registry) {
        obs::registry& reg = *cfg_.registry;
        m_.datagrams = reg.get_counter("v6_net_rx_datagrams_total", {},
                                       "Well-formed v6wire datagrams received.");
        m_.records = reg.get_counter("v6_net_rx_records_total", {},
                                     "Records decoded and pushed into the engine.");
        m_.bytes = reg.get_counter("v6_net_rx_bytes_total", {},
                                   "UDP payload bytes received.");
        const char* help = "Datagrams rejected by the wire decoder, by reason.";
        m_.short_header = reg.get_counter("v6_net_rx_rejected_total",
                                          {{"reason", "short_header"}}, help);
        m_.bad_magic = reg.get_counter("v6_net_rx_rejected_total",
                                       {{"reason", "bad_magic"}}, help);
        m_.bad_version = reg.get_counter("v6_net_rx_rejected_total",
                                         {{"reason", "bad_version"}}, help);
        m_.bad_flags = reg.get_counter("v6_net_rx_rejected_total",
                                       {{"reason", "bad_flags"}}, help);
        m_.truncated = reg.get_counter("v6_net_rx_rejected_total",
                                       {{"reason", "truncated"}}, help);
        m_.trailing = reg.get_counter("v6_net_rx_rejected_total",
                                      {{"reason", "trailing"}}, help);
        m_.seq_gaps = reg.get_counter("v6_net_rx_seq_gaps_total", {},
                                      "Datagrams presumed lost (sender sequence gaps).");
    }
}

udp_collector::~udp_collector() { stop(); }

bool udp_collector::start(std::string* error) {
    const auto fail = [&](const std::string& why) {
        if (error) *error = why + ": " + std::strerror(errno);
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        return false;
    };
    fd_ = ::socket(AF_INET6, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return fail("socket");
    int off = 0;
    (void)::setsockopt(fd_, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof off);
    if (cfg_.rcvbuf > 0)
        (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &cfg_.rcvbuf, sizeof cfg_.rcvbuf);
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_port = htons(cfg_.port);
    if (::inet_pton(AF_INET6, cfg_.bind.c_str(), &addr.sin6_addr) != 1) {
        errno = EINVAL;
        return fail("bad bind address \"" + cfg_.bind + "\"");
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        return fail("bind [" + cfg_.bind + "]:" + std::to_string(cfg_.port));
    sockaddr_in6 bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0)
        return fail("getsockname");
    port_ = ntohs(bound.sin6_port);
    stop_.store(false, std::memory_order_release);
    rx_thread_ = std::thread([this] { rx_loop(); });
    running_.store(true, std::memory_order_release);
    return true;
}

void udp_collector::stop() {
    if (rx_thread_.joinable()) {
        stop_.store(true, std::memory_order_release);
        rx_thread_.join();
    }
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    running_.store(false, std::memory_order_release);
}

collector_stats udp_collector::stats() const {
    collector_stats s;
    s.datagrams = a_datagrams_.load(std::memory_order_acquire);
    s.records = a_records_.load(std::memory_order_acquire);
    s.bytes = a_bytes_.load(std::memory_order_acquire);
    s.decode.datagrams = s.datagrams;
    s.decode.records = s.records;
    s.decode.short_header = a_short_.load(std::memory_order_acquire);
    s.decode.bad_magic = a_bad_magic_.load(std::memory_order_acquire);
    s.decode.bad_version = a_bad_version_.load(std::memory_order_acquire);
    s.decode.bad_flags = a_bad_flags_.load(std::memory_order_acquire);
    s.decode.truncated = a_truncated_.load(std::memory_order_acquire);
    s.decode.trailing = a_trailing_.load(std::memory_order_acquire);
    s.decode.seq_gaps = a_seq_gaps_.load(std::memory_order_acquire);
    s.decode.seq_reorder = a_seq_reorder_.load(std::memory_order_acquire);
    return s;
}

void udp_collector::rx_loop() {
    const std::size_t slots = cfg_.rx_batch;
    std::vector<std::vector<std::uint8_t>> buffers(
        slots, std::vector<std::uint8_t>(kWireMaxDatagram));
    std::vector<iovec> iovs(slots);
    std::vector<mmsghdr> msgs(slots);
    for (std::size_t i = 0; i < slots; ++i) {
        iovs[i] = {buffers[i].data(), buffers[i].size()};
        std::memset(&msgs[i], 0, sizeof msgs[i]);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
    }

    wire_decoder decoder;
    simd::record_block batch;
    wire_decode_stats last{};  // previous mirror, for per-burst counter deltas

    while (!stop_.load(std::memory_order_acquire)) {
        const int n = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(slots),
                                 0, nullptr);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
                pollfd pfd{fd_, POLLIN, 0};
                (void)::poll(&pfd, 1, 50);
                continue;
            }
            break;  // unrecoverable socket error; counters stop advancing
        }
        std::uint64_t burst_bytes = 0;
        batch.clear();
        for (int i = 0; i < n; ++i) {
            const std::size_t len = msgs[i].msg_len;
            burst_bytes += len;
            decoder.decode(buffers[static_cast<std::size_t>(i)].data(), len, batch);
        }
        ingest_block(engine_, batch, enrich_, ledger_, &cache_);

        // Mirror the decoder tallies (rx thread owns the decoder; the
        // atomics and obs counters are the cross-thread view).
        const wire_decode_stats& d = decoder.stats();
        a_datagrams_.store(d.datagrams, std::memory_order_release);
        a_records_.store(d.records, std::memory_order_release);
        a_bytes_.fetch_add(burst_bytes, std::memory_order_acq_rel);
        a_short_.store(d.short_header, std::memory_order_release);
        a_bad_magic_.store(d.bad_magic, std::memory_order_release);
        a_bad_version_.store(d.bad_version, std::memory_order_release);
        a_bad_flags_.store(d.bad_flags, std::memory_order_release);
        a_truncated_.store(d.truncated, std::memory_order_release);
        a_trailing_.store(d.trailing, std::memory_order_release);
        a_seq_gaps_.store(d.seq_gaps, std::memory_order_release);
        a_seq_reorder_.store(d.seq_reorder, std::memory_order_release);
        m_.datagrams.inc(d.datagrams - last.datagrams);
        m_.records.inc(d.records - last.records);
        m_.bytes.inc(burst_bytes);
        m_.short_header.inc(d.short_header - last.short_header);
        m_.bad_magic.inc(d.bad_magic - last.bad_magic);
        m_.bad_version.inc(d.bad_version - last.bad_version);
        m_.bad_flags.inc(d.bad_flags - last.bad_flags);
        m_.truncated.inc(d.truncated - last.truncated);
        m_.trailing.inc(d.trailing - last.trailing);
        if (d.seq_gaps >= last.seq_gaps)
            m_.seq_gaps.inc(d.seq_gaps - last.seq_gaps);
        last = d;
    }
}

}  // namespace v6::net
