#include "v6class/analysis/plan_recon.h"

#include <algorithm>
#include <map>

#include "v6class/addrtype/classify.h"

namespace v6 {

void plan_reconstructor::observe_day(const std::vector<address>& addrs) {
    std::unordered_set<std::uint64_t> seen_today;
    for (const address& a : addrs) {
        const auto mac = eui64_mac(a);
        if (!mac) continue;
        raw_track& track = tracks_[mac->to_uint()];
        track.network_ids.insert(a.masked(64).hi());
        if (seen_today.insert(mac->to_uint()).second) ++track.days_seen;
    }
}

std::vector<plan_reconstructor::device_track> plan_reconstructor::device_tracks(
    unsigned min_days) const {
    std::vector<device_track> out;
    for (const auto& [mac_value, raw] : tracks_) {
        if (raw.days_seen < min_days || raw.network_ids.empty()) continue;
        device_track t;
        t.mac = mac_address::from_uint(mac_value);
        t.days_seen = raw.days_seen;
        t.distinct_64s = static_cast<unsigned>(raw.network_ids.size());
        // Longest common prefix over all observed network identifiers.
        auto it = raw.network_ids.begin();
        const address first = address::from_pair(*it, 0);
        unsigned len = 64;
        for (++it; it != raw.network_ids.end(); ++it)
            len = std::min(len,
                           first.common_prefix_length(address::from_pair(*it, 0)));
        t.stable_prefix = prefix{first, len};
        out.push_back(t);
    }
    // Deterministic order for reports and tests.
    std::sort(out.begin(), out.end(), [](const device_track& a, const device_track& b) {
        return a.mac < b.mac;
    });
    return out;
}

std::vector<plan_reconstructor::stable_aggregate>
plan_reconstructor::longest_stable_prefixes(unsigned min_days,
                                            std::uint64_t min_devices) const {
    std::map<prefix, std::uint64_t> counts;
    for (const device_track& t : device_tracks(min_days)) ++counts[t.stable_prefix];
    std::vector<stable_aggregate> out;
    for (const auto& [pfx, devices] : counts)
        if (devices >= min_devices) out.push_back({pfx, devices});
    std::stable_sort(out.begin(), out.end(),
                     [](const stable_aggregate& a, const stable_aggregate& b) {
                         return a.devices > b.devices;
                     });
    return out;
}

std::vector<std::uint64_t> plan_reconstructor::length_histogram(
    unsigned min_days) const {
    std::vector<std::uint64_t> hist(129, 0);
    for (const device_track& t : device_tracks(min_days))
        ++hist[t.stable_prefix.length()];
    return hist;
}

}  // namespace v6
