#include "v6class/analysis/eui64_mobility.h"

#include <unordered_map>
#include <unordered_set>

#include "v6class/addrtype/classify.h"

namespace v6 {

eui64_mobility_report analyze_eui64_mobility(const daily_series& series,
                                             int ref_day, unsigned n,
                                             stability_options options) {
    eui64_mobility_report report;

    // Distinct addresses per IID across the whole window.
    std::unordered_map<std::uint64_t, std::unordered_set<address, address_hash>>
        iid_addresses;
    for (const int d : series.days())
        for (const address& a : series.day(d))
            if (const auto mac = eui64_mac(a))
                iid_addresses[mac->to_uint()].insert(a);

    stability_analyzer an(series, options);
    const stability_split split = an.classify_day(ref_day, n);

    // IIDs that own at least one stable address.
    std::unordered_set<std::uint64_t> stable_iids;
    for (const address& a : split.stable) {
        if (const auto mac = eui64_mac(a)) {
            ++report.stable_eui64_addresses;
            stable_iids.insert(mac->to_uint());
        }
    }

    for (const address& a : split.not_stable) {
        const auto mac = eui64_mac(a);
        if (!mac) continue;
        ++report.unstable_eui64_addresses;
        const auto it = iid_addresses.find(mac->to_uint());
        if (it != iid_addresses.end() && it->second.size() > 1)
            ++report.iid_in_multiple_addresses;
        if (stable_iids.contains(mac->to_uint())) ++report.iid_also_stable;
    }
    return report;
}

}  // namespace v6
