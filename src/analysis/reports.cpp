#include "v6class/analysis/reports.h"

#include <algorithm>
#include <set>

#include "v6class/analysis/format.h"
#include "v6class/spatial/mra.h"

namespace v6 {

table1_column build_table1_column(std::string label,
                                  const std::vector<address>& addrs) {
    table1_column col;
    col.label = std::move(label);
    const culled_addresses cull = cull_transition(addrs);
    col.teredo = cull.teredo.size();
    col.isatap = cull.isatap.size();
    col.six_to_four = cull.six_to_four.size();
    col.other = cull.other.size();

    std::vector<address> p64;
    p64.reserve(cull.other.size());
    for (const address& a : cull.other) p64.push_back(a.masked(64));
    std::sort(p64.begin(), p64.end());
    p64.erase(std::unique(p64.begin(), p64.end()), p64.end());
    col.other_64s = p64.size();
    col.addrs_per_64 =
        col.other_64s ? static_cast<double>(col.other) /
                            static_cast<double>(col.other_64s)
                      : 0.0;

    std::set<mac_address> macs;
    for (const address& a : cull.other) {
        if (const auto mac = eui64_mac(a)) {
            ++col.eui64_not_6to4;
            macs.insert(*mac);
        }
    }
    col.eui64_unique_macs = macs.size();
    return col;
}

std::string render_table1(const std::vector<table1_column>& columns) {
    std::vector<std::string> headers{"Characteristic"};
    for (const auto& c : columns) headers.push_back(c.label);
    text_table table(std::move(headers));

    auto count_pct_row = [&](const std::string& name, auto get) {
        std::vector<std::string> row{name};
        for (const auto& c : columns) {
            const auto v = get(c);
            const double share =
                c.total() ? static_cast<double>(v) / static_cast<double>(c.total())
                          : 0.0;
            row.push_back(format_count(static_cast<double>(v)) + " (" +
                          format_pct(share) + ")");
        }
        table.add_row(std::move(row));
    };
    count_pct_row("Teredo addresses", [](const table1_column& c) { return c.teredo; });
    count_pct_row("ISATAP addresses", [](const table1_column& c) { return c.isatap; });
    count_pct_row("6to4 addresses",
                  [](const table1_column& c) { return c.six_to_four; });
    count_pct_row("Other addresses", [](const table1_column& c) { return c.other; });

    std::vector<std::string> row{"Other /64 prefixes"};
    for (const auto& c : columns)
        row.push_back(format_count(static_cast<double>(c.other_64s)));
    table.add_row(std::move(row));

    row = {"ave. addrs per /64"};
    for (const auto& c : columns) row.push_back(format_fixed(c.addrs_per_64, 2));
    table.add_row(std::move(row));

    row = {"EUI-64 addr (!6to4)"};
    for (const auto& c : columns) {
        const double share =
            c.other ? static_cast<double>(c.eui64_not_6to4) /
                          static_cast<double>(c.total())
                    : 0.0;
        row.push_back(format_count(static_cast<double>(c.eui64_not_6to4)) + " (" +
                      format_pct(share) + ")");
    }
    table.add_row(std::move(row));

    row = {"EUI-64 IIDs (MACs)"};
    for (const auto& c : columns)
        row.push_back(format_count(static_cast<double>(c.eui64_unique_macs)));
    table.add_row(std::move(row));

    return table.to_string();
}

std::string render_table2(const std::vector<stability_column>& columns,
                          const std::string& unit_name) {
    std::vector<std::string> headers{unit_name + " class"};
    for (const auto& c : columns) headers.push_back(c.label);
    text_table table(std::move(headers));

    auto pct_cell = [](std::uint64_t v, std::uint64_t denom) {
        const double share =
            denom ? static_cast<double>(v) / static_cast<double>(denom) : 0.0;
        return format_count(static_cast<double>(v)) + " (" + format_pct(share) + ")";
    };

    std::vector<std::string> row{"3d-stable"};
    for (const auto& c : columns)
        row.push_back(pct_cell(c.stable_3d, c.stable_3d + c.not_stable_3d));
    table.add_row(std::move(row));

    row = {"not 3d-stable"};
    for (const auto& c : columns)
        row.push_back(pct_cell(c.not_stable_3d, c.stable_3d + c.not_stable_3d));
    table.add_row(std::move(row));

    row = {"6m-stable (-6m)"};
    for (const auto& c : columns)
        row.push_back(c.has_6m ? pct_cell(c.stable_6m, c.stable_3d + c.not_stable_3d)
                               : std::string{});
    table.add_row(std::move(row));

    row = {"1y-stable (-1y)"};
    for (const auto& c : columns)
        row.push_back(c.has_1y ? pct_cell(c.stable_1y, c.stable_3d + c.not_stable_3d)
                               : std::string{});
    table.add_row(std::move(row));

    return table.to_string();
}

std::string render_table3(const std::vector<density_row>& rows,
                          const std::string& dataset_name) {
    text_table table({"Density Class", "Dense Prefixes", dataset_name + " Addresses",
                      "Possible Addresses", "Address Density"});
    for (const density_row& r : rows) {
        table.add_row({std::to_string(r.n) + " @ /" + std::to_string(r.p),
                       format_count(static_cast<double>(r.dense_prefix_count)),
                       format_count(static_cast<double>(r.covered_addresses)),
                       format_count(static_cast<double>(r.possible_addresses)),
                       format_fixed(static_cast<double>(r.address_density), 10)});
    }
    return table.to_string();
}

std::map<std::uint32_t, std::vector<address>> group_by_asn(
    const rir_registry& registry, const std::vector<address>& addrs) {
    std::map<std::uint32_t, std::vector<address>> groups;
    for (const address& a : addrs)
        if (const auto route = registry.origin_of(a)) groups[route->asn].push_back(a);
    return groups;
}

std::map<prefix, std::vector<address>> group_by_bgp_prefix(
    const rir_registry& registry, const std::vector<address>& addrs) {
    std::map<prefix, std::vector<address>> groups;
    for (const address& a : addrs)
        if (const auto route = registry.origin_of(a)) groups[route->pfx].push_back(a);
    return groups;
}

std::vector<boxplot_summary> segment_ratio_distribution(
    const std::map<prefix, std::vector<address>>& groups) {
    std::vector<std::vector<double>> samples(8);
    for (const auto& [pfx, addrs] : groups) {
        const mra_series mra = compute_mra(addrs);
        const std::vector<double> ratios = mra.ratios(16);
        for (std::size_t seg = 0; seg < 8; ++seg)
            samples[seg].push_back(ratios[seg]);
    }
    std::vector<boxplot_summary> out;
    out.reserve(8);
    for (auto& s : samples) out.push_back(summarize(std::move(s)));
    return out;
}

std::string render_ccdf(const std::vector<ccdf_point>& ccdf, std::size_t max_points) {
    text_table table({"population >=", "proportion"});
    const std::size_t step =
        ccdf.size() > max_points ? (ccdf.size() + max_points - 1) / max_points : 1;
    for (std::size_t i = 0; i < ccdf.size(); i += step) {
        char prop[32];
        std::snprintf(prop, sizeof prop, "%.6f", ccdf[i].proportion);
        table.add_row({format_count(ccdf[i].value), prop});
    }
    if (!ccdf.empty() && (ccdf.size() - 1) % step != 0) {
        char prop[32];
        std::snprintf(prop, sizeof prop, "%.6f", ccdf.back().proportion);
        table.add_row({format_count(ccdf.back().value), prop});
    }
    return table.to_string();
}

}  // namespace v6
