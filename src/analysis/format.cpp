#include "v6class/analysis/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace v6 {

namespace {

std::string three_sig(double v) {
    char buf[32];
    if (v >= 100)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else if (v >= 10)
        std::snprintf(buf, sizeof buf, "%.1f", v);
    else
        std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

}  // namespace

std::string format_count(double value) {
    const double a = std::fabs(value);
    if (a < 1000) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    struct scale {
        double factor;
        const char* suffix;
    };
    static constexpr scale scales[] = {
        {1e12, "T"}, {1e9, "B"}, {1e6, "M"}, {1e3, "K"}};
    for (const auto& s : scales)
        if (a >= s.factor) return three_sig(value / s.factor) + s.suffix;
    return three_sig(value);
}

std::string format_pct(double fraction) {
    const double pct = fraction * 100.0;
    char buf[32];
    if (pct >= 100.0)
        std::snprintf(buf, sizeof buf, "%.0f%%", pct);
    else if (pct >= 10.0)
        std::snprintf(buf, sizeof buf, "%.1f%%", pct);
    else if (pct >= 1.0)
        std::snprintf(buf, sizeof buf, "%.2f%%", pct);
    else
        std::snprintf(buf, sizeof buf, ".%03.0f%%", pct * 1000.0);
    return buf;
}

std::string format_fixed(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
    if (cells.size() > headers_.size())
        throw std::invalid_argument("text_table: too many cells");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string text_table::to_string() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::string out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) out += "  ";
            if (c == 0) {
                out += row[c];
                out.append(width[c] - row[c].size(), ' ');
            } else {
                out.append(width[c] - row[c].size(), ' ');
                out += row[c];
            }
        }
        out += '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out.append(total > 2 ? total - 2 : 0, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row);
    return out;
}

}  // namespace v6
