#include "v6class/analysis/growth.h"

#include <algorithm>
#include <unordered_set>

namespace v6 {

std::vector<churn_day> churn_analysis(const daily_series& series) {
    std::vector<churn_day> out;
    const std::vector<int> days = series.days();
    if (days.size() < 2) return out;

    std::unordered_set<address, address_hash> seen(series.day(days[0]).begin(),
                                                   series.day(days[0]).end());
    for (std::size_t i = 1; i < days.size(); ++i) {
        const std::vector<address>& today = series.day(days[i]);
        const std::vector<address>& yesterday = series.day(days[i - 1]);
        churn_day row;
        row.day = days[i];
        row.active = today.size();
        for (const address& a : today) {
            const bool was_yesterday =
                std::binary_search(yesterday.begin(), yesterday.end(), a);
            const bool ever = seen.contains(a);
            if (was_yesterday)
                ++row.returning;
            else if (ever)
                ++row.revenant;
            else
                ++row.fresh;
        }
        seen.insert(today.begin(), today.end());
        out.push_back(row);
    }
    return out;
}

growth_report epoch_growth(const daily_series& series, int early_day,
                           int late_day) {
    growth_report report;
    const std::vector<address>& early = series.day(early_day);
    const std::vector<address>& late = series.day(late_day);
    report.early_active = early.size();
    report.late_active = late.size();
    report.growth_factor =
        early.empty() ? 0.0
                      : static_cast<double>(late.size()) /
                            static_cast<double>(early.size());
    report.common = intersect_sorted(early, late).size();
    report.survivor_share =
        early.empty() ? 0.0
                      : static_cast<double>(report.common) /
                            static_cast<double>(early.size());
    return report;
}

}  // namespace v6
