#include "v6class/analysis/network_profile.h"

#include <algorithm>
#include <map>

#include "v6class/addrtype/classify.h"
#include "v6class/temporal/stability.h"
#include "v6class/analysis/plan_recon.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {

std::string_view to_string(practice_guess g) noexcept {
    switch (g) {
        case practice_guess::dynamic_64_pool: return "dynamic-64-pool";
        case practice_guess::static_per_subscriber: return "static-per-subscriber";
        case practice_guess::shared_dense: return "shared-dense";
        case practice_guess::privacy_sparse: return "privacy-sparse";
        case practice_guess::unknown: return "unknown";
    }
    return "?";
}

namespace {

std::vector<address> mask_unique(const std::vector<address>& addrs, unsigned len) {
    std::vector<address> out;
    out.reserve(addrs.size());
    for (const address& a : addrs) out.push_back(a.masked(len));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

practice_guess infer(const network_profile& p) {
    // Order matters: density is the strongest signal; then the device
    // beacons (a single MAC roaming across many /64s is conclusive for
    // dynamic assignment, however few beacons exist); then subnet
    // stability separates static plans, with the content mix splitting
    // privacy-addressed households from manually numbered ones.
    if (p.dense_112_share > 0.5 && p.addrs_per_64 > 8)
        return practice_guess::shared_dense;
    if (p.beacon_max_64s >= 8 && p.beacon_modal_length <= 48)
        return practice_guess::dynamic_64_pool;
    if (p.stable_64_share_3d > 0.5) {
        return p.pseudorandom_share > 0.5 ? practice_guess::privacy_sparse
                                          : practice_guess::static_per_subscriber;
    }
    return practice_guess::unknown;
}

double estimate_subscribers(const network_profile& p) {
    switch (p.guess) {
        case practice_guess::static_per_subscriber:
        case practice_guess::privacy_sparse:
            // One stable /64 per subscriber connection.
            return static_cast<double>(p.daily_64s);
        case practice_guess::dynamic_64_pool:
            // Each active subscriber holds ~1 slot at a time; daily /64s
            // approximate concurrent actives, but the pool inflates the
            // window count — use the daily figure, not the window one.
            return static_cast<double>(p.daily_64s);
        case practice_guess::shared_dense:
            // Count hosts, not subnets.
            return static_cast<double>(p.daily_addresses);
        case practice_guess::unknown: return 0.0;
    }
    return 0.0;
}

}  // namespace

std::vector<network_profile> profile_networks(const rir_registry& registry,
                                              const daily_series& series,
                                              int ref_day) {
    // Partition the whole window's addresses by ASN once.
    std::map<std::uint32_t, std::vector<address>> window_by_asn;
    const std::vector<int> days = series.days();
    for (const int d : days)
        for (const address& a : series.day(d))
            if (const auto route = registry.origin_of(a))
                window_by_asn[route->asn].push_back(a);

    std::vector<network_profile> out;
    for (auto& [asn, window_addrs] : window_by_asn) {
        std::sort(window_addrs.begin(), window_addrs.end());
        window_addrs.erase(std::unique(window_addrs.begin(), window_addrs.end()),
                           window_addrs.end());

        network_profile p;
        p.asn = asn;
        p.window_addresses = window_addrs.size();
        p.window_64s = mask_unique(window_addrs, 64).size();

        // Per-ASN slice of the series for the temporal fingerprints.
        daily_series slice;
        for (const int d : days) {
            std::vector<address> mine;
            for (const address& a : series.day(d))
                if (const auto route = registry.origin_of(a); route && route->asn == asn)
                    mine.push_back(a);
            slice.set_day(d, std::move(mine));
        }
        const std::vector<address>& today = slice.day(ref_day);
        if (today.empty()) continue;
        p.daily_addresses = today.size();
        const auto today_64s = mask_unique(today, 64);
        p.daily_64s = today_64s.size();
        p.addrs_per_64 = p.daily_64s ? static_cast<double>(p.daily_addresses) /
                                           static_cast<double>(p.daily_64s)
                                     : 0.0;
        p.turnover_64 = p.daily_64s ? static_cast<double>(p.window_64s) /
                                          static_cast<double>(p.daily_64s)
                                    : 0.0;

        std::uint64_t pseudo = 0, eui = 0, low = 0;
        for (const address& a : today) {
            switch (classify(a).iid) {
                case iid_kind::pseudorandom: ++pseudo; break;
                case iid_kind::eui64: ++eui; break;
                case iid_kind::low_value: ++low; break;
                default: break;
            }
        }
        p.pseudorandom_share =
            static_cast<double>(pseudo) / static_cast<double>(today.size());
        p.eui64_share = static_cast<double>(eui) / static_cast<double>(today.size());
        p.low_iid_share = static_cast<double>(low) / static_cast<double>(today.size());

        stability_analyzer an(slice);
        const stability_split split = an.classify_day(ref_day, 3);
        p.stable_share_3d =
            static_cast<double>(split.stable.size()) /
            static_cast<double>(split.stable.size() + split.not_stable.size());
        const daily_series slice64 = slice.project(64);
        stability_analyzer an64(slice64);
        const stability_split split64 = an64.classify_day(ref_day, 3);
        const std::uint64_t total64 = split64.stable.size() + split64.not_stable.size();
        p.stable_64_share_3d =
            total64 ? static_cast<double>(split64.stable.size()) /
                          static_cast<double>(total64)
                    : 0.0;

        plan_reconstructor recon;
        for (const int d : days) recon.observe_day(slice.day(d));
        const auto tracks = recon.device_tracks(2);
        p.beacon_devices = tracks.size();
        unsigned modal = 0;
        std::vector<std::uint64_t> len_hist(129, 0);
        for (const auto& t : tracks) {
            p.beacon_max_64s = std::max<std::uint64_t>(p.beacon_max_64s,
                                                       t.distinct_64s);
            ++len_hist[t.stable_prefix.length()];
            if (len_hist[t.stable_prefix.length()] > len_hist[modal])
                modal = t.stable_prefix.length();
        }
        p.beacon_modal_length = modal;

        radix_tree tree;
        for (const address& a : today) tree.add(a);
        std::uint64_t dense_covered = 0;
        for (const dense_prefix& d : tree.dense_prefixes_at(2, 112))
            dense_covered += d.observed;
        p.dense_112_share =
            static_cast<double>(dense_covered) / static_cast<double>(today.size());

        p.guess = infer(p);
        p.subscriber_estimate = estimate_subscribers(p);
        p.naive_64_estimate = static_cast<double>(p.window_64s);
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace v6
