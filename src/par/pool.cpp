#include "v6class/par/pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "v6class/obs/metrics.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/trace.h"

namespace v6::par {

namespace {

std::atomic<unsigned> g_default_threads{0};  // 0 = hardware concurrency

// Set while a pool worker (or an inline nested run) is executing tasks;
// nested run_indexed calls detect it and run inline, so a parallel
// driver can call internally-parallel library code without deadlock.
thread_local bool tl_in_task = false;

// pool_stats inputs, kept as plain atomics (not registry handles) so
// stats() works even for callers that never touch the obs registry.
std::atomic<unsigned> g_workers{0};
std::atomic<unsigned> g_active{0};
std::atomic<std::uint64_t> g_busy_ns{0};

obs::counter& tasks_total() {
    static obs::counter c = obs::registry::global().get_counter(
        "v6_par_tasks_total", {},
        "Tasks executed through the v6::par work pool");
    return c;
}

obs::gauge& workers_gauge() {
    static obs::gauge g = obs::registry::global().get_gauge(
        "v6_par_pool_workers", {},
        "Persistent worker threads spawned by the v6::par pool");
    return g;
}

obs::gauge& active_gauge() {
    static obs::gauge g = obs::registry::global().get_gauge(
        "v6_par_active_seats", {},
        "Seats currently executing pool tasks (caller threads included)");
    return g;
}

std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// One fanned-out task set. Heap-held via shared_ptr so a worker that
/// wakes late and still holds a reference cannot dangle after the caller
/// returned (the caller only waits for *tasks* to finish, not for every
/// worker to drop its reference).
struct job {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    unsigned width = 1;                     // max participants, caller included
    std::atomic<std::size_t> cursor{0};     // next index to claim
    std::atomic<std::size_t> finished{0};   // tasks completed
    std::atomic<unsigned> participants{1};  // caller holds seat 0
    std::mutex mu;                          // guards error, pairs with done_cv
    std::condition_variable done_cv;
    std::exception_ptr error;
    // Trace context captured at submit: workers adopt it so their task
    // spans parent to the submitting span, and the gap from submit to a
    // participant's first claim is recorded as a queue_wait span.
    obs::span_context submit_ctx{};
    std::uint64_t submit_ns = 0;

    // Claims and runs tasks until the cursor runs out. Returns after
    // contributing; does not wait for other participants.
    void work() {
        tl_in_task = true;
        g_active.fetch_add(1, std::memory_order_relaxed);
        active_gauge().add(1);
        const std::uint64_t entered = steady_ns();
        bool first_claim = true;
        for (;;) {
            const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) break;
            if (first_claim && submit_ns != 0) {
                first_claim = false;
                // One queue_wait span per participant: submit → first
                // claim on this thread.
                const std::uint64_t now = obs::tracer::now_ns();
                obs::tracer::emit(
                    "par.queue_wait", obs::span_kind::queue_wait,
                    {submit_ctx.trace_id, obs::tracer::next_id()},
                    submit_ctx.span_id, submit_ns,
                    now > submit_ns ? now - submit_ns : 0);
            }
            {
                obs::context_scope adopt(submit_ctx);
                obs::span task_span("par.task");
                obs::pmu_scope task_pmu("par.task");
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mu);
                    if (!error) error = std::current_exception();
                }
            }
            tasks_total().inc();
            const std::size_t done = finished.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (done == n) {
                std::lock_guard<std::mutex> lock(mu);  // order before notify
                done_cv.notify_all();
            }
        }
        g_busy_ns.fetch_add(steady_ns() - entered, std::memory_order_relaxed);
        active_gauge().add(-1);
        g_active.fetch_sub(1, std::memory_order_relaxed);
        tl_in_task = false;
    }
};

/// Persistent worker threads. Workers sleep on a condition variable and
/// wake per published job; the pool grows lazily to the widest request
/// seen (so --threads above the core count still exercises real
/// concurrency, e.g. under TSan).
class pool {
public:
    static pool& instance() {
        static pool p;
        return p;
    }

    void run(const std::shared_ptr<job>& j) {
        ensure_workers(j->width - 1);
        {
            std::lock_guard<std::mutex> lock(mu_);
            current_ = j;
            ++generation_;
        }
        cv_.notify_all();
        j->work();  // the caller is participant 0
        std::unique_lock<std::mutex> lock(j->mu);
        j->done_cv.wait(lock, [&] {
            return j->finished.load(std::memory_order_acquire) >= j->n;
        });
        {
            std::lock_guard<std::mutex> pl(mu_);
            if (current_ == j) current_.reset();
        }
    }

private:
    pool() = default;
    ~pool() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    void ensure_workers(unsigned want) {
        static constexpr unsigned kmax_workers = 64;
        want = std::min(want, kmax_workers);
        std::lock_guard<std::mutex> lock(mu_);
        while (workers_.size() < want) {
            const unsigned index = static_cast<unsigned>(workers_.size());
            workers_.emplace_back([this, index] { worker_loop(index); });
        }
        g_workers.store(static_cast<unsigned>(workers_.size()),
                        std::memory_order_relaxed);
        workers_gauge().set(static_cast<std::int64_t>(workers_.size()));
    }

    void worker_loop(unsigned index) {
        const std::string name = "par-worker-" + std::to_string(index);
        obs::tracer::set_thread_name(name);
        obs::profiler::register_thread(name);
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<job> j;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
                if (stop_) return;
                seen = generation_;
                j = current_;
            }
            if (!j) continue;
            // Seats bound concurrency to the requested width without
            // tracking which threads work: late wakers find no seat.
            unsigned seat = j->participants.load(std::memory_order_relaxed);
            while (seat < j->width &&
                   !j->participants.compare_exchange_weak(
                       seat, seat + 1, std::memory_order_relaxed)) {
            }
            if (seat < j->width) j->work();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::shared_ptr<job> current_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace

unsigned default_threads() noexcept {
    const unsigned v = g_default_threads.load(std::memory_order_relaxed);
    if (v > 0) return v;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void set_default_threads(unsigned n) noexcept {
    g_default_threads.store(n, std::memory_order_relaxed);
}

pool_stats stats() noexcept {
    pool_stats s;
    s.workers = g_workers.load(std::memory_order_relaxed);
    s.active = g_active.load(std::memory_order_relaxed);
    s.busy_ns = g_busy_ns.load(std::memory_order_relaxed);
    return s;
}

void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads) {
    if (n == 0) return;
    if (threads == 0) threads = default_threads();

    // Serial path: one thread requested, a single task, or we are already
    // inside a pool task (nested fan-out runs inline — workers must never
    // block waiting on other workers). Inline tasks run under the
    // caller's current span, so no context propagation is needed.
    if (threads <= 1 || n == 1 || tl_in_task) {
        const bool outer = tl_in_task;
        tl_in_task = true;
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error) error = std::current_exception();
            }
            tasks_total().inc();
        }
        tl_in_task = outer;
        if (error) std::rethrow_exception(error);
        return;
    }

    auto j = std::make_shared<job>();
    j->fn = fn;
    j->n = n;
    j->width = static_cast<unsigned>(std::min<std::size_t>(threads, n));
    if (obs::tracer::enabled()) {
        j->submit_ctx = obs::tracer::current();
        j->submit_ns = obs::tracer::now_ns();
    }
    pool::instance().run(j);
    if (j->error) std::rethrow_exception(j->error);
}

}  // namespace v6::par
