// world.h — the simulated IPv6 Internet behind the CDN's vantage point.
//
// A `world` owns a registry of BGP allocations and a composition of
// network models tuned so the global mix matches the paper's Section 4
// observations: two US mobile carriers, a European, an American and a
// Japanese ISP dominating (the top 5 ASNs held 85% of active /64s),
// 6to4 still common but declining, Teredo/ISATAP vestigial, and a long
// Zipf tail of smaller operators across all five RIR regions.
//
// Day indexing matches the paper's study: day 0 is March 17 2014,
// day 184 is September 17 2014, day 365 is March 17 2015.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "v6class/cdnsim/log.h"
#include "v6class/netgen/models.h"
#include "v6class/netgen/rir_registry.h"
#include "v6class/temporal/daily_series.h"

namespace v6 {

/// Epoch day indices of the paper's three measurement points.
inline constexpr int kMar2014 = 0;
inline constexpr int kSep2014 = 184;
inline constexpr int kMar2015 = 365;

/// Composition knobs. Subscriber counts are per-model bases at day 0 and
/// all scale with `scale`; the defaults target roughly 50-100K active
/// addresses per simulated day, enough for every experiment's shape while
/// keeping bench runtimes in seconds.
struct world_config {
    std::uint64_t seed = 42;
    double scale = 1.0;
    /// Long-tail operator count (distinct ASNs beyond the named models).
    unsigned tail_isps = 56;
    /// When non-zero, each record is attributed to the next day's log
    /// with this probability — the paper's log-processing timestamp slew
    /// of "as much as a day".
    double slew_probability = 0.0;
};

/// The simulated Internet: models + registry + log generation.
class world {
public:
    explicit world(world_config cfg = {});

    world(const world&) = delete;
    world& operator=(const world&) = delete;

    const world_config& config() const noexcept { return cfg_; }
    const rir_registry& registry() const noexcept { return registry_; }
    const std::vector<std::unique_ptr<network_model>>& models() const noexcept {
        return models_;
    }

    /// The named flagship models (also present in models()).
    const us_mobile_carrier& mobile1() const noexcept { return *mobile1_; }
    const us_mobile_carrier& mobile2() const noexcept { return *mobile2_; }
    const eu_isp& europe() const noexcept { return *eu_; }
    const jp_isp& japan() const noexcept { return *jp_; }
    const us_university& university() const noexcept { return *univ_; }
    const jp_telco& telco() const noexcept { return *telco_; }
    const eu_university_dept& department() const noexcept { return *dept_; }

    /// The aggregated log for one (processed) day: unique addresses with
    /// summed hit counts, sorted by address. Applies timestamp slew when
    /// configured.
    daily_log day_log(int day) const;

    /// Only the distinct active addresses for a day (sorted).
    std::vector<address> active_addresses(int day) const;

    /// Builds a daily series over an inclusive day range.
    daily_series series(int first_day, int last_day) const;

private:
    void raw_day(int day, std::vector<observation>& out) const;

    world_config cfg_;
    rir_registry registry_;
    std::vector<std::unique_ptr<network_model>> models_;
    const us_mobile_carrier* mobile1_ = nullptr;
    const us_mobile_carrier* mobile2_ = nullptr;
    const eu_isp* eu_ = nullptr;
    const jp_isp* jp_ = nullptr;
    const us_university* univ_ = nullptr;
    const jp_telco* telco_ = nullptr;
    const eu_university_dept* dept_ = nullptr;
};

}  // namespace v6
