// log.h — aggregated CDN activity logs (the paper's empirical data
// format, Section 4.1: hit counts per client address per day).
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/addrtype/classify.h"
#include "v6class/netgen/model.h"

namespace v6 {

/// One day's aggregated log: unique client addresses with summed hit
/// counts, sorted by address.
struct daily_log {
    int day = 0;
    std::vector<observation> records;

    /// Distinct addresses only.
    std::vector<address> addresses() const;

    /// Total hits across all records.
    std::uint64_t total_hits() const noexcept;
};

/// Merges raw observations (possibly with repeated addresses) into the
/// aggregated, address-sorted form.
daily_log aggregate_log(int day, std::vector<observation> raw);

/// The paper's Table 1 partition of a day's (or week's) distinct
/// addresses by transition mechanism.
struct culled_addresses {
    std::vector<address> teredo;
    std::vector<address> isatap;
    std::vector<address> six_to_four;
    std::vector<address> other;  ///< native transport: classifier input
};

/// Splits distinct addresses by transition mechanism (Section 4.1's
/// culling step). Input need not be sorted; outputs are sorted.
culled_addresses cull_transition(const std::vector<address>& addrs);

}  // namespace v6
