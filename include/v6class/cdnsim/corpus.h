// corpus.h — on-disk corpora of daily aggregated logs.
//
// The interchange format is the paper's aggregated-log shape, one file
// per day of "address hit-count" lines (see ip/io.h). A corpus directory
// holds day_<index>.log files plus nothing else magic — the files are
// greppable, diffable, and consumable by the command-line tools.
#pragma once

#include <filesystem>
#include <string>

#include "v6class/cdnsim/log.h"
#include "v6class/temporal/daily_series.h"

namespace v6 {

class world;

/// File name for one day's log: "day_<index>.log".
std::string corpus_file_name(int day);

/// Writes `log` to dir/day_<day>.log (creating the directory if needed).
/// Throws std::runtime_error on I/O failure.
void write_log_file(const std::filesystem::path& dir, const daily_log& log);

/// Simulates and writes days [first, last] of `w` into `dir`. Returns
/// the number of files written.
int write_corpus(const world& w, int first_day, int last_day,
                 const std::filesystem::path& dir);

/// Reads one day file back into an aggregated log. Malformed lines are
/// skipped (counted in the report embedded in the exception-free API:
/// use read_report via ip/io.h for strict accounting). Throws
/// std::runtime_error when the file cannot be opened.
daily_log read_log_file(const std::filesystem::path& file, int day);

/// Loads every day_<n>.log under `dir` into a daily series (addresses
/// only; hit counts are dropped, as the temporal analyses need activity,
/// not volume).
daily_series read_corpus(const std::filesystem::path& dir);

}  // namespace v6
