// reverse_zone.h — synthetic ip6.arpa reverse DNS (Section 6.2.3).
//
// The paper evaluates dense-prefix discovery by issuing PTR queries for
// every possible address of the 3@/120-dense prefixes, harvesting 47K
// more names than querying only the active client addresses — because
// operators provision PTR records for whole provisioning ranges (DHCPv6
// pools, statically numbered CPE, router links), not just the hosts that
// happen to be active. This module reproduces that: zones are populated
// from provisioning ranges, and a scan driver counts the names each
// query strategy recovers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "v6class/ip/address.h"

namespace v6 {

class world;
class router_topology;

/// The DNS label form of an address under ip6.arpa: 32 reversed nybbles,
/// e.g. "1.0.0.0....8.b.d.0.1.0.0.2.ip6.arpa".
std::string ip6_arpa_name(const address& a);

/// A reverse zone: address -> PTR target name.
class reverse_zone {
public:
    /// Adds (or replaces) the PTR record for `a`.
    void add(const address& a, std::string name);

    /// The PTR target for `a`, or nullopt (NXDOMAIN).
    std::optional<std::string_view> query(const address& a) const noexcept;

    std::size_t size() const noexcept { return records_.size(); }

    /// Result of querying a list of candidate addresses.
    struct scan_result {
        std::uint64_t queries = 0;
        std::uint64_t names_found = 0;
        std::vector<address> named;  ///< the addresses that had records
    };

    /// Queries every candidate (duplicates are queried once).
    scan_result scan(std::vector<address> candidates) const;

    /// Visits every record (unspecified order).
    void for_each(
        const std::function<void(const address&, std::string_view)>& fn) const {
        for (const auto& [addr, name] : records_) fn(addr, name);
    }

private:
    std::unordered_map<address, std::string, address_hash> records_;
};

/// Writes the zone as "name. PTR target." master-file-style lines in
/// address order — greppable, diffable, loadable by import_zone_file.
void export_zone_file(const reverse_zone& zone, std::ostream& out);

/// Reads lines written by export_zone_file back into a zone. Returns the
/// number of records loaded; malformed lines are skipped.
std::size_t import_zone_file(std::istream& in, reverse_zone& zone);

/// Populates a zone with the world's provisioned names: every router
/// interface (with hierarchical, location-bearing labels), the Japanese
/// telco's full statically-numbered CPE ranges, and the university
/// department's whole DHCPv6 lease range ("dhcpv6-N"). `topology` may be
/// null to omit the router plant.
reverse_zone build_world_zone(const world& w, const router_topology* topology);

}  // namespace v6
