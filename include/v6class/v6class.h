// v6class.h — umbrella header for libv6class.
//
// Pulls in the whole public API. Fine for applications and examples;
// library code should include the specific headers it uses.
#pragma once

// Address substrate.
#include "v6class/ip/address.h"
#include "v6class/ip/arithmetic.h"
#include "v6class/ip/io.h"
#include "v6class/ip/ipv4.h"
#include "v6class/ip/mac.h"
#include "v6class/ip/prefix.h"

// Content classification.
#include "v6class/addrtype/classify.h"
#include "v6class/addrtype/malone.h"

// Tries and aggregation.
#include "v6class/trie/aguri_profiler.h"
#include "v6class/trie/prefix_map.h"
#include "v6class/trie/radix_tree.h"

// Temporal classification.
#include "v6class/temporal/daily_series.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"

// Streaming ingest.
#include "v6class/stream/bounded_queue.h"
#include "v6class/stream/engine.h"
#include "v6class/stream/record.h"
#include "v6class/stream/shard.h"

// Observability (metrics registry, phase timers, /metrics endpoint).
#include "v6class/obs/http.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/timer.h"

// Spatial classification.
#include "v6class/spatial/boxplot.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/gnuplot.h"
#include "v6class/spatial/mra.h"
#include "v6class/spatial/mra_compare.h"
#include "v6class/spatial/mra_plot.h"
#include "v6class/spatial/population.h"
#include "v6class/spatial/spatial_class.h"

// Synthetic substrate (simulation of the paper's proprietary datasets).
#include "v6class/cdnsim/corpus.h"
#include "v6class/cdnsim/log.h"
#include "v6class/cdnsim/world.h"
#include "v6class/dnssim/reverse_zone.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/model.h"
#include "v6class/netgen/models.h"
#include "v6class/netgen/rir_registry.h"
#include "v6class/netgen/rng.h"
#include "v6class/routersim/scan.h"
#include "v6class/routersim/targets.h"
#include "v6class/routersim/topology.h"

// Analysis and reporting.
#include "v6class/analysis/eui64_mobility.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/network_profile.h"
#include "v6class/analysis/plan_recon.h"
#include "v6class/analysis/reports.h"
