#pragma once

// Batch kernels over address_block lanes, with runtime dispatch.
//
// Every kernel has (at least) two implementations: a portable SWAR/scalar
// one and an AVX2 one compiled into its own translation unit with -mavx2.
// The two are required to be BIT-IDENTICAL for every input — the scalar
// path is not an approximation, it is the reference.  This is what makes
// the dispatch decision invisible to the rest of the system: a day report
// produced on a machine without AVX2 (or with V6CLASS_FORCE_SCALAR=1) is
// byte-for-byte the report produced on one with it.
//
// Dispatch protocol:
//   1. detect_level()  — CPUID probe, no environment consulted.
//   2. resolve_level() — pure function of (env override, detected level);
//                        unit-testable without touching the process env.
//   3. active_level()  — resolve_level(getenv("V6CLASS_FORCE_SCALAR"),
//                        detect_level()), computed once and cached.
//
// Callers normally use the convenience wrappers (parse_batch & friends)
// which go through active_table().  Tests compare table_for(level::scalar)
// against table_for(level::avx2) directly in one process.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "v6class/simd/address_block.h"

namespace v6::simd {

enum class level : std::uint8_t {
    scalar = 0,  ///< portable SWAR/scalar fallback (always available)
    avx2 = 2,    ///< AVX2 lanes, 4 addresses per vector
};

/// CPUID-only probe of the best level this CPU supports.
level detect_level() noexcept;

/// Pure dispatch decision: `force_scalar_env` is the value of the
/// V6CLASS_FORCE_SCALAR environment variable (nullptr when unset; any
/// non-empty value other than "0" forces the scalar table).
level resolve_level(const char* force_scalar_env, level detected) noexcept;

/// The level chosen for this process (cached after the first call).
level active_level() noexcept;

std::string_view level_name(level l) noexcept;

/// Function-pointer table for one dispatch level.
struct kernel_table {
    // Parse n texts into out (out ends with size n; failed lanes are
    // zeroed).  ok[i] is 1 on success, 0 on failure.  Returns the number
    // of successful parses.  Accepts everything address::parse accepts —
    // compressed `::`, embedded dotted-quads — and nothing more.
    std::size_t (*parse)(const std::string_view* texts, std::size_t n,
                         address_block& out, std::uint8_t* ok);

    // RFC 5952 text for every lane, written into one flat buffer.  The
    // caller provides at least 46 bytes per lane; offsets[i]/len via
    // offsets[i+1] style is not used — instead lane i occupies
    // buf + 46*i and lens[i] holds its length.  Output is byte-identical
    // to address::to_string().
    void (*format)(const address_block& in, char* buf, std::uint8_t* lens);

    // classification per lane, encoded as the underlying enum values of
    // transition_kind / address_scope / iid_kind (see addrtype/classify.h).
    void (*classify)(const address_block& in, std::uint8_t* transition,
                     std::uint8_t* scope, std::uint8_t* iid);

    // malone_label enum value per lane (see addrtype/malone.h).
    void (*malone)(const address_block& in, std::uint8_t* labels);

    // Common prefix length of a[i], b[i] per lane (0..128), identical to
    // common_prefix_length().
    void (*common_prefix_len)(const address_block& a, const address_block& b,
                              std::uint8_t* out);

    // In-place a[i] = a[i] masked to its leading `len` bits, identical to
    // address::masked(len).
    void (*mask)(address_block& block, unsigned len);

    // In-place ascending sort of the block (duplicates kept), radix-
    // partitioned on the top hi-word byte.  Order matches std::sort on
    // ip addresses (byte-lexicographic == (hi, lo) numeric).
    void (*sort)(address_block& block);

    // sort + duplicate removal in place.
    void (*sort_unique)(address_block& block);
};

/// Table for an explicit level.  Requesting a level the CPU cannot run
/// returns the scalar table.
const kernel_table& table_for(level l) noexcept;

/// Table for active_level().
const kernel_table& active_table() noexcept;

// ---- convenience wrappers over active_table() ----

inline std::size_t parse_batch(const std::string_view* texts, std::size_t n,
                               address_block& out, std::uint8_t* ok) {
    return active_table().parse(texts, n, out, ok);
}

/// Bytes per lane the format_batch caller must provide.
inline constexpr std::size_t kFormatStride = 46;

inline void format_batch(const address_block& in, char* buf,
                         std::uint8_t* lens) {
    active_table().format(in, buf, lens);
}

inline void classify_batch(const address_block& in, std::uint8_t* transition,
                           std::uint8_t* scope, std::uint8_t* iid) {
    active_table().classify(in, transition, scope, iid);
}

inline void malone_batch(const address_block& in, std::uint8_t* labels) {
    active_table().malone(in, labels);
}

inline void common_prefix_len_batch(const address_block& a,
                                    const address_block& b,
                                    std::uint8_t* out) {
    active_table().common_prefix_len(a, b, out);
}

inline void mask_batch(address_block& block, unsigned len) {
    active_table().mask(block, len);
}

inline void sort_block(address_block& block) { active_table().sort(block); }

inline void sort_unique_block(address_block& block) {
    active_table().sort_unique(block);
}

}  // namespace v6::simd
