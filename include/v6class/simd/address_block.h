#pragma once

// Structure-of-arrays address storage for the batch (SIMD) substrate.
//
// An address_block holds up to `capacity()` IPv6 addresses as two
// contiguous u64 lane arrays: hi (bytes 0..7 of the address, host-order)
// and lo (bytes 8..15, host-order).  This matches address::hi()/lo(),
// so (hi, lo) pairs compare in the same order as the byte-lexicographic
// address ordering and round-trip through address::from_pair().
//
// Blocks are the unit of work for the kernels in v6class/simd/kernels.h:
// contiguous lanes let the AVX2 paths load 4 addresses per vector and keep
// the scalar fallback cache-friendly.

#include <cstdint>
#include <cstring>
#include <vector>

#include "v6class/ip/address.h"

namespace v6::simd {

// Load 8 network-order bytes as a host-order u64 (big-endian read).
inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    v = __builtin_bswap64(v);
#endif
    return v;
}

// Store a host-order u64 as 8 network-order bytes.
inline void store_be64(std::uint64_t v, std::uint8_t* p) noexcept {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    v = __builtin_bswap64(v);
#endif
    std::memcpy(p, &v, 8);
}

class address_block {
public:
    static constexpr std::size_t kDefaultCapacity = 1024;

    explicit address_block(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity) {
        hi_.reserve(capacity_);
        lo_.reserve(capacity_);
    }

    std::size_t size() const noexcept { return hi_.size(); }
    std::size_t capacity() const noexcept { return capacity_; }
    bool empty() const noexcept { return hi_.empty(); }
    bool full() const noexcept { return hi_.size() >= capacity_; }
    void clear() noexcept {
        hi_.clear();
        lo_.clear();
    }

    // Grow the logical size without initialising lanes; kernels that write
    // every lane (e.g. parse_batch) use this to avoid double writes.
    void resize(std::size_t n) {
        if (n > capacity_) capacity_ = n;
        hi_.resize(n);
        lo_.resize(n);
    }

    void reserve(std::size_t n) {
        if (n > capacity_) capacity_ = n;
        hi_.reserve(n);
        lo_.reserve(n);
    }

    void push_back(std::uint64_t hi, std::uint64_t lo) {
        hi_.push_back(hi);
        lo_.push_back(lo);
    }
    void push_back(const address& a) { push_back(a.hi(), a.lo()); }

    std::uint64_t* hi() noexcept { return hi_.data(); }
    std::uint64_t* lo() noexcept { return lo_.data(); }
    const std::uint64_t* hi() const noexcept { return hi_.data(); }
    const std::uint64_t* lo() const noexcept { return lo_.data(); }
    std::uint64_t hi_at(std::size_t i) const noexcept { return hi_[i]; }
    std::uint64_t lo_at(std::size_t i) const noexcept { return lo_[i]; }

    address at(std::size_t i) const noexcept {
        return address::from_pair(hi_[i], lo_[i]);
    }

    void assign(const std::vector<address>& addrs) {
        resize(addrs.size());
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            hi_[i] = addrs[i].hi();
            lo_[i] = addrs[i].lo();
        }
    }

    void append_to(std::vector<address>& out) const {
        out.reserve(out.size() + size());
        for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
    }

    std::vector<address> to_vector() const {
        std::vector<address> out;
        append_to(out);
        return out;
    }

private:
    std::size_t capacity_;
    std::vector<std::uint64_t> hi_;
    std::vector<std::uint64_t> lo_;
};

// An address_block plus the per-record wire payload (observation day and
// hit count).  The wire decoder fills one of these per datagram; the
// stream engine consumes it in a single lock acquisition.
struct record_block {
    address_block addrs;
    std::vector<std::int32_t> day;
    std::vector<std::uint64_t> hits;

    explicit record_block(std::size_t capacity = address_block::kDefaultCapacity)
        : addrs(capacity) {
        day.reserve(capacity);
        hits.reserve(capacity);
    }

    std::size_t size() const noexcept { return addrs.size(); }
    bool empty() const noexcept { return addrs.empty(); }
    void clear() noexcept {
        addrs.clear();
        day.clear();
        hits.clear();
    }

    void reserve(std::size_t n) {
        addrs.reserve(n);
        day.reserve(n);
        hits.reserve(n);
    }

    void push_back(std::uint64_t hi, std::uint64_t lo, std::int32_t d,
                   std::uint64_t h) {
        addrs.push_back(hi, lo);
        day.push_back(d);
        hits.push_back(h);
    }
};

}  // namespace v6::simd
