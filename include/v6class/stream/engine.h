// engine.h — the always-on streaming ingest engine (the "ongoing basis"
// deployment of Section 5.1).
//
// Architecture: records pushed into the engine are staged per shard
// (hash of the address), batched, and handed to one bounded MPSC queue
// per shard; a worker thread per shard drains its queue and stages the
// open day's records. When the pusher observes a day boundary it
// broadcasts a seal marker behind the last batch of the finished day.
// A single roll thread applies each seal across all shards behind an
// exclusive state lock — the only writer of sealed state — advances the
// epoch, releases the workers, and then *asynchronously* recomputes the
// day's report (windowed nd-stable split, n@/p density table) under a
// shared lock while ingest of the next day proceeds.
//
// Consistency model: "epoch" is the last day sealed across every shard.
// Queries take the state lock in shared mode and therefore always see
// a whole number of days — never a half-rolled one. Per-address answers
// (distinct counts, spectra, stability) merge exactly across shards
// because the shards partition the address space; prefix-density and
// MRA answers are computed from a merged tree built under the lock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "v6class/obs/alert.h"
#include "v6class/obs/drift.h"
#include "v6class/obs/event_log.h"
#include "v6class/obs/federate.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/tsdb.h"
#include "v6class/obs/sketch.h"
#include "v6class/obs/trace.h"
#include "v6class/simd/address_block.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/mra.h"
#include "v6class/stream/bounded_queue.h"
#include "v6class/stream/record.h"
#include "v6class/stream/shard.h"

namespace v6 {

/// Sentinel for "no day sealed / observed yet".
inline constexpr int kNoDay = std::numeric_limits<int>::min();

/// Tuning and analysis parameters of a stream engine.
struct stream_config {
    unsigned shards = 4;              ///< ingest parallelism (>= 1)
    std::size_t batch_size = 1024;    ///< records per enqueued batch
    std::size_t queue_capacity = 64;  ///< batches per shard queue (backpressure)
    unsigned projected_length = 64;   ///< second store's prefix length (the /64 analysis)
    unsigned stability_n = 3;         ///< n of the daily report's nd-stable split
    stability_options window{};       ///< sliding window for the daily split
    unsigned spectrum_max = 14;       ///< max n of snapshot lifetime spectra
    /// Density classes of the daily report and snapshot (Table 3 rows).
    std::vector<std::pair<std::uint64_t, unsigned>> density_classes = {{2, 112}};

    /// Registry the engine interns its metrics into. Null (default)
    /// means an engine-private registry (see stream_engine::metrics());
    /// pass &obs::registry::global() to share one exposition endpoint
    /// with the library phase timers, as v6stream does. Two engines
    /// sharing one registry accumulate into the same series.
    obs::registry* metrics_registry = nullptr;

    /// False skips the sampled instrumentation — queue-depth gauges,
    /// seal/report latency histograms, per-shard counters — for
    /// benchmarking the bare hot path (bench/micro_obs_overhead). The
    /// core feed counters behind stats() are always maintained.
    bool metrics = true;

    /// False skips the streaming sketches (per-day HLL distinct
    /// estimates, P² hit-count quantiles) and with them those live
    /// series — bench/micro_sketch holds their cost under 3% of ingest.
    bool sketches = true;
    unsigned hll_precision = 14;  ///< 2^p registers per day-HLL (~0.8% err)
    /// Every Nth accepted record feeds the P² hit-count quantiles
    /// (1 = all). P² costs ~100ns per observation on the serial feed
    /// path; systematic 1-in-8 sampling makes it free while leaving
    /// the quantiles of a mixed stream statistically unchanged.
    unsigned quantile_sample = 8;

    /// Ring capacity of every live derived series (dashboard history).
    std::size_t history = 512;

    /// Drift detection over the derived series; events are raised into
    /// `events` (or an engine-private log when null — v6stream passes
    /// &obs::event_log::global() so --events-out sees them).
    obs::drift_options drift{};
    obs::event_log* events = nullptr;

    /// Flight recorder (v6stream --state-dir). When non-null, every day
    /// seal appends each live derived series' value (ts = the sealed
    /// day number) plus any new log events, then commits. At
    /// construction the engine re-anchors: each series' newest stored
    /// day is read back and seals at or before it are not re-appended,
    /// so replaying a corpus over an existing store is idempotent (the
    /// restart-resume contract the check.sh smoke verifies).
    obs::tsdb::database* tsdb = nullptr;

    /// Alert engine (v6stream --alerts). When non-null, evaluated once
    /// per day seal, sampling the live derived series by metric name
    /// and label. The engine calls evaluate() on a snapshot of the live
    /// values with no engine lock held, so other evaluate() callers
    /// (the wall-clock tick) may sample the engine without deadlock.
    obs::alert_engine* alerts = nullptr;

    /// Telemetry push hook (v6stream --push). When set, the roll thread
    /// invokes it after each seal's live update with a seal_snapshot —
    /// the seal-derived series points plus copies of the merged day
    /// sketches — holding no engine lock, so the hook may serialize and
    /// send over the network freely. A slow hook delays the next
    /// report, never ingest.
    obs::federate::seal_fn federate{};
};

/// Feed-side and sealed-side counters: a thin view over the engine's
/// metrics registry (same numbers a /metrics scrape reports), plus the
/// lock-consistent day fields. Invariant: fed == records + late_dropped
/// + dropped.
struct stream_stats {
    std::uint64_t fed = 0;           ///< every record offered to push()
    std::uint64_t records = 0;       ///< accepted records
    std::uint64_t hits = 0;          ///< sum of their hit counts
    std::uint64_t late_dropped = 0;  ///< records older than the open day
    std::uint64_t dropped = 0;       ///< records pushed after finish()
    std::uint64_t batches = 0;       ///< batches enqueued to shard queues
    int open_day = kNoDay;           ///< day currently accumulating
    int sealed_day = kNoDay;         ///< epoch: last day sealed everywhere
    std::size_t distinct_addresses = 0;  ///< distinct /128s, sealed days
    std::size_t distinct_projected = 0;  ///< distinct projected prefixes
};

/// The asynchronous roll-up produced when a day seals.
struct day_report {
    int day = kNoDay;      ///< the day that sealed
    int ref_day = kNoDay;  ///< day classified: day - window_fwd (full window)
    std::uint64_t active = 0;      ///< addresses active on ref_day
    std::uint64_t stable = 0;      ///< of those, nd-stable in the window
    std::uint64_t not_stable = 0;  ///< the rest
    std::size_t distinct_addresses = 0;  ///< totals as of this epoch
    std::size_t distinct_projected = 0;
    std::vector<density_row> density;  ///< configured n@/p classes

    // Live derived series, evaluated when this day sealed (see
    // stream_engine::live): MRA count ratios over the distinct set,
    // the nd-stable fraction of the classified day, and the sketch
    // estimates of the sealed day's distinct addresses / /48s / /64s
    // (zero when cfg.sketches is off).
    double gamma1 = 1;   ///< gamma^1 at p=64 (n_65 / n_64)
    double gamma4 = 1;   ///< gamma^4 at p=60 (n_64 / n_60)
    double gamma16 = 1;  ///< gamma^16 at p=48 (n_64 / n_48)
    double stable_fraction = 0;  ///< stable / active (0 when no active)
    double est_day_addresses = 0, est_day_48s = 0, est_day_64s = 0;

    // Introspection sampled at this seal: the merged trie's arena
    // occupancy (live node slots, free-listed slots) and the v6::par
    // pool's seat utilization over the interval since the previous
    // seal (0..1, 0 while the pool sat idle).
    std::uint64_t arena_nodes = 0;
    std::uint64_t arena_free = 0;
    double pool_utilization = 0;
    /// Instructions per cycle inside shard.ingest_batch scopes over the
    /// same inter-seal interval (0 without a hardware PMU or while
    /// pmu_scope collection is disabled).
    double ingest_ipc = 0;
};

/// Snapshot of one live derived series (dashboard / queries).
struct live_series_view {
    std::string name;             ///< display name, e.g. "gamma16@48"
    std::string help;
    std::string metric;           ///< registry metric name (v6class_*)
    std::string label;            ///< tsdb label ("" or the class label)
    double current = 0;
    bool alarmed = false;         ///< drift alarm fired on the last sample
    std::vector<double> history;  ///< ring-buffer contents, oldest first
};

/// Everything the /dashboard page draws, at one instant.
struct live_view {
    int epoch = kNoDay;
    std::vector<live_series_view> series;
    std::vector<obs::event> events;  ///< recent, oldest first
};

/// A consistent cross-shard summary at one epoch.
struct stream_snapshot {
    int epoch = kNoDay;  ///< sealed day the sealed-state fields describe
    std::uint64_t records = 0;
    std::uint64_t hits = 0;
    std::uint64_t late_dropped = 0;
    std::size_t distinct_addresses = 0;
    std::size_t distinct_projected = 0;
    std::vector<std::uint64_t> spectrum;  ///< lifetime spectrum, 0..spectrum_max
    std::vector<density_row> density;     ///< configured n@/p classes
};

class stream_engine {
public:
    explicit stream_engine(stream_config cfg = {});

    /// Finishes (sealing the open day) if the caller has not.
    ~stream_engine();

    stream_engine(const stream_engine&) = delete;
    stream_engine& operator=(const stream_engine&) = delete;

    const stream_config& config() const noexcept { return cfg_; }

    /// Accepts one record. Blocks only when the record's shard queue is
    /// full (backpressure). Records for a day older than the open day
    /// are dropped and counted (sealed days are immutable). Ignored
    /// after finish().
    void push(const stream_record& r);
    void push(int day, const address& a, std::uint64_t hits = 1) {
        push(stream_record{day, a, hits});
    }

    /// Accepts one decoded block (SoA lanes + day/hits columns) under a
    /// single push-lock acquisition — the batch ingest path the wire
    /// decoder feeds. Semantically identical to push() per record.
    void push_block(const simd::record_block& block);

    /// Pushes staged partial batches to the shard queues (records stage
    /// until batch_size accumulates; call before waiting on a report
    /// mid-day, not needed otherwise).
    void flush();

    /// Seals the open day, drains every queue, joins all threads and
    /// emits the final day report. Idempotent. After finish() the
    /// queries below remain valid.
    void finish();

    // ------------------------------------------------------------ queries

    stream_stats stats() const;

    /// The registry this engine's metrics live in (its own unless
    /// cfg.metrics_registry injected one). Series: v6_stream_*_total
    /// feed counters, per-shard v6_stream_queue_depth / _high_water /
    /// _shard_records_total, day gauges (open/sealed/epoch lag,
    /// distinct counts), and the seal-latency / report-build
    /// histograms.
    obs::registry& metrics() const noexcept { return *metrics_; }

    /// Epoch (last sealed day), kNoDay when nothing has sealed.
    int sealed_day() const;

    /// Consistent cross-shard summary at the current epoch.
    stream_snapshot snapshot() const;

    /// Windowed nd-stable split of ref_day's active set, merged across
    /// shards; byte-identical to the batch stability_analyzer over the
    /// same sealed days.
    stability_split classify_day(int ref_day, unsigned n) const;

    /// Lifetime spectrum (span >= n) over all sealed days.
    std::vector<std::uint64_t> stability_spectrum(unsigned max_n) const;

    /// Table-3 rows over the distinct addresses of all sealed days.
    std::vector<density_row> density_table(
        const std::vector<std::pair<std::uint64_t, unsigned>>& classes) const;

    /// Distinct addresses of all sealed days, sorted.
    std::vector<address> distinct_addresses() const;

    /// MRA aggregate counts/ratios over the distinct addresses.
    mra_series mra() const;

    /// The live derived series (ring histories, drift flags) plus the
    /// newest `events_n` log events — the /dashboard model. Histories
    /// gain one point per sealed day.
    live_view live(std::size_t events_n = 32) const;

    /// The event log drift alarms are raised into (engine-private
    /// unless cfg.events injected one).
    obs::event_log& events() const noexcept { return *events_; }

    /// Day reports emitted so far, oldest first.
    std::vector<day_report> reports() const;
    std::optional<day_report> latest_report() const;

    /// Blocks until the report for `day` exists (returns it) or the
    /// engine finishes without ever sealing `day` (returns nullopt).
    std::optional<day_report> wait_for_report(int day) const;

private:
    struct shard_message {
        enum class kind { batch, seal };
        kind k = kind::batch;
        int day = kNoDay;  // seal only
        std::vector<stream_record> batch;
        // Span context riding the batch: captured at enqueue so the
        // worker's ingest span parents to the pusher's span and the
        // queue dwell time is recorded as a queue_wait span. Zero when
        // tracing is off.
        obs::span_context ctx{};
        std::uint64_t enqueue_ns = 0;
    };

    unsigned shard_of(const address& a) const noexcept {
        return static_cast<unsigned>(address_hash{}(a) % cfg_.shards);
    }

    void push_locked(const stream_record& r);  // push_mutex_ held
    void worker_loop(unsigned shard);
    void roll_loop();
    void flush_shard_locked(unsigned shard);   // push_mutex_ held
    void broadcast_seal_locked(int day);       // push_mutex_ held
    day_report build_report(int day) const;    // takes state_mutex_ shared
    radix_tree merged_tree_locked() const;     // state_mutex_ held (any mode)
    void init_metrics();
    void init_live();

    /// Sealed-day sketch estimates, merged across shards.
    struct day_estimates {
        double addresses = 0, p48s = 0, p64s = 0;
    };
    day_estimates merge_day_sketches();  // roll thread, workers parked
    void update_live(const day_report& report);  // roll thread

    /// Pre-interned handles; instrumented code never touches the
    /// registry after construction. The sampled handles (gauges,
    /// histograms, per-shard counters) are null when cfg_.metrics is
    /// off — null handles are no-ops.
    struct metric_handles {
        obs::counter fed, records, hits, late, dropped, batches, seals;
        obs::gauge open_day, sealed_day, epoch_lag;
        obs::gauge distinct_addresses, distinct_projected;
        std::vector<obs::counter> shard_records;   // one per shard
        std::vector<obs::gauge> queue_depth;       // one per shard
        std::vector<obs::gauge> queue_high_water;  // one per shard
        obs::histogram seal_latency, report_build;
        // Introspection gauges, refreshed per seal: merged-trie arena
        // occupancy/free-list and process RSS.
        obs::gauge arena_live, arena_free;
    };

    stream_config cfg_;
    std::unique_ptr<obs::registry> own_metrics_;  // when none injected
    obs::registry* metrics_ = nullptr;
    metric_handles m_;
    std::unique_ptr<obs::event_log> own_events_;  // when none injected
    obs::event_log* events_ = nullptr;

    /// Day-scoped sketches, one set per shard: written only by that
    /// shard's worker while the day is open, merged and reset by the
    /// roll thread while every worker is parked at the seal marker (the
    /// roll_mutex_ handshake orders both directions).
    struct day_sketches {
        obs::hyperloglog addresses, p48s, p64s;
        explicit day_sketches(unsigned precision)
            : addresses(precision), p48s(precision), p64s(precision) {}
    };
    std::vector<day_sketches> shard_sketches_;

    /// P² hit-count quantiles, fed in push() under push_mutex_. The
    /// roll thread must NOT take push_mutex_ to read them — the pusher
    /// can hold it across a blocking queue push, and the seal pipeline
    /// waiting on a backpressured pusher deadlocks — so the pusher
    /// publishes snapshots into the atomics at each day boundary
    /// (broadcast_seal_locked) and update_live reads only those.
    obs::p2_quantile hits_p50_{0.5}, hits_p99_{0.99};
    std::atomic<double> hits_p50_pub_{0.0}, hits_p99_pub_{0.0};
    std::uint64_t quantile_tick_ = 0;  // push_mutex_; 1-in-N sampler

    /// Federation state (meaningful only when cfg_.federate is set).
    /// The merged day sketches are retained here by merge_day_sketches
    /// instead of being discarded after estimate() — roll thread only.
    /// The P² estimator snapshots cross a thread boundary (pusher →
    /// roll), so they travel through their own small mutex, copied at
    /// each day boundary in broadcast_seal_locked; the atomics above
    /// only publish the scalar values, not the marker state a federated
    /// aggregator receives.
    obs::hyperloglog fed_day_addresses_{4}, fed_day_48s_{4}, fed_day_64s_{4};
    mutable std::mutex p2_snap_mutex_;
    obs::p2_quantile p2_snap_p50_{0.5}, p2_snap_p99_{0.99};

    /// One live derived series: the registry gauge, the dashboard's
    /// ring history, and its drift detector. All guarded by live_mutex_
    /// (written once per seal by the roll thread, read by /dashboard).
    struct live_series {
        std::string name;
        std::string help;
        std::string metric;  ///< registry metric name (tsdb series name)
        std::string label;   ///< tsdb label ("" or the class label value)
        obs::dgauge gauge;
        obs::ring_history history;
        obs::ewma_detector detector;
        bool alarmed = false;
        std::uint32_t tsdb_id = 0;
        /// Newest day already in the store at construction; seals at or
        /// before it are not re-appended (restart re-anchor).
        std::int64_t anchor = std::numeric_limits<std::int64_t>::min();
        live_series(std::string n, std::string h, obs::dgauge g,
                    std::size_t capacity, const obs::drift_options& opt)
            : name(std::move(n)), help(std::move(h)), gauge(g),
              history(capacity), detector(opt) {}
    };
    mutable std::mutex live_mutex_;
    std::vector<live_series> live_;
    // Fixed indices into live_ (dense classes follow, then sketches).
    std::size_t li_gamma1_ = 0, li_gamma4_ = 0, li_gamma16_ = 0;
    std::size_t li_stable_fraction_ = 0, li_active_ = 0;
    std::size_t li_hits_p50_ = 0, li_hits_p99_ = 0;
    std::size_t li_dense_first_ = 0;   // one per cfg_.density_classes entry
    std::size_t li_est_first_ = 0;     // addrs, /48s, /64s (sketches on)
    std::size_t li_pool_util_ = 0, li_arena_nodes_ = 0;
    // SIZE_MAX = not registered (no hardware PMU on this machine).
    std::size_t li_pmu_ipc_ = SIZE_MAX;
    obs::counter drift_events_;
    std::uint64_t tsdb_event_cursor_ = 0;  // roll thread only
    day_estimates last_estimates_;     // roll thread only
    // Pool-utilization baseline from the previous seal (roll thread).
    std::uint64_t last_busy_ns_ = 0;
    std::uint64_t last_util_wall_ns_ = 0;
    // shard.ingest_batch counter baselines from the previous seal
    // (roll thread only), for the per-interval IPC series.
    std::uint64_t pmu_last_cycles_ = 0;
    std::uint64_t pmu_last_instr_ = 0;
    std::vector<std::unique_ptr<stream_shard>> shards_;
    std::vector<std::unique_ptr<bounded_queue<shard_message>>> queues_;
    std::vector<std::thread> workers_;
    std::thread roll_thread_;

    // Pusher state: staging buffers and day detection. The feed
    // counters that used to live here are now the m_ registry series
    // (still written under push_mutex_, so stats() stays exact).
    std::mutex finish_mutex_;  // serializes finish() callers
    mutable std::mutex push_mutex_;
    std::vector<std::vector<stream_record>> staging_;
    int open_day_ = kNoDay;
    bool finished_ = false;

    // Seal pipeline: drained/applied day handshake between workers and
    // the roll thread.
    mutable std::mutex roll_mutex_;
    mutable std::condition_variable roll_cv_;
    std::deque<int> seal_days_;     // broadcast, not yet applied
    std::vector<int> drained_day_;  // per shard: last seal marker reached
    int applied_day_ = kNoDay;      // last seal applied to all shards
    bool stopping_ = false;

    // Sealed state: written only by the roll thread (exclusive), read by
    // every query (shared). The projected store lives here rather than
    // per shard: sharding partitions /128s, so addresses of one
    // projected prefix land in different shards and per-shard projected
    // counts would double-count.
    mutable std::shared_mutex state_mutex_;
    int sealed_day_ = kNoDay;
    observation_store projected_store_;

    // Emitted reports.
    mutable std::mutex reports_mutex_;
    mutable std::condition_variable report_cv_;
    std::deque<day_report> reports_;
    bool rolls_done_ = false;
};

}  // namespace v6
