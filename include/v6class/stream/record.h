// record.h — the unit of a live observation feed.
//
// A streaming deployment (Section 5.1: "we wish to perform stability
// analysis on an ongoing basis") does not hand us finished day files; it
// hands us an unbounded sequence of (day, address[, hits]) observations.
// The line format is the corpus format prefixed with the log-processed
// day — "day address [hits]" — so a corpus can be replayed verbatim and
// a collector can emit records as they happen.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>

#include "v6class/ip/address.h"
#include "v6class/ip/io.h"

namespace v6 {

/// One observation from a live feed.
struct stream_record {
    int day = 0;             ///< log-processed day index (see daily_series)
    address addr;            ///< observed client/interface address
    std::uint64_t hits = 1;  ///< aggregated hit count for this observation

    friend bool operator==(const stream_record&, const stream_record&) = default;
};

/// Parses one "day address [hits]" feed line (already trimmed, non-empty,
/// not a comment). Returns false on any syntax error.
bool parse_stream_record(std::string_view text, stream_record& out) noexcept;

/// Reads feed lines from a stream, invoking `sink` per parsed record.
/// Blank lines and '#' comments are tolerated; malformed lines are
/// counted with their line numbers, exactly like read_address_lines.
read_report read_stream_records(
    std::istream& in, const std::function<void(const stream_record&)>& sink);

/// Writes one "day address hits" line.
void write_stream_record(std::ostream& out, const stream_record& r);

}  // namespace v6
