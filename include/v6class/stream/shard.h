// shard.h — one shard of the streaming ingest engine's state.
//
// The engine hashes each record's address into a shard; a shard
// therefore owns a disjoint subset of the /128 address space, which is
// what makes the per-address analyses (distinct counts, stability,
// lifetime spectra) exactly mergeable: summing per-shard answers equals
// the unsharded answer. Anything keyed by a *coarser* unit straddles
// shards — prefix density and MRA are answered from a merged tree, and
// the projected (/64) observation store lives in the engine, fed at
// seal time — because two addresses of one /64 routinely hash to
// different shards, so per-shard projected counts would double-count.
//
// Concurrency contract (enforced by stream_engine, not by this class):
// `buffer` is called only by the shard's worker thread; `seal_day` and
// all sealed-state readers are serialized by the engine's epoch
// machinery. Nothing here locks.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/stream/record.h"
#include "v6class/temporal/daily_series.h"
#include "v6class/temporal/observation_store.h"
#include "v6class/temporal/stability.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {

class stream_shard {
public:
    stream_shard() : store128_(128) {}

    /// Stages one record of the in-progress day. Sealed state is not
    /// touched until seal_day.
    void buffer(const stream_record& r) {
        pending_.push_back(r.addr);
        pending_hits_ += r.hits;
    }

    /// Seals `day`: folds everything staged since the last seal into the
    /// observation stores, the daily series, and the distinct-address
    /// trie. Staged records all belong to `day` (the engine broadcasts a
    /// seal marker before any newer-day record is enqueued).
    void seal_day(int day);

    // ----- sealed-state queries (epoch-consistent under the engine) ----

    std::size_t distinct_addresses() const noexcept { return store128_.distinct_count(); }
    std::uint64_t hits() const noexcept { return hits_; }

    const daily_series& series() const noexcept { return series_; }
    const observation_store& store() const noexcept { return store128_; }

    /// This shard's slice of the windowed nd-stable split for `ref_day`.
    stability_split classify_day(int ref_day, unsigned n,
                                 const stability_options& opt) const {
        return stability_analyzer(series_, opt).classify_day(ref_day, n);
    }

    /// This shard's slice of the lifetime spectrum (span >= n).
    std::vector<std::uint64_t> spectrum(unsigned max_n) const {
        return store128_.stability_spectrum(max_n);
    }

    /// Adds this shard's distinct /128s into `out` (one add() each), for
    /// the engine's merged density/MRA tree.
    void merge_tree_into(radix_tree& out) const;

    /// Appends this shard's distinct addresses (unsorted) to `out`.
    void collect_addresses(std::vector<address>& out) const;

private:
    std::vector<address> pending_;      // staged records of the open day
    std::uint64_t pending_hits_ = 0;

    daily_series series_;               // per-day active sets (sealed days)
    observation_store store128_;        // lifetime state at /128
    radix_tree tree_;                   // distinct /128s, for density/MRA merges
    std::uint64_t hits_ = 0;
};

}  // namespace v6
