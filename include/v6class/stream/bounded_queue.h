// bounded_queue.h — blocking bounded MPSC queue, the backpressure seam
// of the streaming ingest pipeline.
//
// Producers that outrun a shard worker block in push() instead of
// growing an unbounded buffer (the xenoeye-style collector discipline:
// when the pipeline is saturated, the feed reader slows down, memory
// does not). close() wakes everyone: producers see a failed push,
// consumers drain the remaining items and then see nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace v6 {

template <typename T>
class bounded_queue {
public:
    explicit bounded_queue(std::size_t capacity) noexcept
        : capacity_(capacity == 0 ? 1 : capacity) {}

    bounded_queue(const bounded_queue&) = delete;
    bounded_queue& operator=(const bounded_queue&) = delete;

    /// Blocks while the queue is full. Returns false (dropping the item)
    /// when the queue was closed.
    bool push(T item) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push; false when full or closed.
    bool try_push(T item) {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while the queue is empty. Returns nullopt once the queue
    /// is closed *and* drained.
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Wakes all waiters; subsequent pushes fail, pops drain then stop.
    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

}  // namespace v6
