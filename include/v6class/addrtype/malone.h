// malone.h — content-only address classifier in the style of Malone,
// "Observations of IPv6 Addresses" (PAM 2008).
//
// The paper (Section 2) uses Malone's scheme as the baseline its temporal
// classifier complements: Malone labels an address by inspecting only the
// address itself, and his randomness test for privacy IIDs is expected to
// identify roughly 73% of them. We reproduce that behaviour — including
// the deliberate miss rate — so the bench `exp_malone_baseline` can
// compare content-only detection against temporal stability analysis.
#pragma once

#include <cstdint>
#include <string_view>

#include "v6class/ip/address.h"

namespace v6 {

/// Labels assigned by the Malone-style content-only classifier.
enum class malone_label : std::uint8_t {
    low,       ///< IID is a small integer (top 48 IID bits zero)
    word,      ///< IID spells hex words / repeated digits (e.g. dead:beef)
    isatap,    ///< 5efe ISATAP marker
    v4_based,  ///< dotted-quad-style or hex-embedded IPv4 in the IID
    eui64,     ///< SLAAC modified EUI-64 (0xfffe marker)
    teredo,    ///< 2001::/32
    six_to_four, ///< 2002::/16
    randomised,  ///< passes the randomness test: presumed privacy address
    unclassified,///< none of the above fired
};

/// Classifies by content only.
///
/// The randomness test follows Malone's design point: a privacy IID is
/// recognized when every 16-bit group of the IID has a non-zero leading
/// nybble (plus u-bit == 0). A uniformly random 64-bit IID passes with
/// probability (15/16)^4 ~= 0.772, matching the ~73% detection rate the
/// paper quotes; deterministic IIDs with manual structure rarely do.
malone_label malone_classify(const address& a) noexcept;

std::string_view to_string(malone_label l) noexcept;

}  // namespace v6
