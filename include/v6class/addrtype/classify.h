// classify.h — content-based IPv6 address-type classification.
//
// Implements the address-content analysis of Section 3 and Section 4 of
// the paper: recognition of transition-mechanism addresses (Teredo, 6to4,
// ISATAP), SLAAC EUI-64 interface identifiers, embedded IPv4, and the
// coarse IID-shape buckets (low-value, structured, pseudorandom-looking)
// used when discussing Figure 1's sample addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "v6class/ip/address.h"
#include "v6class/ip/mac.h"

namespace v6 {

/// IPv4/IPv6 transition mechanisms distinguishable from address content
/// alone. The paper culls these three before running the temporal and
/// spatial classifiers; everything else is "Other" (native transport).
enum class transition_kind : std::uint8_t {
    none,         ///< native IPv6 (includes 464XLAT / DS-Lite)
    teredo,       ///< 2001::/32 (RFC 4380)
    six_to_four,  ///< 2002::/16 (RFC 3056/3068)
    isatap,       ///< IID ::0200:5efe:a.b.c.d or ::0000:5efe:a.b.c.d (RFC 5214)
};

/// Address scope / special-use classification from the leading bits.
enum class address_scope : std::uint8_t {
    unspecified,    ///< ::
    loopback,       ///< ::1
    multicast,      ///< ff00::/8
    link_local,     ///< fe80::/10
    unique_local,   ///< fc00::/7 (RFC 4193)
    documentation,  ///< 2001:db8::/32 (RFC 3849)
    global_unicast, ///< 2000::/3 less the above carve-outs
    reserved,       ///< everything else
};

/// Shape of the low 64 bits (the canonical interface-identifier field).
enum class iid_kind : std::uint8_t {
    eui64,          ///< modified EUI-64: 0xfffe marker at bits 88..103
    isatap,         ///< 5efe marker per RFC 5214
    low_value,      ///< small integer IID, e.g. ::1, ::103
    embedded_ipv4,  ///< IID's low 32 bits equal an IPv4 address embedded
                    ///< elsewhere in the address, or hex-encoded dotted quad
    structured,     ///< few populated nybbles — subnet-style manual layout
    pseudorandom,   ///< none of the above; dense high-entropy pattern
};

/// Full content-based classification of one address.
struct classification {
    transition_kind transition = transition_kind::none;
    address_scope scope = address_scope::global_unicast;
    iid_kind iid = iid_kind::pseudorandom;
    /// Present when the IID is modified EUI-64: the decoded MAC.
    std::optional<mac_address> mac;
    /// Present for Teredo / 6to4 / ISATAP: the embedded IPv4 address,
    /// host byte order.
    std::optional<std::uint32_t> embedded_ipv4;
};

/// Classifies by address content only. Deterministic and stateless.
classification classify(const address& a) noexcept;

/// Convenience predicates mirroring the paper's Table 1 row definitions.
bool is_teredo(const address& a) noexcept;
bool is_6to4(const address& a) noexcept;
bool is_isatap(const address& a) noexcept;

/// True when the low 64 bits carry the modified-EUI-64 0xfffe marker
/// (and the address is not ISATAP, whose marker would collide).
bool is_eui64(const address& a) noexcept;

/// Decodes the MAC address of an EUI-64 IID, or nullopt.
std::optional<mac_address> eui64_mac(const address& a) noexcept;

/// The "u" (universal/local) bit of the IID, i.e. address bit 70.
/// RFC 4941 privacy IIDs always have u == 0.
unsigned iid_u_bit(const address& a) noexcept;

/// Human-readable name for each enumerator (for reports and logs).
std::string_view to_string(transition_kind k) noexcept;
std::string_view to_string(address_scope s) noexcept;
std::string_view to_string(iid_kind k) noexcept;

}  // namespace v6
