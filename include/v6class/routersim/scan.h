// scan.h — active-scan simulation over the IPv6 space (Section 6.2.2).
//
// The paper's feasibility argument: scanning a /112 (64K addresses) is
// as cheap as scanning an IPv4 /16, so the dense prefixes discovered
// spatially are practical probe targets — whereas blind scanning of the
// IPv6 unicast space can never hit anything. This module simulates such
// scans against a known set of responding hosts and quantifies the
// difference, plus a budgeted scheduler that orders blocks by observed
// density (densest first) the way a real survey would.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/spatial/density.h"

namespace v6 {

/// The outcome of one simulated scan campaign.
struct scan_outcome {
    std::uint64_t probes = 0;      ///< addresses probed
    std::uint64_t responders = 0;  ///< probed addresses that were live
    double hit_rate() const noexcept {
        return probes ? static_cast<double>(responders) / static_cast<double>(probes)
                      : 0.0;
    }
};

/// Probes exactly `targets` against the sorted live-host set.
scan_outcome run_scan(const std::vector<address>& targets,
                      const std::vector<address>& live_hosts);

/// Budgeted dense-block survey: expands the given dense prefixes in
/// descending observed-count order (densest blocks first) until `budget`
/// probes are spent. Returns the outcome plus how many blocks were
/// fully covered.
struct survey_outcome {
    scan_outcome scan;
    std::size_t blocks_started = 0;
    std::size_t blocks_completed = 0;
};
survey_outcome run_dense_survey(std::vector<dense_prefix> dense,
                                const std::vector<address>& live_hosts,
                                std::uint64_t budget);

/// Baseline: `budget` probes drawn uniformly at random from the host
/// bits of the given covering prefixes (e.g. the active BGP prefixes) —
/// the blind strategy the paper rules out.
scan_outcome run_random_scan(const std::vector<prefix>& within,
                             const std::vector<address>& live_hosts,
                             std::uint64_t budget, std::uint64_t seed);

}  // namespace v6
