// targets.h — probe target selection strategies (Section 6.1.1).
//
// The paper's experiment: using a random subset of 3d-stable addresses
// as traceroute targets discovered 129% more router addresses than the
// "long-standing IPv4 strategy" of probing recursive-resolver addresses
// plus randomly selected active WWW client addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/ip/address.h"

namespace v6 {

/// The IPv4-style baseline: every resolver address plus `client_count`
/// clients sampled uniformly from the day's active set.
std::vector<address> ipv4_style_targets(const std::vector<address>& resolvers,
                                        const std::vector<address>& active_clients,
                                        std::size_t client_count,
                                        std::uint64_t seed);

/// The paper's improved strategy: a random subset of the 3d-stable
/// addresses.
std::vector<address> stable_informed_targets(const std::vector<address>& stable,
                                             std::size_t count, std::uint64_t seed);

/// Uniform sample without replacement of `count` elements (all, if the
/// input is smaller). Order of the result is unspecified but
/// deterministic in the seed.
std::vector<address> sample_addresses(const std::vector<address>& from,
                                      std::size_t count, std::uint64_t seed);

}  // namespace v6
