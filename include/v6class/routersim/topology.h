// topology.h — synthetic router infrastructure and TTL-limited probing
// (the substitution for the paper's Section 4.2 router-address dataset).
//
// For every origin ASN of the simulated world the generator lays out a
// three-tier topology (core / aggregation / edge) with the numbering
// practices that make real router addresses spatially dense:
//
//   * loopbacks packed sequentially in a /112 block,
//   * point-to-point links carved as /127s from a contiguous region,
//
// both inside an "infrastructure /48" carved from the top of the ASN's
// first BGP prefix. TTL-limited probes toward a target elicit ICMPv6
// Time Exceeded responses from each hop — exactly the mechanism the
// paper used to collect 3.2M router addresses. The last hop (the edge
// router serving the target's LAN) only answers when the target address
// is live on the probe day: probes toward a vanished privacy address or
// a released dynamic /64 stop at aggregation. That asymmetry is what
// makes 3d-stable addresses the better probe targets (Section 6.1.1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "v6class/cdnsim/world.h"
#include "v6class/ip/address.h"

namespace v6 {

/// Topology sizing knobs.
struct topology_config {
    std::uint64_t seed = 7;
    /// Aggregation routers per this many edge routers.
    unsigned edges_per_agg = 16;
    /// Core routers per this many aggregation routers.
    unsigned aggs_per_core = 8;
    /// Transit routers between the CDN and every origin ASN.
    unsigned transit_routers = 24;
};

/// The synthetic router plant plus the probing engine.
class router_topology {
public:
    router_topology(const world& w, topology_config cfg = {});

    /// Every router interface address (loopbacks + p2p links), sorted —
    /// the full census a perfect probing campaign could discover. Stands
    /// in for the paper's 3.2M-address router dataset in Table 3.
    const std::vector<address>& interfaces() const noexcept { return interfaces_; }

    /// The ICMPv6 Time Exceeded source addresses a TTL-limited probe
    /// toward `target` elicits. `live_targets` is the sorted set of
    /// addresses active on the probe day: the last-hop edge router only
    /// answers when the target is among them.
    std::vector<address> trace(const address& target,
                               const std::vector<address>& live_targets) const;

    /// Runs a probing campaign: traces every target, returns the distinct
    /// router addresses discovered (sorted).
    std::vector<address> probe_campaign(const std::vector<address>& targets,
                                        const std::vector<address>& live_targets) const;

    /// Recursive-resolver addresses (they sit next to core routers in the
    /// infrastructure blocks) — the IPv4-style strategy's favourite
    /// targets.
    const std::vector<address>& resolver_addresses() const noexcept {
        return resolvers_;
    }

private:
    struct asn_plant {
        std::uint32_t asn = 0;
        std::vector<address> core_ifaces;
        std::vector<address> agg_ifaces;
        std::vector<address> edge_ifaces;
    };

    const asn_plant* plant_of(const address& target) const;

    const world* world_;
    topology_config cfg_;
    std::vector<address> interfaces_;
    std::vector<address> resolvers_;
    std::vector<address> cdn_side_;  // the CDN's own first hops
    std::vector<address> transit_;
    std::unordered_map<std::uint32_t, asn_plant> plants_;
};

}  // namespace v6
