// collector.h — the network-facing ingest front end: a non-blocking
// UDP socket whose rx thread batch-receives v6wire datagrams
// (recvmmsg), decodes them with the bounds-checked wire codec, tags
// each record through the enrichment snapshot, and feeds the stream
// engine's shard queues.
//
// Threading model: one rx thread per collector (per socket). The rx
// thread owns the socket and the decoder; nothing else touches either.
// It loops recvmmsg → decode → enrich → engine.push; when the socket
// is dry it parks in poll() with a short timeout so stop() is observed
// within ~50 ms. engine.push applies the engine's own backpressure (a
// full shard queue blocks the rx thread, which in turn fills the
// socket buffer and eventually drops datagrams at the kernel — the
// classic collector overload behaviour, visible as rx drops, never as
// corrupted state).
//
// Every malformed datagram increments exactly one reason-labeled
// rejection counter in v6::obs; the loopback e2e test asserts the
// accepted-record count reaches the sent count with zero rejects.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "v6class/net/enrich.h"
#include "v6class/net/wire.h"
#include "v6class/obs/metrics.h"
#include "v6class/stream/engine.h"

namespace v6::net {

struct collector_config {
    std::string bind = "::";   ///< local address to bind (v6only off, so
                               ///< IPv4 senders reach "::" via mapping)
    std::uint16_t port = 0;    ///< 0 = ephemeral (tests); see port()
    unsigned rx_batch = 16;    ///< datagrams per recvmmsg call
    int rcvbuf = 1 << 22;      ///< SO_RCVBUF request; 0 = kernel default
    obs::registry* registry = nullptr;  ///< rx/reject counters (null = none)
};

/// A consistent copy of the rx thread's counters.
struct collector_stats {
    std::uint64_t datagrams = 0;  ///< well-formed datagrams accepted
    std::uint64_t records = 0;    ///< records pushed into the engine
    std::uint64_t bytes = 0;      ///< payload bytes received
    wire_decode_stats decode;     ///< per-reason rejects, seq accounting
};

class udp_collector {
public:
    /// `enrich` and `ledger` may be null (no enrichment / no per-ASN
    /// accounting). All three referenced objects must outlive stop().
    udp_collector(stream_engine& engine, collector_config cfg,
                  enrichment* enrich = nullptr, asn_ledger* ledger = nullptr);

    ~udp_collector();

    udp_collector(const udp_collector&) = delete;
    udp_collector& operator=(const udp_collector&) = delete;

    /// Binds the socket and spawns the rx thread. False (with *error
    /// set) when the bind fails; the collector is then inert.
    bool start(std::string* error);

    /// Signals the rx thread, joins it, closes the socket. Idempotent.
    /// Records already received are in the engine; finish()/seal
    /// ordering is the caller's to run afterwards.
    void stop();

    bool running() const noexcept { return running_.load(std::memory_order_acquire); }

    /// The actually-bound UDP port (after start(); resolves port 0).
    std::uint16_t port() const noexcept { return port_; }

    collector_stats stats() const;

private:
    void rx_loop();

    stream_engine& engine_;
    collector_config cfg_;
    enrichment* enrich_ = nullptr;
    asn_ledger* ledger_ = nullptr;
    lookup_cache cache_;  // rx thread only

    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread rx_thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};

    // Atomic mirrors of the rx thread's tallies, refreshed once per
    // recvmmsg burst — cross-thread-readable without touching the
    // decoder. (stats() reads these; the obs counters are for scrape.)
    std::atomic<std::uint64_t> a_datagrams_{0}, a_records_{0}, a_bytes_{0};
    std::atomic<std::uint64_t> a_short_{0}, a_bad_magic_{0}, a_bad_version_{0},
        a_bad_flags_{0}, a_truncated_{0}, a_trailing_{0}, a_seq_gaps_{0},
        a_seq_reorder_{0};

    struct metric_handles {
        obs::counter datagrams, records, bytes;
        obs::counter bad_magic, bad_version, short_header, bad_flags,
            truncated, trailing, seq_gaps;
    } m_;
};

/// Pushes one decoded batch into the engine, tagging every record
/// through one enrichment snapshot load and the ledger. Shared by the
/// collector rx loop and the file/pcap replay drivers so both ingest
/// paths are byte-identical from the decoder on.
///
/// `cache` (optional) is a caller-owned per-/64 lookup memo carried
/// across batches; ledger updates are aggregated per batch so the
/// ledger mutex is taken once per datagram. Together these keep
/// enrichment within a few percent of the raw ingest path
/// (micro_wire_ingest tracks the ratio).
void ingest_batch(stream_engine& engine, const std::vector<stream_record>& records,
                  enrichment* enrich, asn_ledger* ledger,
                  lookup_cache* cache = nullptr);

/// Block-path twin of ingest_batch: enrichment memo probes read the hi
/// lane directly and the engine is fed one push_block (a single
/// push-lock acquisition per datagram). End state — engine contents,
/// ledger rows, memo — is identical to ingest_batch over the same
/// records.
void ingest_block(stream_engine& engine, const simd::record_block& block,
                  enrichment* enrich, asn_ledger* ledger,
                  lookup_cache* cache = nullptr);

}  // namespace v6::net
