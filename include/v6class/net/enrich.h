// enrich.h — address→ASN/geo enrichment at ingest, hot-reloadable.
//
// The paper's Fig. 5a/5b views group classified addresses by origin
// ASN; doing that over a *live* stream means every observation must be
// tagged as it arrives, from a routing/geo database that operators
// refresh while the collector keeps running (xenoeye's geodb/AS design:
// rebuild the binary db offline, then SIGHUP the collector).
//
// Three pieces:
//
//   * A binary prefix database ("V6ASNDB1"): sorted fixed-width entries
//     of (prefix, ASN, country), built offline by `v6mkdb` from
//     RIR-style CSV or "prefix asn [country]" route dumps. Fixed-width
//     entries make the loader a bounds check and a loop — no parsing on
//     the reload path beyond validation.
//
//   * An immutable `asn_db` snapshot: the entries loaded into the
//     repo's Patricia `prefix_map` for longest-prefix match.
//
//   * The `enrichment` handle: an RCU-style `shared_ptr<const asn_db>`
//     swapped on reload. Readers copy the snapshot pointer under a
//     brief mutex (an uncontended lock — equivalent in cost to
//     libstdc++'s own `atomic<shared_ptr>`, which is a spinlock TSan
//     cannot model); a concurrent reload builds the new db entirely
//     off to the side and swaps only the pointer, so no lookup ever
//     blocks on the load, fails, or sees a half-loaded table — the
//     reload test asserts zero dropped records under sustained ingest.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "v6class/obs/metrics.h"
#include "v6class/obs/tsdb.h"
#include "v6class/trie/prefix_map.h"

namespace v6::net {

/// What enrichment knows about one prefix.
struct enrich_info {
    std::uint32_t asn = 0;                     ///< origin AS number
    std::array<char, 2> country = {'-', '-'};  ///< ISO 3166-1 alpha-2, "--" unknown

    friend bool operator==(const enrich_info&, const enrich_info&) = default;
};

/// One database entry: a prefix and its enrichment.
struct enrich_entry {
    prefix pfx;
    enrich_info info;

    friend bool operator==(const enrich_entry&, const enrich_entry&) = default;
};

/// Binary database layout (little-endian):
///
///     offset  size  field
///     ------  ----  -----------------------------------
///          0     8  magic    "V6ASNDB1"
///          8     4  version  1 (u32)
///         12     4  count    entries (u32)
///         16   24N  entries
///
///     entry (24 bytes):
///          0    16  prefix base address, network byte order
///         16     1  prefix length (0..128)
///         17     1  reserved, must be 0
///         18     2  country code, two ASCII bytes
///         20     4  ASN (u32)
inline constexpr std::uint8_t kAsnDbMagic[8] = {'V', '6', 'A', 'S', 'N', 'D', 'B', '1'};
inline constexpr std::uint32_t kAsnDbVersion = 1;
inline constexpr std::size_t kAsnDbHeaderSize = 16;
inline constexpr std::size_t kAsnDbEntrySize = 24;

/// Parses one source line: "prefix asn [country]" with comma or
/// whitespace separators ("AS64500" accepted for the asn; a bare
/// address parses as /128). Returns nullopt on syntax errors.
std::optional<enrich_entry> parse_enrich_line(std::string_view line) noexcept;

/// Reads a whole source file (CSV or route-dump style; '#' comments and
/// blank lines tolerated). Returns nullopt when the file cannot be
/// opened; malformed line count goes to *malformed when non-null.
std::optional<std::vector<enrich_entry>> read_enrich_source(
    const std::string& path, std::uint64_t* malformed = nullptr);

/// Serializes entries (sorted by prefix) into the binary format.
std::vector<std::uint8_t> encode_asn_db(std::vector<enrich_entry> entries);

/// Validates and decodes a binary image. Returns nullopt with *error set
/// on any structural problem (magic, version, size arithmetic, prefix
/// length out of range).
std::optional<std::vector<enrich_entry>> decode_asn_db(
    const std::uint8_t* data, std::size_t len, std::string* error);

/// Writes the binary db atomically (tmp + rename). False on I/O failure.
bool write_asn_db(const std::string& path, const std::vector<enrich_entry>& entries);

/// An immutable loaded database: longest-prefix match over the Patricia
/// prefix_map. Snapshots are built once and never mutated, which is
/// what makes the lock-free reload swap safe.
class asn_db {
public:
    explicit asn_db(std::vector<enrich_entry> entries, std::uint64_t generation = 0);

    /// Loads the binary file. Returns null with *error set on failure.
    static std::shared_ptr<const asn_db> load(const std::string& path,
                                              std::uint64_t generation,
                                              std::string* error);

    /// The most specific entry covering `a`, or null.
    const enrich_info* lookup(const address& a) const noexcept {
        const auto hit = map_.longest_match(a);
        return hit ? &hit->second.get() : nullptr;
    }

    std::size_t size() const noexcept { return map_.size(); }
    std::uint64_t generation() const noexcept { return generation_; }

    /// Longest prefix length in the db. When this is <=64 the upper 64
    /// bits of an address fully determine its longest match, which is
    /// what makes the per-/64 lookup_cache memo sound.
    unsigned max_length() const noexcept { return max_length_; }

private:
    prefix_map<enrich_info> map_;
    std::uint64_t generation_ = 0;
    unsigned max_length_ = 0;
};

/// A small direct-mapped memo of per-/64 lookup results, owned by one
/// ingest thread (the collector rx loop, a replay driver) and carried
/// across batches. Routing/RIR feeds almost never carry prefixes longer
/// than /64, so for such a db the /64 network determines the match and
/// the Patricia walk can be skipped for repeat networks — the common
/// case for real traffic, where consecutive observations cluster in few
/// networks. ingest_batch bypasses the memo entirely when the snapshot
/// contains anything longer than /64, and resets it whenever the
/// snapshot pointer changes (reload), so cached pointers never outlive
/// the db they point into.
struct lookup_cache {
    static constexpr std::size_t kSlots = 256;
    struct slot {
        std::uint64_t hi = 0;
        const enrich_info* info = nullptr;
        bool valid = false;
    };

    /// Snapshot identity the slots were filled from. The generation is
    /// part of the key to defeat ABA: a reloaded db can be allocated at
    /// the address the old one was freed from, but its generation is
    /// strictly larger.
    const asn_db* db = nullptr;
    std::uint64_t generation = 0;
    std::array<slot, kSlots> slots;

    bool matches(const asn_db* d) const noexcept {
        return db == d && d != nullptr && generation == d->generation();
    }

    void reset(const asn_db* fresh) noexcept {
        db = fresh;
        generation = fresh ? fresh->generation() : 0;
        for (slot& s : slots) s.valid = false;
    }
};

/// The hot-reloadable enrichment handle.
///
/// Thread contract: lookup() and snapshot() are safe from any thread at
/// any time, including concurrently with reload() — they cost one
/// shared_ptr copy under a mutex held only for that copy. reload() may
/// be called from any one thread at a time (v6stream calls it from the
/// main loop when the SIGHUP flag is set); the expensive part — read,
/// validate, build the trie — happens outside the lock. A failed
/// reload (missing/corrupt file) keeps the previous snapshot serving
/// and counts a failure — the collector never degrades because an
/// operator fat-fingered a db push.
class enrichment {
public:
    /// `registry` may be null (no metrics). The db is not loaded until
    /// the first reload() call.
    explicit enrichment(std::string path, obs::registry* registry = nullptr);

    /// (Re)loads the database file, building the new snapshot aside and
    /// swapping it in atomically. Returns false (old snapshot intact,
    /// failure counted) on any error, with *error set when non-null.
    bool reload(std::string* error = nullptr);

    /// Current snapshot; null before the first successful reload.
    std::shared_ptr<const asn_db> snapshot() const {
        std::lock_guard<std::mutex> lock(snap_mutex_);
        return snap_;
    }

    /// Tags one address. Null when no db is loaded or no prefix covers
    /// the address; the returned pointer is valid only while `snap`
    /// is held — use the two-step form on the hot path so one snapshot
    /// load covers a whole batch.
    const enrich_info* lookup(const address& a,
                              std::shared_ptr<const asn_db>& snap) const {
        snap = snapshot();
        return snap ? snap->lookup(a) : nullptr;
    }

    const std::string& path() const noexcept { return path_; }
    std::uint64_t reloads() const noexcept {
        return reload_count_.load(std::memory_order_relaxed);
    }
    std::uint64_t failures() const noexcept {
        return failure_count_.load(std::memory_order_relaxed);
    }

private:
    std::string path_;
    mutable std::mutex snap_mutex_;           // guards snap_ only
    std::shared_ptr<const asn_db> snap_;      // the live snapshot
    std::uint64_t generation_ = 0;  // reload() caller thread only
    // Authoritative tallies (the obs counters only mirror them for
    // scrape, and are no-ops when no registry was given).
    std::atomic<std::uint64_t> reload_count_{0}, failure_count_{0};
    obs::counter reloads_, failures_;
    obs::gauge entries_gauge_, generation_gauge_;
};

// ------------------------------------------------------------ ledger

/// One row of a per-ASN breakdown.
struct asn_row {
    std::uint32_t asn = 0;  ///< 0 = addresses no db prefix covered
    std::array<char, 2> country = {'-', '-'};
    std::uint64_t records = 0;
    std::uint64_t hits = 0;
};

/// Per-day per-ASN accounting at the ingest front end. The collector /
/// replay thread calls note() per record; the report loop drains a
/// day's rows when the day's report seals. Also maintains per-ASN live
/// counters in the registry (v6_net_asn_records_total{asn=...}),
/// capped: the first `max_series` ASNs seen get their own series,
/// everything after lands in asn="other" — per-ASN observability
/// without unbounded label cardinality.
class asn_ledger {
public:
    /// One pre-aggregated (day, enrichment) tally from an ingest batch.
    struct note_row {
        int day = 0;
        const enrich_info* info = nullptr;
        std::uint64_t records = 1;
        std::uint64_t hits = 0;
    };

    explicit asn_ledger(obs::registry* registry = nullptr,
                        std::size_t max_series = 32);

    void note(int day, const enrich_info* info, std::uint64_t hits);

    /// Applies a batch of pre-aggregated rows under one mutex
    /// acquisition — the ingest hot path aggregates per datagram and
    /// calls this once, instead of note() per record.
    void note_many(const note_row* rows, std::size_t n);

    /// Sorted (records desc, asn asc) breakdown for `day`; forgets the
    /// day's rows, so each day is reported once.
    std::vector<asn_row> take_day(int day);

    /// Lifetime top-`n` rows (records desc, asn asc).
    std::vector<asn_row> top(std::size_t n) const;

    std::uint64_t matched() const noexcept {
        return matched_count_.load(std::memory_order_relaxed);
    }
    std::uint64_t unmatched() const noexcept {
        return unmatched_count_.load(std::memory_order_relaxed);
    }

private:
    struct cell {
        std::array<char, 2> country = {'-', '-'};
        std::uint64_t records = 0;
        std::uint64_t hits = 0;
    };

    obs::counter series_for(std::uint32_t asn);  // mutex_ held

    obs::registry* registry_ = nullptr;
    std::size_t max_series_;
    // Authoritative tallies; the obs counters mirror them for scrape.
    std::atomic<std::uint64_t> matched_count_{0}, unmatched_count_{0};
    obs::counter matched_, unmatched_;

    mutable std::mutex mutex_;
    std::map<int, std::map<std::uint32_t, cell>> days_;
    std::map<std::uint32_t, cell> lifetime_;
    std::map<std::uint32_t, obs::counter> series_;
    obs::counter other_series_;
};

/// Flushes one sealed day's per-ASN breakdown into the flight recorder:
/// the top `max_rows` rows (records desc — take_day()'s order) become
/// points on "v6class_asn_records" and "v6class_asn_hits", labeled
/// "AS<asn>" ("unrouted" for asn 0), at ts = `day`. Rows beyond
/// max_rows are rolled into an "other" label so the store's series
/// cardinality stays bounded no matter what the routing table does.
/// The caller commits (v6stream batches this with the seal flush).
void flush_day_asn(obs::tsdb::database& db, int day,
                   const std::vector<asn_row>& rows,
                   std::size_t max_rows = 16);

}  // namespace v6::net
