// telwire.h — the V6TEL1 telemetry remote-write format: the unit of
// exchange between a v6stream collector and a fleet aggregator
// (v6::obs::federate). Where v6wire (wire.h) carries *observations*
// toward a classifier, V6TEL1 carries *telemetry about a classifier* —
// metric snapshots, seal-derived series, serialized HLL/P² sketches,
// and leveled events — toward an aggregator that merges N nodes into
// one fleet view.
//
// Telemetry rides TCP, not UDP: a sketch frame is ~48 KiB (three
// precision-14 HLL register arrays) and the fleet union is only exact
// if every register array arrives intact, so the transport must not
// silently drop or truncate. Frames are length-prefixed on the stream:
//
//     u32 len (LE)  |  payload (len bytes)
//
// Payload layout (all multi-byte integers little-endian):
//
//     offset  size  field
//     ------  ----  --------------------------------------------
//          0     6  magic      "V6TEL1"
//          6     1  version    kTelVersion (1)
//          7     1  kind       1 status, 2 series, 3 sketches, 4 events
//          8     8  seq        per-node monotone frame sequence (u64)
//         16     2  node_len   sender identity length (u16, 1..256)
//         18     N  node       sender identity bytes
//        18+N        body      kind-specific (below)
//
// Every frame is self-contained — it carries the node identity — so the
// decoder is stateless across frames and an aggregator can attribute a
// frame without per-connection handshakes. Bodies:
//
//     status   u64 records | i64 open_day | i64 sealed_day | f64 unix_time
//     series   u32 count, then count × { u16 name_len, name,
//              u16 label_len, label, i64 ts, f64 value }
//     sketches i64 day | u8 count, then count × { u8 id, u8 stype,
//              u32 payload_len, payload }   (payload: sketch.h wire form)
//     events   u32 count, then count × { f64 unix_time, u8 level_len,
//              level, u16 kind_len, kind, u16 msg_len, msg, u16 nfields,
//              then nfields × { u16 key_len, key, u16 val_len, val } }
//
// Like wire.h, decode never throws and never reads out of bounds; every
// rejection increments exactly one per-reason counter. The length
// prefix is trusted only after a bounds check (kTelMaxFrame), and a bad
// prefix is fatal for the connection — a byte stream cannot be resynced
// once framing is lost — while a well-framed-but-malformed payload is
// counted and skipped with the stream still aligned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace v6::net {

inline constexpr std::uint8_t kTelMagic[6] = {'V', '6', 'T', 'E', 'L', '1'};
inline constexpr std::uint8_t kTelVersion = 1;
inline constexpr std::size_t kTelHeaderSize = 18;
/// Hard ceiling on one frame's payload: generous for a sketch frame
/// (~48 KiB at precision 14) yet small enough that a garbage length
/// prefix cannot make the aggregator buffer unbounded input.
inline constexpr std::size_t kTelMaxFrame = 4u << 20;
/// Node identities are operator-chosen short names, not documents.
inline constexpr std::size_t kTelMaxNode = 256;

enum : std::uint8_t {
    kTelKindStatus = 1,
    kTelKindSeries = 2,
    kTelKindSketches = 3,
    kTelKindEvents = 4,
};

/// Which engine sketch a tel_sketch entry carries.
enum : std::uint8_t {
    kTelSketchDayAddresses = 1,
    kTelSketchDay48s = 2,
    kTelSketchDay64s = 3,
    kTelSketchHitsP50 = 4,
    kTelSketchHitsP99 = 5,
};

/// Serialization family of a tel_sketch payload (see obs/sketch.h).
enum : std::uint8_t {
    kTelSketchTypeHll = 1,
    kTelSketchTypeP2 = 2,
};

/// kind 1: a node heartbeat — enough for last-seen/lag tracking.
struct tel_status {
    std::uint64_t records = 0;  ///< records ingested since node start
    std::int64_t open_day = 0;  ///< day currently being ingested (-1 none)
    std::int64_t sealed_day = 0;  ///< newest sealed day (-1 none)
    double unix_time = 0.0;       ///< sender wall clock at send
};

/// kind 2 element: one point of one named series.
struct tel_sample {
    std::string name;
    std::string label;  ///< "" or "key=value" as the tsdb stores it
    std::int64_t ts = 0;
    double value = 0.0;
};

/// kind 3 element: one serialized sketch (obs/sketch.h wire form).
struct tel_sketch {
    std::uint8_t id = 0;     ///< kTelSketch* identity
    std::uint8_t stype = 0;  ///< kTelSketchType*
    std::vector<std::uint8_t> payload;
};

/// kind 4 element: one leveled event, pre-rendered strings.
struct tel_event {
    double unix_time = 0.0;
    std::string level;
    std::string kind;
    std::string message;
    std::vector<std::pair<std::string, std::string>> fields;
};

/// One decoded frame. `kind` selects which body member is meaningful.
struct tel_frame {
    std::uint8_t kind = 0;
    std::uint64_t seq = 0;
    std::string node;
    tel_status status{};               ///< kind == kTelKindStatus
    std::vector<tel_sample> samples;   ///< kind == kTelKindSeries
    std::int64_t sketch_day = 0;       ///< kind == kTelKindSketches
    std::vector<tel_sketch> sketches;  ///< kind == kTelKindSketches
    std::vector<tel_event> events;     ///< kind == kTelKindEvents
};

/// Why a frame was rejected. Mirrors wire_decode_stats: decode
/// increments exactly one reject counter per rejection.
struct tel_decode_stats {
    std::uint64_t frames = 0;        ///< well-formed frames accepted
    std::uint64_t short_frame = 0;   ///< payload shorter than the header
    std::uint64_t bad_magic = 0;     ///< magic mismatch
    std::uint64_t bad_version = 0;   ///< version != kTelVersion
    std::uint64_t bad_kind = 0;      ///< kind outside [1, 4]
    std::uint64_t bad_node = 0;      ///< node_len 0, > kTelMaxNode, or past end
    std::uint64_t truncated = 0;     ///< body promises more bytes than present
    std::uint64_t trailing = 0;      ///< payload longer than its body
    std::uint64_t oversized = 0;     ///< stream length prefix > kTelMaxFrame
    std::uint64_t seq_gaps = 0;      ///< frames presumed lost (gap sum)
    std::uint64_t seq_reorder = 0;   ///< frames behind the high-water seq

    std::uint64_t rejected() const noexcept {
        return short_frame + bad_magic + bad_version + bad_kind + bad_node +
               truncated + trailing + oversized;
    }
};

namespace teldetail {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(out, bits);
}

inline std::uint16_t get_u16(const std::uint8_t* p) noexcept {
    return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

inline double get_f64(const std::uint8_t* p) noexcept {
    const std::uint64_t bits = get_u64(p);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

/// Bounds-checked sequential reader over one frame payload. Every get_*
/// checks remaining bytes first and latches `ok` false on underrun, so
/// a parse can run to completion branch-free and be validated once.
struct cursor {
    const std::uint8_t* p;
    std::size_t left;
    bool ok = true;

    bool take(std::size_t n) noexcept {
        if (!ok || left < n) return ok = false;
        return true;
    }
    std::uint8_t get_u8() noexcept {
        if (!take(1)) return 0;
        const std::uint8_t v = *p;
        p += 1, left -= 1;
        return v;
    }
    std::uint16_t get16() noexcept {
        if (!take(2)) return 0;
        const std::uint16_t v = get_u16(p);
        p += 2, left -= 2;
        return v;
    }
    std::uint32_t get32() noexcept {
        if (!take(4)) return 0;
        const std::uint32_t v = get_u32(p);
        p += 4, left -= 4;
        return v;
    }
    std::uint64_t get64() noexcept {
        if (!take(8)) return 0;
        const std::uint64_t v = get_u64(p);
        p += 8, left -= 8;
        return v;
    }
    double getf() noexcept {
        if (!take(8)) return 0.0;
        const double v = get_f64(p);
        p += 8, left -= 8;
        return v;
    }
    std::string get_string(std::size_t n) noexcept {
        if (!take(n)) return {};
        std::string s(reinterpret_cast<const char*>(p), n);
        p += n, left -= n;
        return s;
    }
    std::vector<std::uint8_t> get_bytes(std::size_t n) noexcept {
        if (!take(n)) return {};
        std::vector<std::uint8_t> b(p, p + n);
        p += n, left -= n;
        return b;
    }
};

}  // namespace teldetail

/// Encodes telemetry frames for one node, stamping a monotone sequence
/// number. Each encode_* appends `u32 len | payload` — the exact bytes
/// to write to the TCP stream — to `out` (cleared first). One encoder
/// per sender connection.
class tel_encoder {
public:
    explicit tel_encoder(std::string node) : node_(std::move(node)) {
        if (node_.empty()) node_ = "node";
        if (node_.size() > kTelMaxNode) node_.resize(kTelMaxNode);
    }

    const std::string& node() const noexcept { return node_; }
    std::uint64_t next_seq() const noexcept { return seq_; }

    void encode_status(const tel_status& s, std::vector<std::uint8_t>& out) {
        begin(kTelKindStatus, out);
        teldetail::put_u64(out, s.records);
        teldetail::put_u64(out, static_cast<std::uint64_t>(s.open_day));
        teldetail::put_u64(out, static_cast<std::uint64_t>(s.sealed_day));
        teldetail::put_f64(out, s.unix_time);
        finish(out);
    }

    void encode_series(const std::vector<tel_sample>& samples,
                       std::vector<std::uint8_t>& out) {
        begin(kTelKindSeries, out);
        teldetail::put_u32(out, static_cast<std::uint32_t>(samples.size()));
        for (const tel_sample& s : samples) {
            put_str16(out, s.name);
            put_str16(out, s.label);
            teldetail::put_u64(out, static_cast<std::uint64_t>(s.ts));
            teldetail::put_f64(out, s.value);
        }
        finish(out);
    }

    void encode_sketches(std::int64_t day,
                         const std::vector<tel_sketch>& sketches,
                         std::vector<std::uint8_t>& out) {
        begin(kTelKindSketches, out);
        teldetail::put_u64(out, static_cast<std::uint64_t>(day));
        out.push_back(static_cast<std::uint8_t>(sketches.size()));
        for (const tel_sketch& s : sketches) {
            out.push_back(s.id);
            out.push_back(s.stype);
            teldetail::put_u32(out,
                               static_cast<std::uint32_t>(s.payload.size()));
            out.insert(out.end(), s.payload.begin(), s.payload.end());
        }
        finish(out);
    }

    void encode_events(const std::vector<tel_event>& events,
                       std::vector<std::uint8_t>& out) {
        begin(kTelKindEvents, out);
        teldetail::put_u32(out, static_cast<std::uint32_t>(events.size()));
        for (const tel_event& e : events) {
            teldetail::put_f64(out, e.unix_time);
            put_str8(out, e.level);
            put_str16(out, e.kind);
            put_str16(out, e.message);
            teldetail::put_u16(out,
                               static_cast<std::uint16_t>(e.fields.size()));
            for (const auto& [k, v] : e.fields) {
                put_str16(out, k);
                put_str16(out, v);
            }
        }
        finish(out);
    }

private:
    void begin(std::uint8_t kind, std::vector<std::uint8_t>& out) {
        out.clear();
        teldetail::put_u32(out, 0);  // length prefix, patched by finish()
        out.insert(out.end(), kTelMagic, kTelMagic + sizeof kTelMagic);
        out.push_back(kTelVersion);
        out.push_back(kind);
        teldetail::put_u64(out, seq_++);
        put_str16(out, node_);
    }

    void finish(std::vector<std::uint8_t>& out) {
        const auto len = static_cast<std::uint32_t>(out.size() - 4);
        for (int i = 0; i < 4; ++i)
            out[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    }

    static void put_str8(std::vector<std::uint8_t>& out,
                         const std::string& s) {
        const std::size_t n = std::min<std::size_t>(s.size(), 255);
        out.push_back(static_cast<std::uint8_t>(n));
        out.insert(out.end(), s.data(), s.data() + n);
    }

    static void put_str16(std::vector<std::uint8_t>& out,
                          const std::string& s) {
        const std::size_t n = std::min<std::size_t>(s.size(), 65535);
        teldetail::put_u16(out, static_cast<std::uint16_t>(n));
        out.insert(out.end(), s.data(), s.data() + n);
    }

    std::string node_;
    std::uint64_t seq_ = 0;
};

/// Outcome of tel_decoder::pull on a stream reassembly buffer.
enum class tel_pull {
    frame,      ///< one frame decoded into `out`; call again
    need_more,  ///< buffer holds no complete frame yet; read more bytes
    reject,     ///< a complete frame was malformed (counted); stream OK
    fatal,      ///< framing itself is broken; drop the connection
};

/// Decodes V6TEL1 frames. decode() handles one already-extracted
/// payload; pull() additionally handles TCP stream reassembly against a
/// caller-owned buffer. Sequence-gap accounting uses the decoder's
/// high-water mark across calls, so use one decoder per connection.
class tel_decoder {
public:
    /// Decodes one frame payload (no length prefix). True: `out` is
    /// filled and stats.frames incremented. False: exactly one reject
    /// counter incremented, `out` unspecified.
    bool decode(const std::uint8_t* data, std::size_t len, tel_frame& out) {
        if (len < kTelHeaderSize) return ++stats_.short_frame, false;
        if (std::memcmp(data, kTelMagic, sizeof kTelMagic) != 0)
            return ++stats_.bad_magic, false;
        if (data[6] != kTelVersion) return ++stats_.bad_version, false;
        const std::uint8_t kind = data[7];
        if (kind < kTelKindStatus || kind > kTelKindEvents)
            return ++stats_.bad_kind, false;
        const std::uint64_t seq = teldetail::get_u64(data + 8);
        const std::uint16_t node_len = teldetail::get_u16(data + 16);
        if (node_len == 0 || node_len > kTelMaxNode ||
            kTelHeaderSize + node_len > len)
            return ++stats_.bad_node, false;

        teldetail::cursor c{data + kTelHeaderSize, len - kTelHeaderSize};
        out = tel_frame{};
        out.kind = kind;
        out.seq = seq;
        out.node = c.get_string(node_len);
        switch (kind) {
            case kTelKindStatus:
                out.status.records = c.get64();
                out.status.open_day = static_cast<std::int64_t>(c.get64());
                out.status.sealed_day = static_cast<std::int64_t>(c.get64());
                out.status.unix_time = c.getf();
                break;
            case kTelKindSeries: {
                const std::uint32_t count = c.get32();
                // An honest count never promises more entries than the
                // remaining bytes could hold (>= 20 B each) — reject
                // before reserving memory for a lying header.
                if (count > c.left / 20) { c.ok = false; break; }
                out.samples.reserve(count);
                for (std::uint32_t i = 0; c.ok && i < count; ++i) {
                    tel_sample s;
                    s.name = c.get_string(c.get16());
                    s.label = c.get_string(c.get16());
                    s.ts = static_cast<std::int64_t>(c.get64());
                    s.value = c.getf();
                    out.samples.push_back(std::move(s));
                }
                break;
            }
            case kTelKindSketches: {
                out.sketch_day = static_cast<std::int64_t>(c.get64());
                const std::uint8_t count = c.get_u8();
                out.sketches.reserve(count);
                for (std::uint8_t i = 0; c.ok && i < count; ++i) {
                    tel_sketch s;
                    s.id = c.get_u8();
                    s.stype = c.get_u8();
                    s.payload = c.get_bytes(c.get32());
                    out.sketches.push_back(std::move(s));
                }
                break;
            }
            case kTelKindEvents: {
                const std::uint32_t count = c.get32();
                if (count > c.left / 15) { c.ok = false; break; }
                out.events.reserve(count);
                for (std::uint32_t i = 0; c.ok && i < count; ++i) {
                    tel_event e;
                    e.unix_time = c.getf();
                    e.level = c.get_string(c.get_u8());
                    e.kind = c.get_string(c.get16());
                    e.message = c.get_string(c.get16());
                    const std::uint16_t nfields = c.get16();
                    for (std::uint16_t f = 0; c.ok && f < nfields; ++f) {
                        std::string k = c.get_string(c.get16());
                        std::string v = c.get_string(c.get16());
                        e.fields.emplace_back(std::move(k), std::move(v));
                    }
                    out.events.push_back(std::move(e));
                }
                break;
            }
        }
        if (!c.ok) return ++stats_.truncated, false;
        if (c.left != 0) return ++stats_.trailing, false;

        ++stats_.frames;
        if (seen_any_) {
            if (seq > high_seq_ + 1) stats_.seq_gaps += seq - high_seq_ - 1;
            else if (seq <= high_seq_) ++stats_.seq_reorder;
        }
        if (!seen_any_ || seq > high_seq_) high_seq_ = seq;
        seen_any_ = true;
        return true;
    }

    /// Extracts the next length-prefixed frame from `buffer` (a TCP
    /// reassembly buffer; consumed bytes are erased). Call in a loop
    /// until need_more. fatal means the length prefix itself is
    /// untrustworthy — close the connection; there is no resync.
    tel_pull pull(std::vector<std::uint8_t>& buffer, tel_frame& out) {
        if (buffer.size() < 4) return tel_pull::need_more;
        const std::uint32_t len = teldetail::get_u32(buffer.data());
        if (len > kTelMaxFrame || len < kTelHeaderSize) {
            ++stats_.oversized;
            return tel_pull::fatal;
        }
        if (buffer.size() < 4 + std::size_t{len}) return tel_pull::need_more;
        const bool good = decode(buffer.data() + 4, len, out);
        buffer.erase(buffer.begin(),
                     buffer.begin() + 4 + static_cast<std::ptrdiff_t>(len));
        return good ? tel_pull::frame : tel_pull::reject;
    }

    const tel_decode_stats& stats() const noexcept { return stats_; }

private:
    tel_decode_stats stats_;
    std::uint64_t high_seq_ = 0;
    bool seen_any_ = false;
};

}  // namespace v6::net
