// wire.h — the v6wire binary observation format: the unit of exchange
// between a measurement point (packet tap, log shipper, v6synth) and
// the classifier's network ingest front end.
//
// A live deployment cannot ship "day address hits" text at line rate —
// parsing dominates ingest and a UDP datagram of text lines has no
// integrity story. v6wire packs observations into fixed-size records
// batched N-per-datagram behind a tiny versioned header, so a collector
// can decode a datagram with four bounds checks and memcpy-sized loads,
// and a corrupt or truncated datagram is counted and skipped rather
// than misparsed.
//
// Datagram layout (all multi-byte integers little-endian):
//
//     offset  size  field
//     ------  ----  --------------------------------------------
//          0     4  magic      "V6W1" (0x56 0x36 0x57 0x31)
//          4     1  version    kWireVersion (1)
//          5     1  flags      reserved, must be 0
//          6     2  count      records in this datagram (u16)
//          8     8  seq        sender datagram sequence number (u64)
//         16   32N  records
//
//     record (32 bytes):
//          0    16  address    16 raw bytes, network byte order
//         16     4  day        log-processed day index (i32)
//         20     8  hits       aggregated hit count (u64)
//         28     4  flags      reserved, must be 0
//
// The sequence number is per sender and monotone; the collector detects
// loss by gaps (UDP reorder within a burst shows up as small negative
// jumps and is counted separately). 43 records fit a 1400-byte
// datagram, clear of any sane MTU.
//
// The file container (`v6synth --wire`, `v6stream --replay`) is the
// same datagrams length-prefixed behind an 8-byte file magic, so replay
// exercises the exact collector decode path byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "v6class/simd/address_block.h"
#include "v6class/stream/record.h"

namespace v6::net {

inline constexpr std::uint8_t kWireMagic[4] = {0x56, 0x36, 0x57, 0x31};  // "V6W1"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 16;
inline constexpr std::size_t kWireRecordSize = 32;
/// Records per datagram staying under a 1400-byte payload.
inline constexpr std::size_t kWireDefaultBatch = (1400 - kWireHeaderSize) / kWireRecordSize;
/// Decoder's hard ceiling on one datagram (64 KiB, the UDP maximum).
inline constexpr std::size_t kWireMaxDatagram = 65536;
/// Most records one datagram can carry and still fit kWireMaxDatagram.
inline constexpr std::size_t kWireMaxBatch =
    (kWireMaxDatagram - kWireHeaderSize) / kWireRecordSize;

/// File container magic: "V6WIREF1".
inline constexpr std::uint8_t kWireFileMagic[8] = {'V', '6', 'W', 'I', 'R', 'E', 'F', '1'};

/// Why a datagram (or a record inside one) was rejected. Every rejection
/// increments exactly one of these; decode never throws and never reads
/// out of bounds.
struct wire_decode_stats {
    std::uint64_t datagrams = 0;      ///< well-formed datagrams accepted
    std::uint64_t records = 0;        ///< records decoded from them
    std::uint64_t short_header = 0;   ///< datagram shorter than the header
    std::uint64_t bad_magic = 0;      ///< magic mismatch
    std::uint64_t bad_version = 0;    ///< version != kWireVersion
    std::uint64_t bad_flags = 0;      ///< reserved header flags set
    std::uint64_t truncated = 0;      ///< count promises more bytes than present
    std::uint64_t trailing = 0;       ///< datagram longer than 16 + 32*count
    std::uint64_t seq_gaps = 0;       ///< datagrams presumed lost (gap sum)
    std::uint64_t seq_reorder = 0;    ///< datagrams arriving behind the high-water seq

    std::uint64_t rejected() const noexcept {
        return short_header + bad_magic + bad_version + bad_flags + truncated + trailing;
    }
};

/// Encodes batches of stream records into datagrams, stamping a monotone
/// sequence number. One encoder per sender stream.
class wire_encoder {
public:
    explicit wire_encoder(std::size_t batch = kWireDefaultBatch) noexcept
        : batch_(batch == 0 ? 1 : batch) {}

    std::size_t batch() const noexcept { return batch_; }
    std::uint64_t next_seq() const noexcept { return seq_; }

    /// Appends one datagram of min(batch, n) records from `records` to
    /// `out` (which is cleared first). Returns how many were consumed.
    std::size_t encode(const stream_record* records, std::size_t n,
                       std::vector<std::uint8_t>& out);

    /// Encodes the whole span as consecutive datagrams, invoking `sink`
    /// per datagram. Returns the number of datagrams produced.
    std::size_t encode_all(const std::vector<stream_record>& records,
                           const std::function<void(const std::vector<std::uint8_t>&)>& sink);

private:
    std::size_t batch_;
    std::uint64_t seq_ = 0;
};

/// Decodes one datagram, appending records to `out`. Returns true when
/// the datagram was well-formed (records appended, stats.datagrams and
/// stats.records incremented); false when rejected (one reject counter
/// incremented, nothing appended). Sequence-gap accounting uses the
/// decoder's high-water mark across calls; a fresh decoder expects the
/// first datagram to carry any seq.
class wire_decoder {
public:
    bool decode(const std::uint8_t* data, std::size_t len,
                std::vector<stream_record>& out);

    /// Block-path overload: appends straight into SoA lanes (hi/lo u64
    /// pairs plus day/hits columns), skipping the per-record address
    /// materialisation. Validation, stats, and sequence accounting are
    /// byte-identical to the vector overload.
    bool decode(const std::uint8_t* data, std::size_t len,
                simd::record_block& out);

    const wire_decode_stats& stats() const noexcept { return stats_; }

private:
    /// Shared header/bounds/sequence validation. On acceptance sets
    /// `count` and bumps the datagram/record tallies; on rejection bumps
    /// exactly one reject counter and returns false.
    bool accept(const std::uint8_t* data, std::size_t len, std::size_t& count);

    wire_decode_stats stats_;
    std::uint64_t high_seq_ = 0;
    bool seen_any_ = false;
};

// ------------------------------------------------------------ files

/// Writes a v6wire file: the 8-byte file magic, then each datagram
/// prefixed by a u32 LE length.
class wire_file_writer {
public:
    /// Opens (truncates) `path`; valid() reports failure.
    explicit wire_file_writer(const std::string& path);
    ~wire_file_writer();

    wire_file_writer(const wire_file_writer&) = delete;
    wire_file_writer& operator=(const wire_file_writer&) = delete;

    bool valid() const noexcept { return out_ != nullptr; }
    void append(const std::vector<std::uint8_t>& datagram);
    std::uint64_t datagrams() const noexcept { return datagrams_; }

    /// Flushes and closes; returns false on any I/O error so far.
    bool close();

private:
    std::FILE* out_ = nullptr;
    std::uint64_t datagrams_ = 0;
    bool error_ = false;
};

/// Reads a v6wire file datagram by datagram. Length prefixes beyond
/// kWireMaxDatagram, a bad file magic, or a truncated tail stop the
/// reader with an error message rather than feeding garbage downstream.
class wire_file_reader {
public:
    explicit wire_file_reader(const std::string& path);
    ~wire_file_reader();

    wire_file_reader(const wire_file_reader&) = delete;
    wire_file_reader& operator=(const wire_file_reader&) = delete;

    bool valid() const noexcept { return in_ != nullptr && error_.empty(); }
    const std::string& error() const noexcept { return error_; }

    /// Reads the next datagram into `out` (cleared first). Returns false
    /// at end of file or on error (check error()).
    bool next(std::vector<std::uint8_t>& out);

private:
    std::FILE* in_ = nullptr;
    std::string error_;
};

/// Convenience: encodes `records` into a v6wire file at `path` with the
/// given per-datagram batch. Returns datagrams written, or nullopt on
/// I/O failure.
std::optional<std::uint64_t> write_wire_file(const std::string& path,
                                             const std::vector<stream_record>& records,
                                             std::size_t batch = kWireDefaultBatch);

// ------------------------------------------------------------ pcap

/// Outcome of scanning a pcap capture for v6wire datagrams.
struct pcap_scan_stats {
    std::uint64_t packets = 0;       ///< capture records seen
    std::uint64_t udp_payloads = 0;  ///< UDP payloads delivered to the sink
    std::uint64_t skipped = 0;       ///< non-UDP / non-IP / port-filtered packets
    std::uint64_t malformed = 0;     ///< capture records that fail bounds checks
};

/// Extracts UDP payloads from a pcap savefile (classic libpcap format,
/// either endianness, micro- or nanosecond variant; Ethernet, raw-IP,
/// and Linux cooked v1 link types). `port` filters on the UDP
/// destination port (0 = deliver every UDP payload). The sink receives
/// (payload, length) per packet — feed it a wire_decoder to replay a
/// capture through the collector's decode path. Returns nullopt with
/// `error` set when the file cannot be opened or its global header is
/// not pcap.
std::optional<pcap_scan_stats> pcap_extract_udp(
    const std::string& path, std::uint16_t port,
    const std::function<void(const std::uint8_t*, std::size_t)>& sink,
    std::string* error);

}  // namespace v6::net
