// replay.h — drives recorded wire traffic back through the ingest
// pipeline: v6wire files and pcap captures into a local engine (through
// the same decoder and enrichment path the live collector uses), or
// v6wire files onto the network as real UDP datagrams.
//
// Pacing: with rate == 0 the driver pushes at line rate (as fast as
// the engine's backpressure admits). With rate > 0 it tracks a target
// of `rate` records per second from the start of the replay and sleeps
// in short slices whenever it runs ahead — short, so a stop flag (the
// tool's SIGINT handler) is honoured within ~50 ms even at 1 rec/s.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>

#include "v6class/net/enrich.h"
#include "v6class/net/wire.h"
#include "v6class/stream/engine.h"

namespace v6::net {

struct replay_options {
    double rate = 0;                ///< records/second; 0 = line rate
    std::uint16_t pcap_port = 0;    ///< pcap UDP dst-port filter (0 = all)
    /// Checked between datagrams and inside pacing sleeps; non-null and
    /// non-zero stops the replay cleanly (partial result, stopped=true).
    const volatile std::sig_atomic_t* stop = nullptr;
};

struct replay_result {
    std::uint64_t datagrams = 0;  ///< datagrams read from the source
    std::uint64_t records = 0;    ///< records decoded / sent
    std::uint64_t bytes = 0;      ///< datagram payload bytes
    wire_decode_stats decode;     ///< decode-side rejects (file/pcap replay)
    pcap_scan_stats pcap;         ///< pcap replay only
    bool stopped = false;         ///< the stop flag cut the replay short
    std::string error;            ///< non-empty: file-level failure

    bool ok() const noexcept { return error.empty(); }
};

/// Replays a v6wire file into the engine through the wire decoder and
/// the enrichment path (identical to the collector from the decoder
/// on). `enrich` / `ledger` may be null.
replay_result replay_wire_file(const std::string& path, stream_engine& engine,
                               enrichment* enrich, asn_ledger* ledger,
                               const replay_options& opt = {});

/// Replays the v6wire datagrams found in a pcap capture's UDP payloads.
replay_result replay_pcap_file(const std::string& path, stream_engine& engine,
                               enrichment* enrich, asn_ledger* ledger,
                               const replay_options& opt = {});

/// Sends a v6wire file's datagrams to [host]:port over UDP (the
/// load-generator side of the loopback e2e). Pacing as above, by the
/// record count inside each datagram.
replay_result send_wire_file(const std::string& path, const std::string& host,
                             std::uint16_t port, const replay_options& opt = {});

}  // namespace v6::net
