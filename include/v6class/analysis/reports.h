// reports.h — builders for the paper's tables and figure data.
//
// Every bench binary is a thin driver over these: the builders take the
// simulated logs/datasets and emit the same rows (or plotted series) the
// paper reports, so EXPERIMENTS.md can be filled by running bench/*.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "v6class/cdnsim/log.h"
#include "v6class/netgen/rir_registry.h"
#include "v6class/spatial/boxplot.h"
#include "v6class/spatial/density.h"
#include "v6class/spatial/population.h"

namespace v6 {

// ------------------------------------------------------------- Table 1

/// One column of Table 1 ("Address characteristics per day/week").
struct table1_column {
    std::string label;
    std::uint64_t teredo = 0;
    std::uint64_t isatap = 0;
    std::uint64_t six_to_four = 0;
    std::uint64_t other = 0;
    std::uint64_t other_64s = 0;
    double addrs_per_64 = 0.0;
    std::uint64_t eui64_not_6to4 = 0;
    std::uint64_t eui64_unique_macs = 0;

    std::uint64_t total() const noexcept {
        return teredo + isatap + six_to_four + other;
    }
};

/// Builds one column from a set of distinct active addresses.
table1_column build_table1_column(std::string label,
                                  const std::vector<address>& addrs);

/// Renders columns side by side in the paper's row layout.
std::string render_table1(const std::vector<table1_column>& columns);

// ------------------------------------------------------------- Table 2

/// One column of a Table 2 sub-table (stability of addresses or /64s).
struct stability_column {
    std::string label;
    std::uint64_t stable_3d = 0;
    std::uint64_t not_stable_3d = 0;
    std::uint64_t stable_6m = 0;  ///< 0 when no -6m epoch exists
    std::uint64_t stable_1y = 0;  ///< 0 when no -1y epoch exists
    bool has_6m = false;
    bool has_1y = false;
};

std::string render_table2(const std::vector<stability_column>& columns,
                          const std::string& unit_name);

// ------------------------------------------------------------- Table 3

/// Renders Table 3 rows built by compute_density_table().
std::string render_table3(const std::vector<density_row>& rows,
                          const std::string& dataset_name);

// -------------------------------------------------- ASN / BGP grouping

/// Addresses grouped by origin ASN (unrouted addresses are dropped).
std::map<std::uint32_t, std::vector<address>> group_by_asn(
    const rir_registry& registry, const std::vector<address>& addrs);

/// Addresses grouped by covering BGP prefix.
std::map<prefix, std::vector<address>> group_by_bgp_prefix(
    const rir_registry& registry, const std::vector<address>& addrs);

// ----------------------------------------------------------- Figure 5b

/// Distribution of the 16-bit-segment MRA ratios across groups (one
/// sample per group per segment): eight box plots, one per segment.
std::vector<boxplot_summary> segment_ratio_distribution(
    const std::map<prefix, std::vector<address>>& groups);

/// Renders one CCDF as aligned "x  proportion" text lines, downsampled
/// to at most `max_points` rows.
std::string render_ccdf(const std::vector<ccdf_point>& ccdf,
                        std::size_t max_points = 24);

}  // namespace v6
