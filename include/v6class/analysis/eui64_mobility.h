// eui64_mobility.h — why stable devices show unstable addresses.
//
// Section 6.1.1 investigates the EUI-64 addresses classified "not
// 3d-stable": the IID is static, so instability must come from the
// network identifier — the device moved networks, or the operator
// assigns a new subnet prefix per connection. The paper reports that in
// 62% of such addresses the IID appeared in more than one address, and
// for 14% the same IID also appeared in a 3d-stable address. This module
// computes exactly those statistics from a classified window.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/temporal/stability.h"

namespace v6 {

/// The Section 6.1.1 statistics over one observation window.
struct eui64_mobility_report {
    /// EUI-64 addresses on the reference day classified not 3d-stable.
    std::uint64_t unstable_eui64_addresses = 0;
    /// ...whose IID appeared in more than one address across the window
    /// (the paper: 62%).
    std::uint64_t iid_in_multiple_addresses = 0;
    /// ...whose IID also appeared in some 3d-stable address (the paper:
    /// 14%).
    std::uint64_t iid_also_stable = 0;
    /// EUI-64 addresses on the reference day classified 3d-stable, for
    /// context.
    std::uint64_t stable_eui64_addresses = 0;

    double multiple_share() const noexcept {
        return unstable_eui64_addresses
                   ? static_cast<double>(iid_in_multiple_addresses) /
                         static_cast<double>(unstable_eui64_addresses)
                   : 0.0;
    }
    double also_stable_share() const noexcept {
        return unstable_eui64_addresses
                   ? static_cast<double>(iid_also_stable) /
                         static_cast<double>(unstable_eui64_addresses)
                   : 0.0;
    }
};

/// Computes the report: classifies `ref_day` within `series` (which must
/// cover the stability window) and cross-references EUI-64 IIDs across
/// every address seen anywhere in the window.
eui64_mobility_report analyze_eui64_mobility(const daily_series& series,
                                             int ref_day, unsigned n = 3,
                                             stability_options options = {});

}  // namespace v6
