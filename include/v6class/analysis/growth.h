// growth.h — decomposing address-count growth into churn and expansion.
//
// Table 1 shows the active population doubling over the study year, but
// a day-over-day view is needed to tell *why*: privacy churn mints new
// addresses every day without any new users, while subscriber growth
// adds new /64s. This module measures both rates so the growth the
// paper reports at 6-month grain can be decomposed at daily grain.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/temporal/daily_series.h"

namespace v6 {

/// Day-over-day composition of one day's active set.
struct churn_day {
    int day = 0;
    std::uint64_t active = 0;     ///< distinct addresses this day
    std::uint64_t returning = 0;  ///< also active the previous day
    std::uint64_t fresh = 0;      ///< never seen earlier in the window
    std::uint64_t revenant = 0;   ///< seen earlier, but not yesterday

    double fresh_share() const noexcept {
        return active ? static_cast<double>(fresh) / static_cast<double>(active)
                      : 0.0;
    }
};

/// Per-day churn rows over a series' recorded days (the first recorded
/// day has no "yesterday" and is skipped). Works for addresses or for
/// prefixes via daily_series::project().
std::vector<churn_day> churn_analysis(const daily_series& series);

/// Epoch growth decomposition between two days far apart.
struct growth_report {
    std::uint64_t early_active = 0;
    std::uint64_t late_active = 0;
    double growth_factor = 0.0;   ///< late / early
    std::uint64_t common = 0;     ///< active on both days
    double survivor_share = 0.0;  ///< common / early: how much persisted
};

growth_report epoch_growth(const daily_series& series, int early_day,
                           int late_day);

}  // namespace v6
