// format.h — human-readable report formatting used by every bench: the
// paper's count style ("13.7M", "1.81B", "588K"), percentages, and an
// aligned text table builder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace v6 {

/// Formats a count the way the paper's tables do: three significant
/// digits with K/M/B/T magnitude suffixes; exact below 1000.
std::string format_count(double value);

/// Formats a fraction as a percentage with three significant digits,
/// e.g. 0.0922 -> "9.22%", 0.00103 -> ".103%".
std::string format_pct(double fraction);

/// Fixed-precision helper, e.g. format_fixed(2.4136, 2) -> "2.41".
std::string format_fixed(double value, int digits);

/// A simple aligned monospace table.
class text_table {
public:
    explicit text_table(std::vector<std::string> headers);

    /// Adds one row; missing cells render empty, extra cells are an error.
    void add_row(std::vector<std::string> cells);

    /// Renders with column alignment (first column left, rest right).
    std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace v6
