// network_profile.h — per-network addressing-practice inference.
//
// Section 7.1's conclusion: counting active /64s miscounts subscribers
// by up to 100x in either direction, so any census must first determine
// each network's addressing practice from the outside. This module
// implements that determination: for each origin ASN it measures the
// temporal and spatial fingerprints the paper developed, classifies the
// practice, and derives a practice-aware subscriber estimate.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "v6class/netgen/rir_registry.h"
#include "v6class/temporal/daily_series.h"

namespace v6 {

/// The addressing practice inferred for one network.
enum class practice_guess : std::uint8_t {
    dynamic_64_pool,        ///< /64s reassigned per association (mobile-style)
    static_per_subscriber,  ///< stable /64 (or /48) per subscriber
    shared_dense,           ///< many users packed into few dense /64s
    privacy_sparse,         ///< privacy-addressed hosts over stable subnets
    unknown,                ///< not enough evidence
};

std::string_view to_string(practice_guess g) noexcept;

/// The measured fingerprint and derived classification of one ASN.
struct network_profile {
    std::uint32_t asn = 0;

    // Volume over the observation window.
    std::uint64_t window_addresses = 0;  ///< distinct addresses, whole window
    std::uint64_t window_64s = 0;        ///< distinct /64s, whole window
    std::uint64_t daily_addresses = 0;   ///< distinct addresses, reference day
    std::uint64_t daily_64s = 0;         ///< distinct /64s, reference day
    double addrs_per_64 = 0.0;           ///< daily

    // Content mix on the reference day.
    double pseudorandom_share = 0.0;  ///< privacy-looking IIDs
    double eui64_share = 0.0;
    double low_iid_share = 0.0;

    // Temporal fingerprint.
    double stable_share_3d = 0.0;      ///< of reference-day addresses
    double stable_64_share_3d = 0.0;   ///< of reference-day /64s

    // Spatial fingerprints.
    double turnover_64 = 0.0;  ///< window /64s over daily /64s (context only:
                               ///< bounded pools and intermittent static
                               ///< subscribers overlap on this metric)
    double dense_112_share = 0.0;  ///< daily addrs inside 2@/112-dense blocks

    // Device-beacon fingerprint (the Section 7.2 method): EUI-64 IIDs
    // tracked across the window reveal whether devices keep their /64.
    std::uint64_t beacon_devices = 0;   ///< EUI-64 devices seen on 2+ days
    std::uint64_t beacon_max_64s = 0;   ///< most /64s any one device visited
    unsigned beacon_modal_length = 0;   ///< modal longest-stable-prefix length

    practice_guess guess = practice_guess::unknown;

    /// Practice-aware subscriber estimate (Section 7.1): static plans
    /// count daily /64s; dynamic pools discount /64 turnover; shared
    /// plans count addresses. Zero when unknown.
    double subscriber_estimate = 0.0;

    /// The naive estimate the paper warns about, for contrast.
    double naive_64_estimate = 0.0;
};

/// Profiles every ASN with activity in `series` (native addresses;
/// transition mechanisms should be culled by the caller). The window is
/// all recorded days; `ref_day` must be one of them.
std::vector<network_profile> profile_networks(const rir_registry& registry,
                                              const daily_series& series,
                                              int ref_day);

}  // namespace v6
