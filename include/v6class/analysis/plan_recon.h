// plan_recon.h — automatic discovery of stable network-identifier
// prefixes (the paper's Section 7.2 proposal, implemented here as an
// extension).
//
// Persistent, unique EUI-64 interface identifiers act as beacons: when
// the same MAC appears under several network identifiers over time, the
// longest prefix common to those network identifiers is — with high
// probability — a stable aggregate of the operator's address plan. The
// distribution of those "longest stable prefix" lengths discriminates
// addressing practices: a static-/48 ISP yields lengths of 64 (each
// device stays in one /64); an ISP that renumbers a pseudorandom field
// at bit 41 yields lengths just above 40; a mobile pool yields lengths
// near the BGP prefix.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "v6class/ip/mac.h"
#include "v6class/ip/prefix.h"

namespace v6 {

/// Accumulates EUI-64 sightings across daily observations and derives
/// per-device stable prefixes.
class plan_reconstructor {
public:
    /// Feeds one day's distinct active addresses; non-EUI-64 addresses
    /// are ignored.
    void observe_day(const std::vector<address>& addrs);

    /// What one tracked device (MAC) revealed.
    struct device_track {
        mac_address mac;
        unsigned days_seen = 0;
        unsigned distinct_64s = 0;
        /// Longest prefix common to every network identifier this device
        /// appeared under: the device's stable prefix.
        prefix stable_prefix;
    };

    /// Per-device summaries, restricted to devices seen on at least
    /// `min_days` days (the temporal filter: one sighting proves
    /// nothing). Order is unspecified but deterministic.
    std::vector<device_track> device_tracks(unsigned min_days = 2) const;

    /// The longest-stable-prefix report: distinct stable prefixes of the
    /// devices passing the temporal filter, with the count of devices
    /// agreeing on each, most-agreed-upon first. These are likely
    /// aggregates of the operators' routing/address plans.
    struct stable_aggregate {
        prefix pfx;
        std::uint64_t devices = 0;
    };
    std::vector<stable_aggregate> longest_stable_prefixes(
        unsigned min_days = 2, std::uint64_t min_devices = 1) const;

    /// Histogram of stable-prefix lengths (index = length 0..128) over
    /// devices passing the filter — the practice fingerprint described
    /// in the header comment.
    std::vector<std::uint64_t> length_histogram(unsigned min_days = 2) const;

    std::size_t tracked_devices() const noexcept { return tracks_.size(); }

private:
    struct raw_track {
        unsigned days_seen = 0;
        std::unordered_set<std::uint64_t> network_ids;  // hi() of each /64
    };
    std::unordered_map<std::uint64_t, raw_track> tracks_;  // by MAC value
};

}  // namespace v6
