// mac.h — IEEE 802 MAC addresses and modified-EUI-64 interface identifiers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace v6 {

/// A 48-bit IEEE 802 MAC address.
///
/// Used for decoding (and, in the traffic generators, encoding) SLAAC
/// modified-EUI-64 interface identifiers as specified by RFC 4291
/// Appendix A: the MAC is split around an inserted 0xFFFE, and the
/// universal/local ("u") bit — bit 6 of the leading IID byte — is
/// inverted relative to the MAC's own u/l bit.
class mac_address {
public:
    constexpr mac_address() noexcept : octets_{} {}
    explicit constexpr mac_address(const std::array<std::uint8_t, 6>& o) noexcept
        : octets_(o) {}

    /// Constructs from the low 48 bits of `v` (OUI in the high bytes).
    static constexpr mac_address from_uint(std::uint64_t v) noexcept {
        std::array<std::uint8_t, 6> o{};
        for (int i = 0; i < 6; ++i)
            o[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (40 - 8 * i));
        return mac_address{o};
    }

    constexpr const std::array<std::uint8_t, 6>& octets() const noexcept { return octets_; }

    /// The MAC as a 48-bit integer, OUI in the high bytes.
    constexpr std::uint64_t to_uint() const noexcept {
        std::uint64_t v = 0;
        for (std::uint8_t o : octets_) v = (v << 8) | o;
        return v;
    }

    /// True when the locally-administered bit of the MAC is set.
    constexpr bool locally_administered() const noexcept { return (octets_[0] & 0x02) != 0; }

    /// The modified-EUI-64 interface identifier for this MAC: MAC halves
    /// around 0xFFFE with the u/l bit inverted.
    constexpr std::uint64_t to_eui64_iid() const noexcept {
        const std::uint64_t m = to_uint();
        const std::uint64_t oui = m >> 24;            // high 3 octets
        const std::uint64_t nic = m & 0xffffffull;    // low 3 octets
        std::uint64_t iid = (oui << 40) | (0xfffeull << 24) | nic;
        iid ^= 0x0200000000000000ull;  // invert the u/l bit
        return iid;
    }

    /// Recovers the MAC from a modified-EUI-64 IID, or nullopt when the
    /// IID does not carry the 0xFFFE marker.
    static constexpr std::optional<mac_address> from_eui64_iid(std::uint64_t iid) noexcept {
        if (((iid >> 24) & 0xffff) != 0xfffe) return std::nullopt;
        const std::uint64_t flipped = iid ^ 0x0200000000000000ull;
        const std::uint64_t oui = flipped >> 40;
        const std::uint64_t nic = flipped & 0xffffffull;
        return from_uint((oui << 24) | nic);
    }

    /// "00:11:22:33:44:55" presentation.
    std::string to_string() const;

    friend constexpr auto operator<=>(const mac_address&, const mac_address&) = default;

private:
    std::array<std::uint8_t, 6> octets_;
};

struct mac_hash {
    std::size_t operator()(const mac_address& m) const noexcept {
        return static_cast<std::size_t>(m.to_uint() * 0x9e3779b97f4a7c15ull);
    }
};

}  // namespace v6
