// io.h — line-oriented text I/O for address datasets.
//
// The operational interchange format for address studies is one address
// per line (optionally with a count), exactly the paper's aggregated-log
// shape and the input format of tools like addr6. These helpers read and
// write it with explicit error accounting — a malformed line is
// reported, not silently dropped and not fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/ip/prefix.h"

namespace v6 {

/// One malformed line, with its position for actionable diagnostics.
struct read_error {
    std::uint64_t line_number = 0;  ///< 1-based line within the input
    std::string text;               ///< the offending line, verbatim
};

/// Outcome of reading a dataset.
struct read_report {
    std::uint64_t lines = 0;         ///< total lines seen
    std::uint64_t parsed = 0;        ///< lines yielding an address
    std::uint64_t blank = 0;         ///< empty / whitespace-only lines
    std::uint64_t comments = 0;      ///< lines starting with '#'
    std::uint64_t malformed = 0;     ///< lines that failed to parse
    std::vector<read_error> first_errors;  ///< up to 8 samples, for messages
};

/// Reads "address[<whitespace>count]" lines from a stream; invokes `sink`
/// for each parsed record. Count defaults to 1 when absent; a present but
/// unparsable count makes the line malformed.
read_report read_address_lines(
    std::istream& in,
    const std::function<void(const address&, std::uint64_t count)>& sink);

/// Convenience: read just the addresses (counts ignored) into a vector.
read_report read_addresses(std::istream& in, std::vector<address>& out);

/// Writes one canonical address per line.
void write_addresses(std::ostream& out, const std::vector<address>& addrs);

/// Writes "address count" lines.
void write_address_counts(
    std::ostream& out,
    const std::vector<std::pair<address, std::uint64_t>>& records);


/// Reads "prefix[<whitespace>value]" lines (e.g. a BGP route dump:
/// "2001:db8::/32 64500"). The optional value defaults to 0.
read_report read_prefix_lines(
    std::istream& in,
    const std::function<void(const prefix&, std::uint64_t value)>& sink);

/// Writes "prefix value" lines.
void write_prefix_values(
    std::ostream& out,
    const std::vector<std::pair<prefix, std::uint64_t>>& records);

}  // namespace v6
