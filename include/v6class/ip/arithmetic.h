// arithmetic.h — 128-bit address arithmetic and iterable ranges.
//
// Scanning dense blocks, carving allocations, and walking provisioning
// ranges all need "address + offset" and "how far apart" on the full
// 128-bit space; this header supplies them without exposing any
// compiler-specific 128-bit integer in the public API.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>

#include "v6class/ip/prefix.h"

namespace v6 {

/// a + offset, wrapping modulo 2^128 (offset applies to the low bits).
address address_add(const address& a, std::uint64_t offset) noexcept;

/// The address immediately after `a` (wraps at the top of the space).
inline address address_next(const address& a) noexcept { return address_add(a, 1); }

/// b - a when it fits in 64 bits (b >= a and the gap < 2^64); nullopt
/// otherwise.
std::optional<std::uint64_t> address_distance(const address& a,
                                              const address& b) noexcept;

/// A half-open, forward-iterable span of addresses [first, first+count).
/// Count is capped at 2^64-1, far beyond any practical scan.
class address_range {
public:
    class iterator {
    public:
        using value_type = address;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;
        using pointer = const address*;
        using reference = const address&;

        iterator() = default;
        iterator(address current, std::uint64_t remaining) noexcept
            : current_(current), remaining_(remaining) {}

        const address& operator*() const noexcept { return current_; }
        const address* operator->() const noexcept { return &current_; }
        iterator& operator++() noexcept {
            current_ = address_next(current_);
            --remaining_;
            return *this;
        }
        iterator operator++(int) noexcept {
            iterator copy = *this;
            ++*this;
            return copy;
        }
        friend bool operator==(const iterator& a, const iterator& b) noexcept {
            return a.remaining_ == b.remaining_;
        }

    private:
        address current_;
        std::uint64_t remaining_ = 0;
    };

    address_range() = default;
    address_range(address first, std::uint64_t count) noexcept
        : first_(first), count_(count) {}

    /// Every address of a prefix. Prefixes of /64 and shorter exceed the
    /// 2^64-1 count cap; they are clamped to the first 2^64-1 addresses
    /// and flagged via clamped().
    explicit address_range(const prefix& p) noexcept
        : first_(p.first_address()),
          count_(p.length() >= 65 ? (std::uint64_t{1} << (128 - p.length()))
                                  : ~std::uint64_t{0}),
          clamped_(p.length() < 65) {}

    iterator begin() const noexcept { return {first_, count_}; }
    iterator end() const noexcept { return {address{}, 0}; }
    std::uint64_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }
    bool clamped() const noexcept { return clamped_; }

private:
    address first_;
    std::uint64_t count_ = 0;
    bool clamped_ = false;
};

}  // namespace v6
