// ipv4.h — a minimal IPv4 address value type.
//
// IPv6 measurement keeps bumping into IPv4: 6to4 and Teredo embed client
// IPv4 addresses, ISATAP embeds them in the IID, and ad hoc schemes
// place them anywhere (Section 3). This type gives those embedded values
// a real identity instead of a bare uint32_t.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace v6 {

/// A 32-bit IPv4 address, host byte order internally.
class ipv4_address {
public:
    constexpr ipv4_address() noexcept : value_(0) {}
    explicit constexpr ipv4_address(std::uint32_t value) noexcept : value_(value) {}

    /// Parses strict dotted-quad ("192.0.2.33"); rejects leading zeroes
    /// and out-of-range octets.
    static std::optional<ipv4_address> parse(std::string_view text) noexcept;

    /// Like parse() but throws std::invalid_argument.
    static ipv4_address must_parse(std::string_view text);

    constexpr std::uint32_t value() const noexcept { return value_; }
    constexpr unsigned octet(unsigned i) const noexcept {
        return (value_ >> (24 - 8 * i)) & 0xff;
    }

    /// True for globally routable space (not RFC 1918, loopback,
    /// link-local, multicast, or reserved).
    constexpr bool is_global() const noexcept {
        const unsigned o0 = octet(0);
        if (o0 == 0 || o0 == 10 || o0 == 127 || o0 >= 224) return false;
        if (o0 == 172 && octet(1) >= 16 && octet(1) <= 31) return false;
        if (o0 == 192 && octet(1) == 168) return false;
        if (o0 == 169 && octet(1) == 254) return false;
        if (o0 == 100 && octet(1) >= 64 && octet(1) <= 127) return false;  // CGN
        return true;
    }

    /// "192.0.2.33" presentation.
    std::string to_string() const;

    friend constexpr auto operator<=>(const ipv4_address&, const ipv4_address&) =
        default;

private:
    std::uint32_t value_;
};

}  // namespace v6
