// prefix.h — IPv6 prefix (CIDR aggregate) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "v6class/ip/address.h"

namespace v6 {

/// An IPv6 prefix: a base address plus a length in bits (0..128).
///
/// Prefixes are kept canonical — host bits (positions >= length) are
/// always zero — so equality and ordering behave as expected for
/// aggregates. Ordering is lexicographic by (address, length), which for
/// canonical prefixes places a covering prefix immediately before the
/// prefixes it covers.
class prefix {
public:
    /// The whole address space, ::/0.
    constexpr prefix() noexcept : addr_{}, length_{0} {}

    /// Canonicalizing constructor: masks `addr` to `length` bits.
    /// Precondition: length <= 128.
    prefix(const address& addr, unsigned length) noexcept
        : addr_(addr.masked(length)), length_(static_cast<std::uint8_t>(length)) {}

    /// Parses "2001:db8::/32". A bare address parses as a /128.
    static std::optional<prefix> parse(std::string_view text) noexcept;

    /// Like parse() but throws std::invalid_argument.
    static prefix must_parse(std::string_view text);

    constexpr const address& base() const noexcept { return addr_; }
    constexpr unsigned length() const noexcept { return length_; }

    /// First (== base) and last addresses covered.
    const address& first_address() const noexcept { return addr_; }
    address last_address() const noexcept { return addr_.masked_upper(length_); }

    /// True when `a` falls inside this prefix.
    bool contains(const address& a) const noexcept {
        return a.masked(length_) == addr_;
    }

    /// True when `other` is equal to or more specific than this prefix.
    bool contains(const prefix& other) const noexcept {
        return other.length_ >= length_ && contains(other.addr_);
    }

    /// Number of addresses covered, as a long double (exact up to /64,
    /// correctly rounded beyond). 2^(128-length).
    long double count() const noexcept;

    /// Number of addresses covered when it fits in 64 bits, i.e. for
    /// lengths >= 64; nullopt otherwise.
    std::optional<std::uint64_t> count64() const noexcept {
        if (length_ < 64) return std::nullopt;
        if (length_ == 64) return std::nullopt;  // 2^64 does not fit
        return std::uint64_t{1} << (128 - length_);
    }

    /// The immediately covering prefix (one bit shorter). Precondition:
    /// length() > 0.
    prefix parent() const noexcept { return prefix{addr_, length_ - 1u}; }

    /// The two halves of this prefix (one bit longer). Precondition:
    /// length() < 128. `which` selects the 0-branch or the 1-branch.
    prefix child(unsigned which) const noexcept {
        address a = addr_.with_bit(length_, which);
        return prefix{a, length_ + 1u};
    }

    /// "2001:db8::/32" presentation.
    std::string to_string() const;

    friend auto operator<=>(const prefix&, const prefix&) = default;

private:
    address addr_;
    std::uint8_t length_;
};

/// Hash combining the base address hash with the length.
struct prefix_hash {
    std::size_t operator()(const prefix& p) const noexcept {
        return address_hash{}(p.base()) * 31u + p.length();
    }
};

namespace literals {

/// `"2001:db8::/32"_pfx` — parse-or-throw prefix literal.
inline prefix operator""_pfx(const char* text, std::size_t len) {
    return prefix::must_parse(std::string_view{text, len});
}

}  // namespace literals

}  // namespace v6
