// address.h — 128-bit IPv6 address value type.
//
// Part of libv6class, a reproduction of Plonka & Berger, "Temporal and
// Spatial Classification of Active IPv6 Addresses" (IMC 2015).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace v6 {

/// A 128-bit IPv6 address with value semantics.
///
/// The address is held in network byte order. Bits are indexed from the
/// most-significant end: bit 0 is the highest-order bit of the leading
/// byte, matching the way prefix lengths are written (a /48 covers bits
/// 0..47). Nybbles (4-bit segments, one hexadecimal character of the full
/// 32-character expansion) and hextets (16-bit colon-delimited segments)
/// are indexed the same way.
class address {
public:
    /// The all-zeroes address `::`.
    constexpr address() noexcept : bytes_{} {}

    /// Constructs from 16 bytes in network byte order.
    explicit constexpr address(const std::array<std::uint8_t, 16>& bytes) noexcept
        : bytes_(bytes) {}

    /// Constructs from two 64-bit halves: `hi` holds bits 0..63 (the
    /// network identifier in common layouts), `lo` bits 64..127 (the IID).
    static constexpr address from_pair(std::uint64_t hi, std::uint64_t lo) noexcept {
        std::array<std::uint8_t, 16> b{};
        for (int i = 0; i < 8; ++i) {
            b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
            b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
        }
        return address{b};
    }

    /// Constructs from eight 16-bit hextets, most significant first.
    static constexpr address from_hextets(const std::array<std::uint16_t, 8>& h) noexcept {
        std::array<std::uint8_t, 16> b{};
        for (std::size_t i = 0; i < 8; ++i) {
            b[2 * i] = static_cast<std::uint8_t>(h[i] >> 8);
            b[2 * i + 1] = static_cast<std::uint8_t>(h[i] & 0xff);
        }
        return address{b};
    }

    /// Parses RFC 4291 presentation format, including `::` compression and
    /// a trailing embedded dotted-quad IPv4 address. Returns nullopt on any
    /// syntax error.
    static std::optional<address> parse(std::string_view text) noexcept;

    /// Like parse() but throws std::invalid_argument; for literals whose
    /// validity is a program invariant.
    static address must_parse(std::string_view text);

    /// The 16 raw bytes, network byte order.
    constexpr const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

    /// Bits 0..63 as a host-order integer.
    constexpr std::uint64_t hi() const noexcept { return half(0); }

    /// Bits 64..127 (the canonical IID position) as a host-order integer.
    constexpr std::uint64_t lo() const noexcept { return half(8); }

    /// Bit `i` (0 = most significant, 127 = least). Precondition: i < 128.
    constexpr unsigned bit(unsigned i) const noexcept {
        return (bytes_[i / 8] >> (7 - i % 8)) & 1u;
    }

    /// Nybble `i` of the 32-hex-character expansion (0 = most significant).
    /// Precondition: i < 32.
    constexpr unsigned nybble(unsigned i) const noexcept {
        const std::uint8_t byte = bytes_[i / 2];
        return (i % 2 == 0) ? (byte >> 4) : (byte & 0x0f);
    }

    /// Hextet `i`, the i-th colon-delimited 16-bit group (0..7).
    constexpr std::uint16_t hextet(unsigned i) const noexcept {
        return static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
    }

    /// A copy with bit `i` set to `value` (0 or 1).
    address with_bit(unsigned i, unsigned value) const noexcept {
        address a = *this;
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - i % 8));
        if (value)
            a.bytes_[i / 8] |= mask;
        else
            a.bytes_[i / 8] &= static_cast<std::uint8_t>(~mask);
        return a;
    }

    /// A copy whose bits at positions >= len are cleared; i.e. the first
    /// address of this address's /len prefix. Precondition: len <= 128.
    address masked(unsigned len) const noexcept;

    /// A copy whose bits at positions >= len are set; i.e. the last
    /// address of this address's /len prefix.
    address masked_upper(unsigned len) const noexcept;

    /// The number of leading bits this address shares with `other` (0..128).
    unsigned common_prefix_length(const address& other) const noexcept;

    /// Canonical RFC 5952 presentation (lower case, longest zero run
    /// compressed, no leading zeroes within hextets).
    std::string to_string() const;

    /// The full 32-character hexadecimal expansion with no separators,
    /// e.g. "20010db8000000000000000000000001".
    std::string to_full_hex() const;

    friend constexpr auto operator<=>(const address&, const address&) = default;

private:
    constexpr std::uint64_t half(std::size_t offset) const noexcept {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes_[offset + i];
        return v;
    }

    std::array<std::uint8_t, 16> bytes_;
};

/// FNV-1a over the 16 bytes; suitable for unordered containers.
struct address_hash {
    std::size_t operator()(const address& a) const noexcept {
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint8_t b : a.bytes()) {
            h ^= b;
            h *= 1099511628211ull;
        }
        return static_cast<std::size_t>(h);
    }
};

namespace literals {

/// `"2001:db8::1"_v6` — parse-or-throw address literal.
inline address operator""_v6(const char* text, std::size_t len) {
    return address::must_parse(std::string_view{text, len});
}

}  // namespace literals

}  // namespace v6
