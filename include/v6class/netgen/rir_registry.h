// rir_registry.h — synthetic RIR allocations, BGP origination, and
// longest-prefix-match routing for the simulated IPv6 Internet.
//
// The paper groups observations by advertised BGP prefix and by origin
// ASN (Figures 5a/5b; Section 4.1 counts 6,872 BGP prefixes from 4,420
// ASNs). This registry reproduces that structure: regional blocks in
// 2000::/3 are carved into LIR allocations, each originated by an ASN,
// and a longest-prefix-match table maps any address back to its covering
// BGP prefix and ASN.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "v6class/ip/prefix.h"
#include "v6class/trie/prefix_map.h"

namespace v6 {

/// The five regional Internet registries.
enum class rir : std::uint8_t { arin, ripe, apnic, lacnic, afrinic };

std::string_view to_string(rir r) noexcept;

/// One advertised BGP route: a prefix and its origin ASN.
struct bgp_route {
    prefix pfx;
    std::uint32_t asn = 0;

    friend bool operator==(const bgp_route&, const bgp_route&) = default;
};

/// Allocates prefixes region by region and answers origin lookups.
class rir_registry {
public:
    rir_registry();

    /// Allocates the next free /len block in `region` to `asn` and
    /// advertises it. Throws std::length_error when the region block is
    /// exhausted (cannot happen at simulation scales). len in [16, 64].
    prefix allocate(rir region, std::uint32_t asn, unsigned len);

    /// Advertises an externally chosen route (e.g. the 6to4 2002::/16).
    void advertise(const prefix& pfx, std::uint32_t asn);

    /// All advertised routes in address order.
    const std::vector<bgp_route>& routes() const noexcept;

    /// Longest-prefix match: the most specific advertised route covering
    /// `a`, or nullopt when unrouted.
    std::optional<bgp_route> origin_of(const address& a) const noexcept;

    /// Number of distinct origin ASNs advertised.
    std::size_t asn_count() const;

private:
    struct region_state {
        address next;   // next unallocated block base
        address limit;  // first address past the region
    };

    region_state& state_of(rir region);

    std::map<rir, region_state> regions_;
    prefix_map<std::uint32_t> table_;        // longest-prefix-match to ASN
    // Kept sorted by prefix via sorted insert in advertise(), so const
    // reads never mutate — routes() is thread-safe under concurrent
    // readers (the fig5a parallel fan-out relies on this).
    std::vector<bgp_route> routes_;
};

}  // namespace v6
