// models.h — the concrete operator models.
//
// Each model reproduces one of the addressing practices the paper
// documents (Sections 6.2.1/6.2.3), so the classifiers face the same
// structural signatures that the CDN's real traffic exhibited:
//
//   us_mobile_carrier  — dynamic /64 pools across many /44s, reused in
//                        days; shared fixed IIDs and one duplicated MAC
//                        (Figure 5e, the "apparent contradiction" of
//                        stable addresses with dynamic network ids)
//   eu_isp             — pseudorandom 15-bit field at bits 41..55 of the
//                        network identifier, renumbered on demand; 8-bit
//                        subnet field biased to 0x00/0x01 (Figure 5f)
//   jp_isp             — static per-subscriber /48s, one 16-bit value in
//                        bits 48..63 per /48; stable EUI-64 devices
//                        (Figure 5h)
//   us_university      — three "customer network" hex values at nybble
//                        32, diverse subnets below, sparse /64s full of
//                        privacy addresses (Figure 2a)
//   jp_telco           — statically numbered CPE: low IIDs tightly packed
//                        inside a handful of /64s (Figure 2b's 112..128
//                        prominence)
//   eu_university_dept — one /64 serving ~100 DHCPv6 hosts in a few
//                        numerically dense clusters (Figure 5g, the
//                        2@/112-dense exemplar)
//   relay_6to4         — 2002::/16 clients with the IPv4 address at bits
//                        16..47 (Figure 5d)
//   teredo_model       — 2001::/32 clients (culled in Table 1)
//   isatap_model       — ISATAP hosts with 5efe IIDs (culled in Table 1)
//   generic_isp        — parameterized long-tail operator for ASN-level
//                        distributions (Figure 5a)
#pragma once

#include <memory>

#include "v6class/netgen/model.h"

namespace v6 {

/// US mobile carrier (Figure 5e).
/// Options for us_mobile_carrier.
struct us_mobile_carrier_options {
    std::uint64_t pool_64s = 0;        ///< /64 pool size; 0 = 1.25x subscribers
    double fixed_iid_share = 0.25;     ///< devices using the shared ::1 IID
    double duplicate_mac_share = 0.004; ///< devices with the duplicated MAC
    double second_privacy_addr = 0.55; ///< chance of a 2nd privacy addr/day
};

class us_mobile_carrier final : public network_model {
public:
    using options = us_mobile_carrier_options;

    /// `pools` are the carrier's advertised /44s (or similar); the /64
    /// pool is spread contiguously across them so weekly activity packs
    /// bits 44..63, as the paper observed.
    us_mobile_carrier(model_config cfg, std::vector<prefix> pools, options opt = {});

    std::string_view name() const noexcept override { return "us-mobile"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pools_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    /// A handful of gateways front the whole pool.
    std::uint64_t edge_routers() const noexcept override {
        return 4 + cfg_.subscribers / 4000;
    }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pools_;
    options opt_;
};

/// European ISP with on-demand pseudorandom renumbering (Figure 5f).
/// Options for eu_isp.
struct eu_isp_options {
    std::uint64_t regions = 12;      ///< distinct values of bits 19..40
    int renumber_period_days = 15;   ///< mean days between renumbers
    /// Share of subscribers who use the press-a-button renumbering
    /// (Deutsche Telekom-style) every day: their network identifier —
    /// and with it every device address, even static-IID ones — never
    /// survives to the next day.
    double daily_renumber_share = 0.30;
    double eui64_device_share = 0.04;
    double devices_mean = 2.2;       ///< household devices, 1..5
};

class eu_isp final : public network_model {
public:
    using options = eu_isp_options;

    eu_isp(model_config cfg, prefix bgp /* a /19 */, options opt = {});

    std::string_view name() const noexcept override { return "eu-isp"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override {
        return 8 + cfg_.subscribers / 25;
    }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// Japanese ISP with static per-subscriber /48s (Figure 5h).
/// Options for jp_isp.
struct jp_isp_options {
    double eui64_device_share = 0.04;
    double devices_mean = 2.8;
};

class jp_isp final : public network_model {
public:
    using options = jp_isp_options;

    jp_isp(model_config cfg, prefix bgp /* a /24 */, options opt = {});

    std::string_view name() const noexcept override { return "jp-isp"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override {
        return 8 + cfg_.subscribers / 25;
    }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// US university (Figure 2a).
/// Options for us_university.
struct us_university_options {
    unsigned customer_nybbles[3] = {1, 2, 3};  ///< values seen at nybble 32
    std::uint64_t subnets = 64;                ///< distinct /64s in use
    double eui64_device_share = 0.05;
};

class us_university final : public network_model {
public:
    using options = us_university_options;

    us_university(model_config cfg, prefix bgp /* a /32 */, options opt = {});

    std::string_view name() const noexcept override { return "us-university"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override { return 6; }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// Japanese telco with statically numbered CPE (Figure 2b).
/// Options for jp_telco.
struct jp_telco_options {
    std::uint64_t dense_64s = 24;      ///< /64s holding packed CPE blocks
    std::uint64_t cpe_per_64 = 600;    ///< statically numbered hosts per /64
    double privacy_share = 0.005;      ///< handsets with privacy IIDs
};

class jp_telco final : public network_model {
public:
    using options = jp_telco_options;

    jp_telco(model_config cfg, prefix bgp /* a /32 */, options opt = {});

    std::string_view name() const noexcept override { return "jp-telco"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override { return 40; }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        const std::uint64_t capped =
            std::min<std::uint64_t>(grown(cfg_, day), opt_.dense_64s * opt_.cpe_per_64);
        return static_cast<std::uint64_t>(static_cast<double>(capped) *
                                          cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// European university department: ~100 DHCPv6 hosts in one /64
/// (Figure 5g). Hosts are stable; leases very occasionally move.
/// Options for eu_university_dept.
struct eu_university_dept_options {
    std::uint64_t hosts = 100;
    std::uint64_t clusters = 3;      ///< dense IID clusters (bits 72..80)
    int lease_churn_days = 45;       ///< mean days before an IID moves
};

class eu_university_dept final : public network_model {
public:
    using options = eu_university_dept_options;

    eu_university_dept(model_config cfg, prefix lan /* a /64 */, options opt = {});

    std::string_view name() const noexcept override { return "eu-univ-dept"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override { return 1; }

    /// The stable DHCPv6 address of host `h` during lease epoch `e`;
    /// exposed so the DNS simulator can name the same hosts "dhcpv6-N".
    address host_address(std::uint64_t h, int day) const noexcept;
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// 6to4 relay clients (Figure 5d). The model's "subscribers" are
/// dual-stack hosts whose IPv4 address seeds 2002:V4::/48.
/// Options for relay_6to4.
struct relay_6to4_options {
    double low_iid_share = 0.45;  ///< CPE with ::1-style IIDs
};

class relay_6to4 final : public network_model {
public:
    using options = relay_6to4_options;

    explicit relay_6to4(model_config cfg, options opt = {});

    std::string_view name() const noexcept override { return "6to4-relay"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    /// Relays are anycast; few distinct boxes respond.
    std::uint64_t edge_routers() const noexcept override { return 6; }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;  // 2002::/16
    options opt_;
};

/// Teredo clients (2001::/32).
class teredo_model final : public network_model {
public:
    explicit teredo_model(model_config cfg);

    std::string_view name() const noexcept override { return "teredo"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override { return 3; }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;  // 2001::/32
};

/// ISATAP hosts inside enterprise prefixes.
class isatap_model final : public network_model {
public:
    isatap_model(model_config cfg, prefix enterprise /* a /48 */);

    std::string_view name() const noexcept override { return "isatap"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override { return 2; }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
};

/// Options for hosting_provider.
struct hosting_provider_options {
    std::uint64_t racks = 12;          ///< /64s holding server racks
    std::uint64_t servers_per_rack = 40;
    double vhost_share = 0.25;         ///< servers with extra vhost addresses
    std::uint64_t vhosts_mean = 6;     ///< additional sequential addresses
};

/// Hosting/cloud provider: racks of always-on servers with static,
/// sequential low IIDs — another source of dense, scannable blocks and
/// of very stable addresses (they fetch from the CDN as origin clients).
class hosting_provider final : public network_model {
public:
    using options = hosting_provider_options;

    hosting_provider(model_config cfg, prefix bgp, options opt = {});

    std::string_view name() const noexcept override { return "hosting"; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override {
        return 2 + opt_.racks / 4;
    }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        (void)day;  // servers are always-on: the farm does not churn
        return static_cast<std::uint64_t>(
            static_cast<double>(opt_.racks * opt_.servers_per_rack) *
            cfg_.daily_activity);
    }

private:
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

/// Addressing plan of a long-tail operator.
enum class isp_practice : std::uint8_t {
    static_64_per_subscriber,  ///< fixed /64, privacy + EUI devices
    dynamic_64_pool,           ///< mobile-like reassignment
    static_48_per_subscriber,  ///< JP-style
    shared_64,                 ///< many users in few /64s (DHCPv6)
};

/// Options for generic_isp.
struct generic_isp_options {
    isp_practice plan = isp_practice::static_64_per_subscriber;
    double eui64_device_share = 0.03;
    double low_iid_share = 0.05;
    double devices_mean = 1.8;
};

/// Parameterized long-tail ISP used to populate the ASN distributions.
class generic_isp final : public network_model {
public:
    using practice = isp_practice;
    using options = generic_isp_options;

    generic_isp(std::string name, model_config cfg, prefix bgp, options opt = {});

    std::string_view name() const noexcept override { return name_; }
    std::uint32_t asn() const noexcept override { return cfg_.asn; }
    const std::vector<prefix>& bgp_prefixes() const noexcept override { return pfx_; }
    void day_activity(int day, std::vector<observation>& out) const override;
    std::uint64_t edge_routers() const noexcept override {
        return 4 + cfg_.subscribers / 25;
    }
    std::uint64_t expected_active_subscribers(int day) const noexcept override {
        return static_cast<std::uint64_t>(
            static_cast<double>(grown(cfg_, day)) * cfg_.daily_activity);
    }

private:
    std::string name_;
    model_config cfg_;
    std::vector<prefix> pfx_;
    options opt_;
};

}  // namespace v6
