// rng.h — deterministic pseudo-random utilities for the synthetic
// workload generators.
//
// All simulation randomness flows through these primitives so that every
// bench and test is reproducible from a single seed. Two styles are
// provided: a sequential xoshiro256** stream for shuffles and draws, and
// stateless splitmix64 hashing for "functional" randomness — a value that
// must be recomputable from (seed, subscriber, day) without storing
// per-subscriber state.
#pragma once

#include <cstdint>

namespace v6 {

/// splitmix64 finalizer: a high-quality 64-bit mix usable as a stateless
/// hash of packed identifiers.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Stateless hash of up to three identifiers under a seed; the workhorse
/// behind "subscriber s's privacy IID on day d".
constexpr std::uint64_t hash_ids(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b = 0, std::uint64_t c = 0) noexcept {
    std::uint64_t h = mix64(seed ^ 0x243f6a8885a308d3ull);
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    return h;
}

/// Stateless uniform draw in [0, bound) from hashed identifiers.
/// bound must be non-zero. Uses the fixed-point multiply reduction.
constexpr std::uint64_t hash_uniform(std::uint64_t h, std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(h) * bound) >> 64);
}

/// Stateless Bernoulli draw: true with probability `num`/`den`.
constexpr bool hash_chance(std::uint64_t h, std::uint64_t num,
                           std::uint64_t den) noexcept {
    return hash_uniform(h, den) < num;
}

/// xoshiro256** — sequential generator for shuffles and order-dependent
/// draws. Satisfies std::uniform_random_bit_generator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed) noexcept {
        // Seed the four lanes via splitmix64, per the reference code.
        std::uint64_t s = seed;
        for (auto& lane : state_) lane = mix64(s += 0x9e3779b97f4a7c15ull);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound); bound must be non-zero.
    std::uint64_t uniform(std::uint64_t bound) noexcept {
        return hash_uniform((*this)(), bound);
    }

    /// Uniform double in [0, 1).
    double uniform_double() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// True with probability p.
    bool chance(double p) noexcept { return uniform_double() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4];
};

/// Bounded Zipf(s) sampler over ranks 1..n by inverse-CDF table lookup;
/// used for ASN size distributions and client hit counts.
class zipf_sampler {
public:
    zipf_sampler(std::uint64_t n, double exponent);

    /// Draws a rank in [1, n]; rank 1 is the most probable.
    std::uint64_t operator()(rng& r) const noexcept;

    /// The probability mass of rank k.
    double mass(std::uint64_t rank) const noexcept;

private:
    std::uint64_t n_;
    double exponent_;
    double norm_;
};

}  // namespace v6
