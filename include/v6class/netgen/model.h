// model.h — the network-model abstraction behind the synthetic CDN
// workload (the substitution for the paper's proprietary client logs).
//
// A network model stands for one operator (one origin ASN): it owns BGP
// prefixes and emits, for any simulated day, the set of client addresses
// active behind it together with hit counts. Models are *functional* in
// (seed, subscriber, day): the same day can be regenerated at any time
// and in any order, which lets the benches simulate only the day windows
// an experiment needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/ip/prefix.h"
#include "v6class/netgen/rng.h"

namespace v6 {

/// One aggregated log record: a client address and its hit count for the
/// day (the paper's logs are aggregated to exactly this, Section 4.1).
struct observation {
    address addr;
    std::uint32_t hits = 1;
};

/// Common knobs for every concrete model.
struct model_config {
    std::uint32_t asn = 0;
    std::uint64_t seed = 1;
    /// Subscribers at day 0 of the study.
    std::uint64_t subscribers = 10'000;
    /// Linear annual growth of the subscriber base (1.0 = +100%/year).
    /// Negative values model decline (6to4's fall in Table 1).
    double annual_growth = 0.5;
    /// Probability a subscriber is active (visits the CDN) on a given day.
    double daily_activity = 0.35;
};

/// Interface implemented by each operator model.
class network_model {
public:
    virtual ~network_model() = default;

    virtual std::string_view name() const noexcept = 0;
    virtual std::uint32_t asn() const noexcept = 0;

    /// The BGP prefixes this operator advertises.
    virtual const std::vector<prefix>& bgp_prefixes() const noexcept = 0;

    /// Appends the active client observations for `day` to `out`.
    /// Deterministic in (model seed, day); independent of call order.
    virtual void day_activity(int day, std::vector<observation>& out) const = 0;

    /// How many last-hop (edge) routers serve this network — the router
    /// topology generator sizes per-ASN infrastructure from this. Mobile
    /// carriers concentrate huge address pools behind few gateways;
    /// wireline ISPs deploy edges roughly per customer block.
    virtual std::uint64_t edge_routers() const noexcept { return 8; }

    /// Ground truth the real Internet never yields: the expected number
    /// of subscribers active behind this network on `day`. Used only to
    /// score census estimators (Section 7.1's counting experiment).
    virtual std::uint64_t expected_active_subscribers(int day) const noexcept = 0;

protected:
    /// Subscriber count on `day` under linear growth. Shared by all
    /// concrete models so Table 1's epoch growth is uniform policy.
    static std::uint64_t grown(const model_config& cfg, int day) noexcept {
        const double factor = 1.0 + cfg.annual_growth * (static_cast<double>(day) / 365.0);
        const double n = static_cast<double>(cfg.subscribers) * (factor < 0.05 ? 0.05 : factor);
        return static_cast<std::uint64_t>(n);
    }

    /// True when subscriber `s` is active on `day` (stateless draw).
    static bool active_on(const model_config& cfg, std::uint64_t s, int day) noexcept {
        const std::uint64_t h = hash_ids(cfg.seed, 0xACC7, s, static_cast<std::uint64_t>(day));
        return hash_chance(h, static_cast<std::uint64_t>(cfg.daily_activity * 1e6), 1'000'000);
    }

    /// A Zipf-flavoured daily hit count in [1, 10000].
    static std::uint32_t hits_draw(std::uint64_t h) noexcept {
        // Inverse-power transform of a uniform draw: heavy-tailed with
        // most clients making a handful of requests.
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        const double x = 1.0 / (0.0001 + u * 0.9999);  // 1..10000
        return static_cast<std::uint32_t>(x < 1.0 ? 1.0 : (x > 10000.0 ? 10000.0 : x));
    }
};

}  // namespace v6
