// iid.h — interface-identifier builders shared by the network models.
//
// Each builder produces the 64-bit IID field (address bits 64..127) for
// one standard addressing behaviour from Section 3 of the paper.
#pragma once

#include <cstdint>

#include "v6class/ip/mac.h"
#include "v6class/netgen/rng.h"

namespace v6 {

/// RFC 4941 privacy IID: pseudorandom 64 bits with the "u" bit (bit 6 of
/// the leading IID byte, address bit 70) forced to zero — the signature
/// the paper reads off MRA plots as the notch at bit 70.
constexpr std::uint64_t privacy_iid(std::uint64_t h) noexcept {
    return h & ~(std::uint64_t{1} << 57);
}

/// A stable, device-unique pseudorandom MAC with a plausible OUI drawn
/// from a small vendor set; feeds EUI-64 IIDs.
constexpr mac_address device_mac(std::uint64_t h) noexcept {
    constexpr std::uint32_t ouis[] = {
        0x001b63,  // Apple
        0x3c5ab4,  // Google
        0xf0d1a9,  // Samsung-ish
        0x001a11,  // cable CPE vendor
        0x84d47e,  // Aruba-ish
        0x00155d,  // Microsoft
    };
    const std::uint32_t oui = ouis[h % (sizeof(ouis) / sizeof(ouis[0]))];
    const std::uint64_t nic = (h >> 8) & 0xffffffull;
    return mac_address::from_uint((static_cast<std::uint64_t>(oui) << 24) | nic);
}

/// The one duplicated MAC the paper singles out (00:11:22:33:44:56,
/// "the most prevalent [MAC], just in one mobile carrier's network").
inline mac_address duplicate_mac() noexcept {
    return mac_address::from_uint(0x001122334456ull);
}

/// ISATAP IID embedding an IPv4 address (RFC 5214): 0200:5efe:v4 for
/// globally unique v4, 0000:5efe:v4 otherwise.
constexpr std::uint64_t isatap_iid(std::uint32_t v4, bool global) noexcept {
    const std::uint64_t marker = global ? 0x02005efeull : 0x00005efeull;
    return (marker << 32) | v4;
}

/// RFC 7217 semantically opaque, *stable* privacy IID: a pseudorandom
/// function of (secret key, network prefix, interface). Unlike RFC 4941
/// temporary addresses it never rotates while the host stays on the same
/// subnet — so it looks random to content inspection yet classifies as
/// stable temporally, exactly the combination footnote 1 of the paper
/// lists among the schemes content analysis cannot separate.
constexpr std::uint64_t stable_privacy_iid(std::uint64_t secret,
                                           std::uint64_t network_prefix_hi,
                                           std::uint64_t interface_id) noexcept {
    return privacy_iid(hash_ids(secret, 0x7217, network_prefix_hi, interface_id));
}

}  // namespace v6
