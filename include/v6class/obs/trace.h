// trace.h — execution tracing across the parallel pipeline: per-thread
// lock-free span ring buffers with 64-bit trace/span ids.
//
// A span is one timed segment of work (a task run, a queue wait, a
// merge) attributed to the thread that executed it and, through its
// parent id, to the logical operation that caused it. Parentage crosses
// threads explicitly: the submitter captures tracer::current() and the
// worker adopts it with a context_scope, so a fan-out through
// v6::par::run_indexed or a stream-engine shard queue shows up in the
// trace as one tree rooted at the submitting span.
//
// Storage is one fixed-capacity ring of seqlock-guarded slots per
// emitting thread. Writers are wait-free and never contend with each
// other (single-writer rings); readers (snapshot / the /trace endpoint)
// copy slots optimistically and discard torn reads. When a ring wraps,
// the oldest spans are overwritten and tracer::dropped() counts them —
// tracing never blocks or allocates on the hot path.
//
// Disabled cost: constructing a span or context_scope is one relaxed
// atomic load and a branch; nothing else runs. Tracing never touches
// classification output — spans carry timestamps, not data.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace v6::obs {

namespace detail {
// The hot-path gate, exposed so the span constructors inline to a
// single relaxed load + branch when tracing is off.
extern std::atomic<bool> trace_enabled;
}  // namespace detail

/// Identifies a position in the span tree: the root operation
/// (trace_id) and the immediate span (span_id). A zero span_id means
/// "no context" — spans started under it become new roots.
struct span_context {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    explicit operator bool() const noexcept { return span_id != 0; }
};

/// What a span's duration measures. Rendered as the Chrome-trace
/// category, so viewers can color queue time apart from run time.
enum class span_kind : std::uint8_t { run = 0, queue_wait = 1, merge = 2 };

const char* span_kind_name(span_kind k) noexcept;

/// One completed span as read back out of the rings.
struct span_record {
    const char* name = "";
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    std::uint64_t start_ns = 0;  ///< since the tracer's steady origin
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;  ///< tracer-assigned thread number
    span_kind kind = span_kind::run;
};

/// Process-wide tracer: enable/disable, per-thread ring registry,
/// export. All members are static; the tracer has no instances.
class tracer {
public:
    /// Spans each thread's ring can hold before overwriting the oldest.
    static constexpr std::size_t ring_capacity = 8192;

    static bool enabled() noexcept {
        return detail::trace_enabled.load(std::memory_order_relaxed);
    }
    static void enable() noexcept;
    static void disable() noexcept;
    /// Disables and empties every ring; resets the time origin (tests).
    static void reset() noexcept;

    /// The calling thread's current context (innermost live span, or
    /// the adopted foreign context). Zero when outside any span.
    static span_context current() noexcept;

    /// Nanoseconds since the tracer's steady-clock origin.
    static std::uint64_t now_ns() noexcept;

    /// Allocates a fresh process-unique span id (never 0).
    static std::uint64_t next_id() noexcept;

    /// Records one completed span with explicit timestamps — the
    /// escape hatch for after-the-fact segments like queue waits,
    /// where the duration was not bracketed by a live span object.
    /// A zero ctx.trace_id is replaced by ctx.span_id (a new root).
    /// No-op while disabled; never blocks, never allocates after the
    /// calling thread's first emit.
    static void emit(const char* name, span_kind kind, span_context ctx,
                     std::uint64_t parent_id, std::uint64_t start_ns,
                     std::uint64_t dur_ns) noexcept;

    /// Names the calling thread in trace exports ("par-worker-3").
    static void set_thread_name(const std::string& name);

    /// Copies every readable span out of every ring, oldest first per
    /// thread, then sorted by start time. Safe concurrently with
    /// emitters; torn slots are skipped.
    static std::vector<span_record> snapshot();

    /// The full trace as Chrome-trace JSON ({"traceEvents":[...]}) with
    /// thread_name metadata events — loads in chrome://tracing and
    /// Perfetto.
    static std::string chrome_json();

    /// Spans lost to ring wraparound since the last reset().
    static std::uint64_t dropped() noexcept;
};

/// RAII span: starts on construction (when tracing is enabled), emits
/// on destruction, and makes itself the thread's current context in
/// between so nested spans and fan-outs parent to it.
class span {
public:
    explicit span(const char* name, span_kind kind = span_kind::run) noexcept {
        if (detail::trace_enabled.load(std::memory_order_relaxed))
            begin(name, kind);
    }
    ~span() {
        if (live_) end();
    }

    span(const span&) = delete;
    span& operator=(const span&) = delete;

    /// This span's ids, for handing to another thread (zero if tracing
    /// was disabled at construction).
    span_context context() const noexcept { return ctx_; }

private:
    void begin(const char* name, span_kind kind) noexcept;
    void end() noexcept;

    const char* name_ = "";
    span_context ctx_{};
    span_context saved_{};
    std::uint64_t parent_ = 0;
    std::uint64_t start_ns_ = 0;
    span_kind kind_ = span_kind::run;
    bool live_ = false;
};

/// Adopts a context captured on another thread (at submit time) as the
/// calling thread's current context for the enclosing scope, so spans
/// opened here parent to the submitter's span. No-op for a zero
/// context or while tracing is disabled.
class context_scope {
public:
    explicit context_scope(span_context parent) noexcept {
        if (parent.span_id != 0 &&
            detail::trace_enabled.load(std::memory_order_relaxed))
            adopt(parent);
    }
    ~context_scope() {
        if (live_) restore();
    }

    context_scope(const context_scope&) = delete;
    context_scope& operator=(const context_scope&) = delete;

private:
    void adopt(span_context parent) noexcept;
    void restore() noexcept;

    span_context saved_{};
    bool live_ = false;
};

}  // namespace v6::obs
