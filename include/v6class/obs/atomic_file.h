// atomic_file.h — crash-safe whole-file writes for the observability
// dumps (--metrics-out, --trace-out, --events-out, BENCH_*.json): the
// content goes to a sibling temp file which is then rename(2)d over the
// destination, so a concurrent reader — or a reader after a crash —
// sees either the old complete file or the new complete file, never a
// truncated one.
//
// Also durable (POSIX builds): the temp file is fsync'd before the
// rename and the containing directory after it, so the dump survives
// power loss, not just a process crash.
#pragma once

#include <string>

namespace v6::obs {

/// Writes `content` to `path` via tmp-file + fsync + rename + directory
/// fsync. Returns false (and leaves no temp file behind) when any step
/// fails.
bool atomic_write_file(const std::string& path, const std::string& content);

}  // namespace v6::obs
