// tsdb.h — the durable flight recorder: an embedded append-only
// time-series store under a --state-dir, so the derived series (gamma
// ratios, nd-stable fraction), per-ASN ledger tallies, and the
// structured event log survive a daemon restart. The paper's temporal
// classification is about behaviour over days to months; a fixed-size
// in-memory ring that dies with the process cannot show a /48 flipping
// addressing practice a quarter later. This store can.
//
// On-disk shape (full byte layout in DESIGN.md §12):
//
//   <dir>/seg-<NNNNNN>.v6t     append-only segments, rotated by size
//
// Each segment is a sequence of CRC32-framed records:
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload := u8 kind + body
//     kind 1  series definition (id -> name + label)
//     kind 2  point batch (series id, count, count x (i64 ts, f64 value))
//     kind 3  event (level, time, kind, message, pre-rendered fields JSON)
//
// Every new segment begins with a definition record for every known
// series, so each segment is self-contained: retention can unlink the
// oldest segments without orphaning ids, and recovery of any suffix of
// the directory still resolves every name.
//
// Crash safety: appends go to the tail of the newest segment; a torn
// write (power loss mid-frame) is detected by the length/CRC check and
// the tail is truncated back to the last whole record — recovery yields
// exactly the committed prefix (tests/obs_tsdb_test.cpp proves this at
// every byte offset). Durability is fsync-on-rotation/close by default;
// options::fsync_commit upgrades every commit.
//
// Range reads never scan whole segments: the open() scan builds a
// compact in-memory block index — per series, one (segment, offset,
// min_ts, max_ts, count) entry per point batch — and query() seeks
// straight to the overlapping blocks.
//
// Timestamps are caller-defined int64 units, one unit scheme per
// series: the stream engine's seal-time series use the day number; the
// wall-clock gauge ticks use unix seconds. Within a series, appends
// with a timestamp <= the series' newest stored timestamp are dropped
// and counted (duplicate_points()) — the restart re-anchor contract
// that keeps /api/series free of duplicate points across runs.
//
// Thread contract: every public method is safe from any thread (one
// internal mutex). Writes are buffered in append()/append_event() and
// hit the file in commit(); query() sees committed data plus the
// not-yet-committed buffer, so an HTTP reader never waits on a seal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "v6class/obs/event_log.h"
#include "v6class/obs/metrics.h"

namespace v6::obs {
class metrics_server;  // http.h; the history API mounts onto it
}  // namespace v6::obs

namespace v6::obs::tsdb {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte range —
/// exposed so tests and tools can frame/verify records themselves.
std::uint32_t crc32(const void* data, std::size_t len) noexcept;

struct options {
    /// Rotate to a fresh segment once the active one exceeds this.
    std::uint64_t segment_bytes = 4u << 20;
    /// Unlink the oldest sealed segments while the directory's total
    /// exceeds this (0 = unbounded). The newest sealed segment and the
    /// active one are always kept, so a cap smaller than one commit
    /// can never erase the newest data.
    std::uint64_t retain_bytes = 0;
    /// Unlink sealed segments whose newest point is older than
    /// (newest ts anywhere - retain_age) in the caller's ts units
    /// (0 = unbounded). Applied per segment at rotation time.
    std::int64_t retain_age = 0;
    /// fsync each commit() (durable to power loss per commit) instead
    /// of only on rotation and close.
    bool fsync_commit = false;
    /// Counters (v6_tsdb_*) land here when non-null.
    registry* metrics = nullptr;
};

/// One stored sample.
struct point {
    std::int64_t ts = 0;
    double value = 0;

    friend bool operator==(const point&, const point&) = default;
};

/// One series as listed by list_series().
struct series_info {
    std::string name;
    std::string label;
    std::int64_t first_ts = 0;
    std::int64_t last_ts = 0;
    std::uint64_t points = 0;
};

/// One stored event, as returned by query_events().
struct stored_event {
    double unix_time = 0;
    event_level level = event_level::info;
    std::string kind;
    std::string message;
    std::string fields_json;  ///< pre-rendered JSON object text ("{...}")
};

/// Mean-per-bucket downsampling: points bucketed by floor(ts/step)*step,
/// value = mean of the bucket, one output point per non-empty bucket
/// (oldest first). step <= 1 returns the input unchanged.
std::vector<point> downsample(const std::vector<point>& pts, std::int64_t step);

class database;

/// Mounts the read-only history API onto an HTTP server (call before
/// server.start(); `db` must outlive it):
///
///   GET /api/series                              the series directory
///   GET /api/series?name=...&label=...&from=...&to=...&step=...
///   GET /api/events?level=...&from=...&to=...&limit=...
///
/// Shared by v6stream (its own flight recorder) and v6agg (the fleet
/// store, where per-node series carry node=<id> labels).
void register_history_api(metrics_server& server, const database* db);

class database {
public:
    /// Opens (creating the directory if needed) and recovers `dir`:
    /// scans every segment oldest-first, truncates a torn tail, builds
    /// the block index, and arms appends at the tail of the newest
    /// segment. Returns null with *error set when the directory cannot
    /// be created or a segment cannot be read.
    static std::unique_ptr<database> open(const std::string& dir,
                                          const options& opt = {},
                                          std::string* error = nullptr);

    /// Commits the buffer and fsyncs the active segment.
    ~database();

    database(const database&) = delete;
    database& operator=(const database&) = delete;

    // ------------------------------------------------------------ write

    /// Interns (name, label), persisting the definition with the next
    /// commit when new. Ids are stable for the directory's lifetime.
    std::uint32_t series_id(const std::string& name, const std::string& label);

    /// Buffers one sample. Samples at or before the series' newest
    /// stored timestamp are dropped (counted by duplicate_points()) —
    /// see the re-anchor contract above.
    void append(std::uint32_t id, std::int64_t ts, double value);
    void append(const std::string& name, const std::string& label,
                std::int64_t ts, double value) {
        append(series_id(name, label), ts, value);
    }

    /// Buffers one event (the event log's fields are pre-rendered to
    /// one JSON object string).
    void append_event(const event& e);

    /// Writes the buffer as framed records, rotating and applying
    /// retention when the active segment has outgrown its cap. False on
    /// I/O failure (the buffer is kept for retry).
    bool commit();

    // ------------------------------------------------------------- read

    /// Every known series, name-ordered.
    std::vector<series_info> list_series() const;

    /// Newest stored timestamp of (name, label); nullopt when the
    /// series is unknown or empty. This is the restart re-anchor.
    std::optional<std::int64_t> last_ts(const std::string& name,
                                        const std::string& label) const;

    /// All points of (name, label) with from <= ts <= to, oldest first
    /// (committed and buffered). Unknown series yield empty.
    std::vector<point> query(const std::string& name, const std::string& label,
                             std::int64_t from, std::int64_t to) const;

    /// Stored events with level >= min_level and from <= time <= to,
    /// oldest first, capped to the newest `limit` matches.
    std::vector<stored_event> query_events(event_level min_level, double from,
                                           double to,
                                           std::size_t limit = 1024) const;

    // ------------------------------------------------- introspection

    const std::string& dir() const noexcept { return dir_; }
    /// Points recovered from disk by open().
    std::uint64_t recovered_points() const;
    /// Bytes cut off a torn tail by open()'s recovery (0 = clean).
    std::uint64_t truncated_bytes() const;
    /// Appends dropped by the monotone-timestamp re-anchor check.
    std::uint64_t duplicate_points() const;
    /// Segments currently on disk (sealed + active).
    std::size_t segment_count() const;
    /// Segments unlinked by retention so far.
    std::uint64_t retired_segments() const;

private:
    database() = default;

    struct block {
        std::uint32_t series = 0;
        std::uint32_t count = 0;
        std::int64_t min_ts = 0;
        std::int64_t max_ts = 0;
        std::uint64_t segment = 0;  ///< segment sequence number
        std::uint64_t offset = 0;   ///< frame start offset in the segment
        std::uint32_t len = 0;      ///< payload length
    };

    struct event_ref {
        double time = 0;
        event_level level = event_level::info;
        std::uint64_t segment = 0;
        std::uint64_t offset = 0;
        std::uint32_t len = 0;
    };

    struct series_state {
        std::string name;
        std::string label;
        std::int64_t first_ts = 0;
        std::int64_t last_ts = 0;
        std::uint64_t points = 0;
        bool persisted = false;  ///< definition written to the active segment
        std::vector<block> blocks;   ///< committed, (segment, offset) order
        std::vector<point> pending;  ///< buffered, not yet committed
    };

    bool scan_segment(std::uint64_t seq, bool newest, std::string* error);
    bool open_active_locked(std::string* error);
    bool write_frame_locked(std::uint8_t kind, const std::string& body,
                            std::uint64_t* offset);
    bool rotate_locked();
    void apply_retention_locked();
    std::string segment_path(std::uint64_t seq) const;
    std::uint32_t intern_locked(const std::string& name,
                                const std::string& label);

    std::string dir_;
    options opt_;

    mutable std::mutex mutex_;
    std::vector<series_state> series_;  // index = id
    std::map<std::pair<std::string, std::string>, std::uint32_t> by_key_;
    std::vector<event_ref> events_;       // committed, time order
    std::vector<event> pending_events_;   // buffered
    std::vector<std::uint64_t> segments_;  // on disk, ascending seq
    /// Series ids whose definition open() recovered from the newest
    /// segment — the only ones already persisted in the resumed active
    /// segment (see open_active_locked).
    std::vector<std::uint32_t> active_seg_defs_;
    std::map<std::uint64_t, std::uint64_t> segment_bytes_;
    std::map<std::uint64_t, std::int64_t> segment_max_ts_;
    int active_fd_ = -1;
    std::uint64_t active_seq_ = 0;
    std::uint64_t active_size_ = 0;
    std::int64_t newest_ts_ = 0;
    bool any_ts_ = false;

    std::uint64_t recovered_points_ = 0;
    std::uint64_t truncated_bytes_ = 0;
    std::uint64_t duplicate_points_ = 0;
    std::uint64_t retired_segments_ = 0;

    counter commits_, rotations_, retired_, duplicates_, write_errors_;
};

}  // namespace v6::obs::tsdb
