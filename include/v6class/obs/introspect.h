// introspect.h — cheap process self-inspection for the obs layer:
// resident set size, surfaced as a gauge next to the pipeline metrics
// so memory growth (trie arenas, shard buffers) is visible per seal.
#pragma once

#include <cstdint>

namespace v6::obs {

class registry;

/// The process's resident set size in bytes (from /proc/self/statm on
/// Linux). Returns 0 where unavailable.
std::uint64_t process_rss_bytes();

/// Samples process-level gauges (v6_process_rss_bytes) into `reg`.
/// Called at day seals and metric dumps; one file read, no allocation
/// on the metrics path.
void update_process_gauges(registry& reg);

}  // namespace v6::obs
