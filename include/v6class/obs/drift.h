// drift.h — change detection over the live derived series: a fixed-size
// ring history (what the dashboard's sparklines draw) and an EWMA
// mean/variance detector that raises an alarm when a new sample sits
// more than z standard deviations from the smoothed mean.
//
// Alarm discipline: a detector that has fired RE-BASELINES — it resets
// its statistics to the new value and warms up again — so one step
// change in addressing practice produces exactly one alarm instead of
// one per subsequent sample (tests/obs_drift_test.cpp holds it to
// that). A sigma floor (absolute + relative to the mean) keeps a
// perfectly flat warm-up from turning the first wiggle into an alarm
// with infinite z.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace v6::obs {

/// Last-N values of one series, oldest first. Fixed capacity; push
/// never allocates after construction.
class ring_history {
public:
    explicit ring_history(std::size_t capacity = 256)
        : capacity_(capacity ? capacity : 1) {
        values_.reserve(capacity_);
    }

    void push(double v) {
        if (values_.size() < capacity_) {
            values_.push_back(v);
        } else {
            values_[head_] = v;
            head_ = (head_ + 1) % capacity_;
        }
        ++total_;
    }

    /// Retained values (min(total, capacity)).
    std::size_t size() const noexcept { return values_.size(); }
    std::size_t capacity() const noexcept { return capacity_; }

    /// i = 0 is the oldest retained value. Precondition: i < size().
    double at(std::size_t i) const noexcept {
        return values_[(head_ + i) % values_.size()];
    }

    /// The newest value (0 when empty).
    double back() const noexcept {
        return values_.empty() ? 0.0 : at(values_.size() - 1);
    }

    /// Values ever pushed, including the overwritten ones.
    std::uint64_t total() const noexcept { return total_; }

    /// Copy in oldest-first order (for rendering).
    std::vector<double> values() const {
        std::vector<double> out;
        out.reserve(values_.size());
        for (std::size_t i = 0; i < values_.size(); ++i) out.push_back(at(i));
        return out;
    }

private:
    std::size_t capacity_;
    std::size_t head_ = 0;  // index of the oldest value once full
    std::uint64_t total_ = 0;
    std::vector<double> values_;
};

/// Tuning of one EWMA drift detector.
struct drift_options {
    double alpha = 0.3;        ///< EWMA smoothing factor in (0, 1]
    double z_threshold = 4.0;  ///< alarm when |x - mean| > z * sigma
    unsigned min_samples = 5;  ///< warm-up before the detector arms
    double min_sigma = 1e-9;   ///< absolute sigma floor
    double rel_sigma = 0.02;   ///< sigma floor as a fraction of |mean|
};

/// EWMA mean/variance with z-score alarms and fire-once re-baselining.
class ewma_detector {
public:
    explicit ewma_detector(drift_options opt = {}) : opt_(opt) {}

    struct alarm {
        double value = 0;  ///< the sample that fired
        double mean = 0;   ///< smoothed mean before the sample
        double sigma = 0;  ///< effective (floored) sigma before the sample
        double z = 0;      ///< |value - mean| / sigma
    };

    /// Feeds one sample; returns the alarm if this sample fired.
    std::optional<alarm> update(double x) noexcept {
        if (samples_ == 0) {
            mean_ = x;
            variance_ = 0.0;
            samples_ = 1;
            return std::nullopt;
        }
        const double floor_abs = opt_.min_sigma;
        const double floor_rel = opt_.rel_sigma * std::abs(mean_);
        double sigma = std::sqrt(variance_);
        if (sigma < floor_abs) sigma = floor_abs;
        if (sigma < floor_rel) sigma = floor_rel;
        const double z = std::abs(x - mean_) / sigma;
        if (samples_ >= opt_.min_samples && z > opt_.z_threshold) {
            const alarm a{x, mean_, sigma, z};
            // Re-baseline at the new level: the shift is reported once,
            // then the detector learns the new normal.
            mean_ = x;
            variance_ = 0.0;
            samples_ = 1;
            return a;
        }
        const double d = x - mean_;
        const double gain = opt_.alpha * d;
        mean_ += gain;
        variance_ = (1.0 - opt_.alpha) * (variance_ + d * gain);
        ++samples_;
        return std::nullopt;
    }

    double mean() const noexcept { return mean_; }
    double sigma() const noexcept { return std::sqrt(variance_); }
    std::uint64_t samples() const noexcept { return samples_; }
    const drift_options& options() const noexcept { return opt_; }

    void reset() noexcept {
        mean_ = variance_ = 0.0;
        samples_ = 0;
    }

private:
    drift_options opt_;
    double mean_ = 0.0;
    double variance_ = 0.0;
    std::uint64_t samples_ = 0;
};

}  // namespace v6::obs
