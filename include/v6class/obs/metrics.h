// metrics.h — the process observability substrate: a registry of named
// counters, gauges, and fixed-bucket histograms.
//
// Design constraints (this layer sits on the ingest hot path):
//   * Handles, not lookups. Instrumented code interns a (name, labels)
//     pair once — typically at construction — and keeps a small handle.
//     The hot path is then one relaxed atomic RMW; it never hashes a
//     string, never allocates, never takes the registry mutex.
//   * Null-safe handles. A default-constructed handle is a no-op, so
//     instrumentation can be compiled in unconditionally and disabled
//     per subsystem (cf. stream_config::metrics) without a second code
//     path.
//   * Pointer-stable storage. Series live in a deque owned by the
//     registry; handles stay valid for the registry's lifetime, across
//     any number of later registrations.
//
// Naming scheme (see DESIGN.md "Observability"): v6_<subsystem>_<name>,
// unit-suffixed — `_total` for counters, `_seconds` for time histograms.
// Labels are few and low-cardinality (e.g. shard="3").
//
// Histogram buckets are HALF-OPEN: bucket i counts observations v with
// bound[i-1] <= v < bound[i]; the implicit last bucket is [bound[n-1],
// +Inf). (Prometheus's text format presents cumulative `le` buckets;
// the exporter converts. The in-memory semantics are half-open.)
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace v6::obs {

/// Label set of one time series: ordered (key, value) pairs.
using label_list = std::vector<std::pair<std::string, std::string>>;

enum class metric_kind { counter, gauge, histogram };

namespace detail {

/// Storage of one time series. Lives in the registry's deque; handles
/// point here. All mutable fields are atomics — the hot path writes
/// with relaxed ordering (counters are monotone and independently
/// meaningful; exporters read a live, slightly-torn-across-series view,
/// which is what scrapers expect).
struct series {
    std::string name;
    std::string help;
    metric_kind kind = metric_kind::counter;
    label_list labels;
    bool fp = false;  // gauge only: value holds double bits (dgauge)

    std::atomic<std::int64_t> value{0};  // counter / gauge

    // Histogram only: per-bucket counts (bounds.size() + 1 cells, the
    // last is the +Inf overflow), total count, and sum of observations
    // (a double accumulated through its bit pattern).
    std::vector<double> bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};

    void observe(double v) noexcept {
        std::size_t i = 0;
        while (i < bounds.size() && v >= bounds[i]) ++i;  // half-open: v < bound
        buckets[i].fetch_add(1, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t old = sum_bits.load(std::memory_order_relaxed);
        std::uint64_t desired;
        do {
            desired = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v);
        } while (!sum_bits.compare_exchange_weak(old, desired,
                                                 std::memory_order_relaxed));
    }

    double sum() const noexcept {
        return std::bit_cast<double>(sum_bits.load(std::memory_order_relaxed));
    }
};

}  // namespace detail

/// Monotonically increasing count. inc() is one relaxed fetch_add.
class counter {
public:
    counter() = default;
    void inc(std::uint64_t n = 1) const noexcept {
        if (s_) s_->value.fetch_add(static_cast<std::int64_t>(n),
                                    std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return s_ ? static_cast<std::uint64_t>(
                        s_->value.load(std::memory_order_relaxed))
                  : 0;
    }
    explicit operator bool() const noexcept { return s_ != nullptr; }

private:
    friend class registry;
    explicit counter(detail::series* s) noexcept : s_(s) {}
    detail::series* s_ = nullptr;
};

/// Point-in-time signed value (queue depth, epoch, lag).
class gauge {
public:
    gauge() = default;
    void set(std::int64_t v) const noexcept {
        if (s_) s_->value.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t d) const noexcept {
        if (s_) s_->value.fetch_add(d, std::memory_order_relaxed);
    }
    /// Ratchets the gauge up to v (high-water marks).
    void max_of(std::int64_t v) const noexcept {
        if (!s_) return;
        std::int64_t cur = s_->value.load(std::memory_order_relaxed);
        while (cur < v && !s_->value.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    std::int64_t value() const noexcept {
        return s_ ? s_->value.load(std::memory_order_relaxed) : 0;
    }
    explicit operator bool() const noexcept { return s_ != nullptr; }

private:
    friend class registry;
    explicit gauge(detail::series* s) noexcept : s_(s) {}
    detail::series* s_ = nullptr;
};

/// Point-in-time double value (ratios, fractions, estimates). Exported
/// as a Prometheus gauge; stored through its bit pattern in the same
/// atomic an integer gauge uses.
class dgauge {
public:
    dgauge() = default;
    void set(double v) const noexcept {
        if (s_) s_->value.store(std::bit_cast<std::int64_t>(v),
                                std::memory_order_relaxed);
    }
    double value() const noexcept {
        return s_ ? std::bit_cast<double>(
                        s_->value.load(std::memory_order_relaxed))
                  : 0.0;
    }
    explicit operator bool() const noexcept { return s_ != nullptr; }

private:
    friend class registry;
    explicit dgauge(detail::series* s) noexcept : s_(s) {}
    detail::series* s_ = nullptr;
};

/// Fixed-bucket distribution. observe() touches two atomics plus a CAS
/// loop for the sum; no allocation, no locks.
class histogram {
public:
    histogram() = default;
    void observe(double v) const noexcept {
        if (s_) s_->observe(v);
    }
    std::uint64_t count() const noexcept {
        return s_ ? s_->count.load(std::memory_order_relaxed) : 0;
    }
    double sum() const noexcept { return s_ ? s_->sum() : 0.0; }
    /// Count of bucket i (i == bounds().size() is the +Inf overflow).
    std::uint64_t bucket_count(std::size_t i) const noexcept {
        return s_ ? s_->buckets[i].load(std::memory_order_relaxed) : 0;
    }
    const std::vector<double>& bounds() const noexcept {
        static const std::vector<double> empty;
        return s_ ? s_->bounds : empty;
    }
    explicit operator bool() const noexcept { return s_ != nullptr; }

private:
    friend class registry;
    explicit histogram(detail::series* s) noexcept : s_(s) {}
    detail::series* s_ = nullptr;
};

/// Default bucket bounds for latency histograms: 1us .. ~10s,
/// roughly x4 per bucket.
std::vector<double> latency_buckets();

/// A set of named time series. get_* interns (name, labels) under the
/// registry mutex and returns a stable handle; repeated registration of
/// the same pair returns the same series (so "get" is the right verb).
/// Exporters walk all series in registration order.
class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    counter get_counter(const std::string& name, label_list labels = {},
                        const std::string& help = "");
    gauge get_gauge(const std::string& name, label_list labels = {},
                    const std::string& help = "");
    /// A gauge that stores and exports a double (count ratios, sketch
    /// estimates). A (name, labels) pair is either integer or double
    /// for the registry's lifetime; like histogram bounds, first wins.
    dgauge get_dgauge(const std::string& name, label_list labels = {},
                      const std::string& help = "");
    /// `bounds` must be strictly ascending; an empty list gets
    /// latency_buckets(). Re-registration ignores `bounds` (first wins).
    histogram get_histogram(const std::string& name,
                            std::vector<double> bounds = {},
                            label_list labels = {},
                            const std::string& help = "");

    /// Prometheus text exposition (version 0.0.4): HELP/TYPE per metric
    /// name, cumulative le-labelled histogram buckets.
    std::string prometheus_text() const;

    /// Structured JSON dump: {"metrics":[{name,type,labels,...}]}.
    /// Counters/gauges carry "value"; histograms carry "count", "sum",
    /// and per-bucket {"le","count"} (le of the overflow is "+Inf").
    std::string json_text() const;

    /// Writes prometheus_text() when `path` ends in ".prom", else
    /// json_text(); atomically, via tmp-file + rename, so a crash or a
    /// concurrent reader never observes a truncated dump. Returns false
    /// when the file cannot be written.
    bool write_file(const std::string& path) const;

    /// Number of registered series (for tests).
    std::size_t size() const;

    /// The process-wide registry: library phase timers and every tool's
    /// --metrics-out dump go here.
    static registry& global();

private:
    detail::series* intern(const std::string& name, metric_kind kind,
                           label_list labels, const std::string& help,
                           std::vector<double> bounds, bool fp = false);

    mutable std::mutex mutex_;
    std::deque<detail::series> series_;  // deque: handles stay valid
};

}  // namespace v6::obs
