// dashboard.h — renders the live classification dashboard served at
// GET /dashboard: one self-contained HTML page (embedded CSS, inline
// SVG sparklines, zero external dependencies — it must work from an
// air-gapped lab host) showing the ring-buffer history of every derived
// series, the headline counters, and the recent drift events.
//
// The renderer is a pure function over a plain model, so tests exercise
// it without a server and the HTTP layer stays a one-line callback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "v6class/obs/event_log.h"

namespace v6::obs {

/// One sparkline tile.
struct dashboard_series {
    std::string name;             ///< e.g. "gamma16 @/48"
    std::string help;             ///< one-line description under the value
    double current = 0;           ///< newest value
    std::vector<double> history;  ///< oldest first (the sparkline)
    bool alarmed = false;         ///< a drift alarm fired on the last sample
};

/// One timestamped point of a history chart.
struct chart_point {
    std::int64_t ts = 0;
    double value = 0;
};

/// One time-range chart tile (flight-recorder history: survives
/// restarts, spans arbitrary windows — unlike the in-memory
/// sparklines). The x axis is the actual timestamp, so gaps show as
/// gaps rather than being squeezed out.
struct dashboard_chart {
    std::string name;
    std::string help;
    std::vector<chart_point> points;  ///< ts-ascending
};

/// One alert row of the alerts panel.
struct dashboard_alert {
    std::string name;
    std::string state;   ///< inactive | pending | firing | resolved
    std::string detail;  ///< rule summary, e.g. "v6class_gamma16_48 above 40"
    double value = 0;    ///< newest sampled value
    bool has_value = false;
};

/// One row of the fleet panel (v6agg: one federated collector).
struct dashboard_node {
    std::string name;
    bool fresh = false;           ///< pushed within the staleness window
    double age_seconds = 0;       ///< since the last frame
    std::int64_t sealed_day = -1;  ///< node's newest sealed day (-1 none)
    std::uint64_t records = 0;    ///< node-reported ingest count
    std::uint64_t frames = 0;     ///< frames accepted from the node
    std::string detail;           ///< free-form, e.g. "3 seq gaps"
};

/// One headline stat (records, epoch, distinct counts, ...).
struct dashboard_stat {
    std::string name;
    std::string value;
};

/// One header navigation link (to the sibling endpoints).
struct dashboard_link {
    std::string href;   ///< e.g. "/trace"
    std::string label;  ///< e.g. "trace"
};

struct dashboard_model {
    std::string title = "v6class live";
    std::string status = "serving";        ///< mirrors /healthz status
    double uptime_seconds = 0;
    std::vector<dashboard_stat> stats;     ///< headline row
    std::vector<dashboard_stat> runtime;   ///< compact runtime panel (SIMD
                                           ///< level, RSS, arena, PMU);
                                           ///< omitted when empty
    std::vector<dashboard_link> links;     ///< header nav (/metrics, /trace, ...)
    std::vector<dashboard_series> series;  ///< sparkline grid
    std::vector<dashboard_chart> charts;   ///< tsdb history charts
    std::vector<dashboard_alert> alerts;   ///< alert panel (omitted if empty
                                           ///< and !show_alerts)
    bool show_alerts = false;  ///< render the (empty) panel anyway
    std::vector<dashboard_node> nodes;     ///< fleet panel (omitted if empty
                                           ///< and !show_nodes)
    bool show_nodes = false;   ///< render the (empty) fleet panel anyway
    std::vector<event> events;             ///< recent, oldest first
    unsigned refresh_seconds = 2;          ///< meta-refresh cadence (0 = off)
};

/// An inline-SVG sparkline of `values` (oldest first). Empty or
/// single-valued input renders a flat placeholder line.
std::string svg_sparkline(const std::vector<double>& values, unsigned width,
                          unsigned height);

/// An inline-SVG time-range chart: x positioned by timestamp (gaps stay
/// visible), y by value, with min/max value and first/last ts labels.
std::string svg_timechart(const std::vector<chart_point>& points,
                          unsigned width, unsigned height);

/// The whole page.
std::string render_dashboard(const dashboard_model& model);

/// format_double-style value formatting for tiles: integers stay
/// integral, everything else gets 4 significant digits.
std::string dashboard_value(double v);

}  // namespace v6::obs
