// http.h — a minimal blocking HTTP endpoint exposing a registry for
// live scraping:
//
//   GET /metrics   Prometheus text exposition of the bound registry
//   GET /healthz   liveness: 200 "ok" (plus an optional caller payload)
//
// One acceptor thread, one connection at a time, no keep-alive — the
// xenoeye-style collector discipline: the scrape path must never
// compete with ingest for more than a registry walk. Prometheus
// scrapes are seconds apart; serial handling is plenty.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "v6class/obs/metrics.h"

namespace v6::obs {

class metrics_server {
public:
    metrics_server() = default;
    ~metrics_server() { stop(); }

    metrics_server(const metrics_server&) = delete;
    metrics_server& operator=(const metrics_server&) = delete;

    /// Binds and starts serving `reg` on `port` (0 = any free port; see
    /// port() for the bound one). Returns false with `error` filled on
    /// bind/listen failure. Call at most once per instance.
    bool start(std::uint16_t port, const registry* reg,
               std::string* error = nullptr);

    /// Extra text appended to the /healthz body (e.g. a JSON status
    /// line). Set before start(); called per request.
    void set_health_payload(std::function<std::string()> fn) {
        health_ = std::move(fn);
    }

    /// Closes the listening socket and joins the acceptor thread.
    /// Idempotent.
    void stop();

    bool running() const noexcept { return running_.load(); }
    std::uint16_t port() const noexcept { return port_; }

private:
    void serve_loop();

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    const registry* reg_ = nullptr;
    std::function<std::string()> health_;
    std::thread thread_;
    std::atomic<bool> running_{false};
};

}  // namespace v6::obs
