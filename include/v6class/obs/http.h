// http.h — a minimal blocking HTTP endpoint exposing a registry for
// live scraping and the live classification dashboard:
//
//   GET /metrics    Prometheus text exposition of the bound registry
//   GET /healthz    JSON liveness/readiness: {"status":"starting|
//                   serving|draining","uptime_seconds":N,...} plus any
//                   caller-supplied fields — orchestrators distinguish
//                   a draining shutdown from a healthy server
//   GET /dashboard  self-contained HTML dashboard (also served at /)
//                   when a renderer is installed; 404 otherwise
//   GET /trace      Chrome-trace JSON of the process span tracer
//                   (v6::obs::tracer) — load in chrome://tracing or
//                   Perfetto; empty traceEvents until tracing is on
//   GET /pmu        hardware counter snapshot from v6::obs::pmu: JSON
//                   per-thread/per-site counters, or a topdown-style
//                   HTML table with ?format=html; reports the
//                   unavailability reason where perf_event_open is
//                   restricted
//   GET /profile    folded-stack text from the sampling self-profiler
//                   (v6::obs::profiler) — pipe to flamegraph.pl
//
// Callers can mount further GET endpoints with add_handler() — the
// history API (/api/series, /api/events) and /alerts are registered
// this way by v6stream, keeping this layer ignorant of tsdb and the
// alert engine.
//
// One acceptor thread, one connection at a time, no keep-alive — the
// xenoeye-style collector discipline: the scrape path must never
// compete with ingest for more than a registry walk. Prometheus
// scrapes are seconds apart; serial handling is plenty.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "v6class/obs/metrics.h"

namespace v6::obs {

/// One parsed "?key=value&key=value" query string (duplicate keys: last
/// wins; %XX and '+' decoded).
using query_params = std::map<std::string, std::string>;

query_params parse_query_string(const std::string& query);

/// What a custom handler returns.
struct http_reply {
    int status = 200;  ///< 200, 400, 404, ... (reason phrase derived)
    std::string content_type = "application/json";
    std::string body;
};

class metrics_server {
public:
    metrics_server() = default;
    ~metrics_server() { stop(); }

    metrics_server(const metrics_server&) = delete;
    metrics_server& operator=(const metrics_server&) = delete;

    /// Binds and starts serving `reg` on `port` (0 = any free port; see
    /// port() for the bound one). Returns false with `error` filled on
    /// bind/listen failure. Call at most once per instance. Moves the
    /// health state from "starting" to "serving".
    bool start(std::uint16_t port, const registry* reg,
               std::string* error = nullptr);

    /// Extra JSON fields appended inside the /healthz object, e.g.
    /// `"last_seal_day":12,"records":10400` (no surrounding braces).
    /// Called per request; set before start().
    void set_health_payload(std::function<std::string()> fn) {
        health_ = std::move(fn);
    }

    /// Renders GET /dashboard (and /) as text/html. Called per request;
    /// set before start(). Without one, /dashboard is 404.
    void set_dashboard(std::function<std::string()> fn) {
        dashboard_ = std::move(fn);
    }

    /// Mounts a custom GET endpoint at exactly `path` (no prefix match;
    /// the query string is parsed off and passed in). Set before
    /// start(); built-in paths win on collision.
    void add_handler(const std::string& path,
                     std::function<http_reply(const query_params&)> fn) {
        handlers_[path] = std::move(fn);
    }

    /// Bound on how long the acceptor thread waits for a client's
    /// request head before giving up on the connection. The server is
    /// one thread handling one connection at a time, so without this a
    /// client that connects and sends nothing wedges every subsequent
    /// scrape. Set before start(); tests shrink it.
    void set_read_timeout(std::chrono::milliseconds timeout) {
        read_timeout_ = timeout;
    }

    /// Hard cap on the request head (kMaxRequestBytes): a client
    /// streaming an endless header line gets a 400, not unbounded
    /// buffering.
    static constexpr std::size_t kMaxRequestBytes = 8192;

    /// The /healthz "status" value. start() sets "serving"; a daemon
    /// sets "draining" when it begins an ordered shutdown so probes
    /// stop routing to it while the open day seals.
    void set_state(const std::string& state);
    std::string state() const;

    /// Seconds since start() (0 before).
    double uptime_seconds() const;

    /// The whole /healthz body (exposed for dashboards and tests).
    std::string health_json() const;

    /// Closes the listening socket and joins the acceptor thread.
    /// Idempotent.
    void stop();

    bool running() const noexcept { return running_.load(); }
    std::uint16_t port() const noexcept { return port_; }

private:
    void serve_loop();

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    const registry* reg_ = nullptr;
    std::function<std::string()> health_;
    std::function<std::string()> dashboard_;
    std::map<std::string, std::function<http_reply(const query_params&)>>
        handlers_;
    std::chrono::milliseconds read_timeout_{5000};
    mutable std::mutex state_mutex_;
    std::string state_ = "starting";
    std::chrono::steady_clock::time_point started_{};
    std::thread thread_;
    std::atomic<bool> running_{false};
};

}  // namespace v6::obs
