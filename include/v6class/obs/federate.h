// federate.h — fleet telemetry federation: the remote-write path that
// turns N isolated v6stream collectors into one observable fleet.
//
// The paper's measurements come from many vantage points whose
// observations must be combined before temporal/spatial classification
// is meaningful (Plonka & Berger 2015 §3). PRs 2–7 built a deep
// single-process observability stack; this module federates it:
//
//   * telemetry_pusher (client) — owned by a collector. Serializes
//     metric snapshots, seal-derived series, HLL/P² sketches, and
//     leveled events into V6TEL1 frames (net/telwire.h) and writes
//     them over one TCP connection, reconnecting on failure. Pushes
//     are best-effort: a down aggregator costs the collector a counted
//     send failure, never ingest throughput or a block.
//
//   * telemetry_aggregator (server) — owned by v6agg (or any embedder).
//     One rx thread accepts pushes from N nodes, keeps a per-node
//     registry with last-seen/staleness tracking, merges pushed series
//     into a tsdb under `node=<id>` labels, and maintains per-day
//     global distinct-address estimates by exact HLL union across
//     nodes — the cross-vantage-point dedup the paper itself performs.
//     Register-wise max is associative, commutative, and idempotent,
//     so the union is exact regardless of arrival order or duplicated
//     pushes after a reconnect.
//
// The stream engine stays ignorant of sockets: stream_config::federate
// is a plain seal_fn hook the roll thread invokes with a seal_snapshot
// after each day seal (no engine lock held); v6stream's --push wiring
// is just `cfg.federate = pusher-bound lambda`.
//
// Thread contract: every public method of both classes is safe from
// any thread (one internal mutex each; the aggregator's rx thread is
// internal). The aggregator mutex is a leaf next to the tsdb and
// event_log mutexes — nothing under it calls back out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "v6class/net/telwire.h"
#include "v6class/obs/event_log.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/sketch.h"

namespace v6::obs {

class metrics_server;
namespace tsdb {
class database;
}

namespace federate {

/// Joins a node identity into the label a federated series carries in
/// the tsdb: "" + "a" -> "node=a", "asn=13335" + "a" -> "asn=13335,node=a".
std::string node_label(const std::string& base_label,
                       const std::string& node);

/// What one day seal hands the push hook: the seal-derived series
/// points (ts = day) plus the merged day sketches, by value, so the
/// hook can serialize off the roll thread's critical path.
struct seal_snapshot {
    std::int64_t day = -1;
    std::vector<net::tel_sample> series;
    bool has_sketches = false;
    hyperloglog addresses{4};
    hyperloglog p48s{4};
    hyperloglog p64s{4};
    p2_quantile hits_p50{0.5};
    p2_quantile hits_p99{0.99};
};

/// The engine's per-seal push hook (stream_config::federate). Called by
/// the roll thread after each seal's live update with no engine lock
/// held; a slow hook delays the next report, never ingest.
using seal_fn = std::function<void(const seal_snapshot&)>;

/// Serializes a snapshot's sketches into V6TEL1 entries (empty when
/// !has_sketches).
std::vector<net::tel_sketch> serialize_seal_sketches(const seal_snapshot& s);

// ------------------------------------------------------------- pusher

class telemetry_pusher {
public:
    struct config {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        std::string node = "node";
        /// Bound on how long one push may block in connect()/send():
        /// the hook runs on the roll thread, so a wedged aggregator
        /// must cost milliseconds, not a day roll.
        std::chrono::milliseconds io_timeout{1000};
    };

    explicit telemetry_pusher(config cfg);
    ~telemetry_pusher();

    telemetry_pusher(const telemetry_pusher&) = delete;
    telemetry_pusher& operator=(const telemetry_pusher&) = delete;

    const std::string& node() const noexcept { return cfg_.node; }

    /// Each push_* serializes one frame and sends it, connecting (or
    /// reconnecting after a failure) first. Returns false when the
    /// frame could not be delivered; the failure is counted and the
    /// next push retries the connection.
    bool push_status(const net::tel_status& s);
    bool push_series(const std::vector<net::tel_sample>& samples);
    bool push_events(const std::vector<event>& events);
    /// One seal = one series frame + one sketches frame.
    bool push_seal(const seal_snapshot& snap);

    std::uint64_t frames_sent() const;
    std::uint64_t send_failures() const;
    std::uint64_t reconnects() const;

private:
    bool ensure_connected_locked();
    bool send_frame_locked(const std::vector<std::uint8_t>& frame);
    void close_locked();

    config cfg_;
    mutable std::mutex mutex_;
    net::tel_encoder encoder_;
    int fd_ = -1;
    bool connected_once_ = false;
    std::uint64_t frames_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t reconnects_ = 0;
};

// --------------------------------------------------------- aggregator

/// One row of the per-node registry, as snapshotted for /api/nodes and
/// the fleet dashboard panel.
struct node_status {
    std::string name;
    bool fresh = false;          ///< seen within the staleness window
    double age_seconds = 0;      ///< since the last frame
    double last_seen_unix = 0;   ///< wall clock of the last frame
    std::uint64_t frames = 0;    ///< frames accepted from this node
    std::uint64_t records = 0;   ///< node's reported ingest count
    std::int64_t open_day = -1;  ///< node's reported open day
    std::int64_t sealed_day = -1;  ///< node's newest sealed day
    std::uint64_t seq_gaps = 0;  ///< frames presumed lost from this node
};

class telemetry_aggregator {
public:
    struct config {
        std::uint16_t port = 0;  ///< 0 = any free port (see port())
        /// A node is stale once this long passes without a frame; the
        /// node-absence alert path keys off the same window.
        std::chrono::milliseconds staleness{10000};
        /// Fleet counters/gauges (v6fleet_*) land here when non-null.
        registry* metrics = nullptr;
        /// Node lifecycle events (join/stale/recovered) land here.
        event_log* events = nullptr;
        /// Pushed series (under node= labels) and flushed global
        /// estimates land here when non-null.
        tsdb::database* tsdb = nullptr;
        /// Per-day global sketch state kept for the newest N days.
        int keep_days = 4;
    };

    explicit telemetry_aggregator(config cfg);
    ~telemetry_aggregator();

    telemetry_aggregator(const telemetry_aggregator&) = delete;
    telemetry_aggregator& operator=(const telemetry_aggregator&) = delete;

    /// Binds the TCP listener and starts the rx thread. False with
    /// `error` filled on bind/listen failure. Call at most once.
    bool start(std::string* error = nullptr);

    /// Flushes pending global-estimate series for the newest day,
    /// commits the tsdb, closes every connection, joins the rx thread.
    /// Idempotent.
    void stop();

    bool running() const noexcept { return running_; }
    std::uint16_t port() const noexcept { return port_; }

    /// Snapshot of the node registry, name-ordered.
    std::vector<node_status> nodes() const;

    /// The /api/nodes body: node registry plus the newest day's global
    /// estimates and codec totals.
    std::string nodes_json() const;

    /// The exact cross-node union for (day, sketch id) — register-wise
    /// identical to merging every node's pushed sketch locally. nullopt
    /// when the day is unknown (or outside the keep window) or the id
    /// is not an HLL sketch.
    std::optional<hyperloglog> global_sketch(std::int64_t day,
                                             std::uint8_t id) const;

    /// estimate() of global_sketch(day, id).
    std::optional<double> global_estimate(std::int64_t day,
                                          std::uint8_t id) const;

    /// Newest day any node has pushed sketches for (-1 when none).
    std::int64_t newest_day() const;

    /// Codec totals summed over all connections, live and closed.
    net::tel_decode_stats decode_stats() const;

    /// Alert-engine sampler: "v6fleet_node_up" with label "node=<id>"
    /// yields 1 while the node is fresh and nullopt once it is stale or
    /// unknown — so an `absent` rule fires within one hold-down of a
    /// collector going silent. "v6fleet_nodes" yields the fresh count.
    std::optional<double> sample(const std::string& series,
                                 const std::string& label) const;

    /// Mounts GET /api/nodes on `server` (call before server.start()).
    void register_http(metrics_server& server);

private:
    struct connection {
        int fd = -1;
        std::vector<std::uint8_t> buffer;
        net::tel_decoder decoder;
    };

    struct node_state {
        node_status status;
        std::chrono::steady_clock::time_point last_seen{};
        std::uint64_t high_seq = 0;
        bool seen_any = false;
        bool was_fresh = false;  ///< freshness at the last sweep
        gauge up;                ///< v6fleet_node_up{node=...}
    };

    struct day_state {
        hyperloglog addresses{4};
        hyperloglog p48s{4};
        hyperloglog p64s{4};
        bool have[3] = {false, false, false};
        bool flushed = false;
    };

    void rx_loop();
    void ingest_frame_locked(const net::tel_frame& frame);
    node_state& touch_node_locked(const std::string& name);
    void sweep_locked(std::chrono::steady_clock::time_point now);
    void flush_days_locked(bool include_newest);
    void update_fleet_gauges_locked();

    config cfg_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};

    mutable std::mutex mutex_;
    std::map<std::string, node_state> nodes_;
    std::map<std::int64_t, day_state> days_;
    net::tel_decode_stats closed_stats_;  ///< from closed connections
    std::vector<connection> conns_;
    bool tsdb_dirty_ = false;

    counter frames_total_, rejected_total_, points_total_, events_total_;
    gauge nodes_gauge_, stale_gauge_;
    dgauge global_addresses_, global_48s_, global_64s_;
};

}  // namespace federate
}  // namespace v6::obs
