// profile.h — sampling self-profiler: a sampler thread periodically
// signals registered threads (SIGPROF), whose handler captures a
// backtrace into a per-thread preallocated sample buffer; export
// collapses the samples into folded-stack text for flamegraph.pl or
// speedscope ("thread;frame;frame count" lines).
//
// Threads opt in with register_thread() (the pool and stream workers
// do this on startup; start() registers the calling thread). A
// thread_local guard unregisters automatically at thread exit, before
// the thread id can dangle. The handler is async-signal-safe: it calls
// only ::backtrace() (warmed at start()) and relaxed atomic stores into
// a fixed-size buffer; symbolization happens at export time on the
// reader.
//
// On platforms without <execinfo.h> the profiler compiles to no-ops
// (start() returns false) so callers need no #ifdefs.
#pragma once

#include <cstdint>
#include <string>

namespace v6::obs {

class profiler {
public:
    /// Deepest stack captured per sample; deeper frames are truncated.
    static constexpr int max_depth = 64;
    /// Samples each thread's buffer holds (~42 s at 97 Hz); once full,
    /// further samples on that thread are counted in dropped() instead
    /// of recorded (no wraparound — early samples are kept, which suits
    /// one-shot profile-a-run usage). Buffers are only allocated while
    /// a profile runs (~2 MB per registered thread).
    static constexpr std::size_t samples_per_thread = 4096;

    /// Starts sampling at `hz` samples/second/thread (default 97 — a
    /// prime, so sampling does not beat against periodic work). The
    /// calling thread is registered. Returns false if profiling is
    /// unsupported on this platform or a profiler is already running.
    static bool start(unsigned hz = 97);

    /// Stops the sampler thread. Collected samples are kept for
    /// folded_text(). Safe to call when not running.
    static void stop();

    static bool running() noexcept;

    /// Opts the calling thread into sampling and names its stacks.
    /// Idempotent per thread (the last name wins). Cheap when the
    /// profiler never starts.
    static void register_thread(const std::string& name);

    /// Total samples captured since the last start().
    static std::uint64_t sample_count() noexcept;

    /// Samples lost to full per-thread buffers.
    static std::uint64_t dropped() noexcept;

    /// The collected samples as folded stacks: one
    /// "thread;outer;...;leaf count" line per distinct stack,
    /// symbolized via dladdr (hex addresses where no symbol is known).
    /// Empty when nothing was sampled.
    static std::string folded_text();
};

}  // namespace v6::obs
