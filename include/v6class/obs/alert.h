// alert.h — a small alert rules engine over the flight recorder's
// series and the structured event log: the operator writes threshold /
// rate-of-change / absence / event-sourced rules in a text file
// (`v6stream --alerts=FILE`, hot-reloaded on SIGHUP alongside the ASN
// db), and the engine runs each rule as a pending → firing → resolved
// state machine with a `for=` hold-down, raising structured events,
// exporting v6class_alerts_* metrics, and serving state at GET /alerts.
//
// Rule file grammar (full spec in DESIGN.md §12): one rule per line,
//
//   <name> <key>=<value> ...        # '#' comments, blank lines skipped
//
//   series=<metric>   the tsdb/live series the rule samples
//   label=<label>     series label selector (default "")
//   event=<kind>      event-sourced rule: fires while events of this
//                     kind keep arriving (mutually exclusive with the
//                     sampled conditions below)
//   above=<x>         condition: sample > x
//   below=<x>         condition: sample < x
//   delta=<f>         condition: |v - prev| / max(|prev|, 1e-9) > f
//   absent=<n>        condition: no sample for n consecutive evaluations
//   node=<id>         fleet sugar: collector-absence rule. Expands to
//                     series=v6fleet_node_up label=node=<id> absent=1,
//                     sampled by the federation aggregator (which
//                     returns "no sample" for a stale or unknown node),
//                     so a silent collector fires within one hold-down
//   for=<n>           hold-down: condition must hold for n further
//                     evaluations after entering pending (default 0 —
//                     pending and firing on the same evaluation)
//   level=<l>         severity of raised events: info|warn|error
//                     (default warn)
//
// Exactly one of above/below/delta/absent/event/node per rule.
//
// State machine (per rule):
//
//            cond true                    streak > for
//   inactive ----------> pending(streak) --------------> firing
//      ^                    | cond false                   | cond false
//      |                    v                              v
//      +<------------------ +              inactive <-- resolved
//
// resolved is a visible one-evaluation state (so /alerts and the
// dashboard show the transition) that decays to inactive on the next
// evaluation. Sampled rules treat a missing sample as "no information":
// above/below/delta streaks freeze rather than reset. absence rules
// count exactly those missing evaluations. Event rules fire when a
// matching event arrived since the previous evaluation and auto-resolve
// on the first evaluation without one.
//
// Reload contract: rules are replaced wholesale, but a new rule that is
// definition-identical to a current one (same name and every field)
// keeps its state, streak, and last-sample — a SIGHUP must not resolve
// a firing alert the operator didn't touch.
//
// Thread contract: every public method is safe from any thread — one
// internal mutex serializes them (v6stream calls evaluate() from both
// the roll thread's seal path and the main thread's wall-clock tick).
// Two corollaries: the sampler runs with that mutex held, so it must
// read from a snapshot captured *before* evaluate() and never take a
// lock that another evaluate() caller holds while sampling (lock-order
// inversion); and the notify command runs after the mutex is released,
// so a slow notifier can delay only its own evaluate() call.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "v6class/obs/event_log.h"
#include "v6class/obs/metrics.h"

namespace v6::obs {

enum class alert_cond { above, below, delta, absent, event };
enum class alert_state { inactive, pending, firing, resolved };

const char* alert_state_name(alert_state s) noexcept;

/// One parsed rule.
struct alert_rule {
    std::string name;
    std::string series;  ///< sampled rules: metric name
    std::string label;   ///< sampled rules: label selector
    std::string event_kind;  ///< event rules: kind to match
    alert_cond cond = alert_cond::above;
    double threshold = 0;     ///< above/below/delta bound; absent: n evals
    std::uint32_t hold = 0;   ///< for=: extra evaluations before firing
    event_level level = event_level::warn;

    friend bool operator==(const alert_rule&, const alert_rule&) = default;
};

/// Parses a whole rules file text. Returns nullopt with *error naming
/// the offending line on any syntax error (unknown key, missing
/// condition, two conditions, bad number).
std::optional<std::vector<alert_rule>> parse_alert_rules(
    const std::string& text, std::string* error = nullptr);

class alert_engine {
public:
    /// Samples one (series, label) at evaluation time; nullopt = no
    /// sample this round (series missing or not updated).
    using sampler = std::function<std::optional<double>(
        const std::string& series, const std::string& label)>;

    /// `reg` receives the v6class_alerts_* metrics; `log` receives the
    /// raised transition events and feeds event-sourced rules. Either
    /// may be null (no metrics / event rules never match).
    explicit alert_engine(registry* reg = nullptr, event_log* log = nullptr);

    alert_engine(const alert_engine&) = delete;
    alert_engine& operator=(const alert_engine&) = delete;

    /// Replaces the rule set, preserving per-rule state for rules that
    /// are definition-identical to a current rule (see header comment).
    void load_rules(std::vector<alert_rule> rules);

    /// Reads and parses `path`, then load_rules(). On failure the
    /// current rules keep running (the reload contract the ASN db
    /// follows) and false is returned with *error set.
    bool load_file(const std::string& path, std::string* error = nullptr);

    /// Shell command run on every firing/resolved transition with one
    /// argument: the transition's JSON object. Empty disables (default).
    void set_notify_command(std::string cmd);

    /// Runs every rule once against `sample` (and any events that
    /// arrived since the previous call). `ts` labels the evaluation in
    /// raised events (the engine attaches no meaning to it).
    void evaluate(const sampler& sample, std::int64_t ts);

    /// Current state of every rule as a JSON array (GET /alerts).
    std::string status_json() const;

    /// One rule's state for structured consumers (dashboard panel).
    struct status {
        alert_rule rule;
        alert_state state = alert_state::inactive;
        std::uint32_t streak = 0;
        std::optional<double> value;  ///< newest sampled value
        std::int64_t since_ts = 0;
    };
    std::vector<status> snapshot() const;

    std::size_t firing_count() const;
    std::size_t pending_count() const;
    std::size_t rule_count() const;
    std::uint64_t evaluations() const;

private:
    struct rule_state {
        alert_rule rule;
        alert_state state = alert_state::inactive;
        std::uint32_t streak = 0;       ///< consecutive condition-true evals
        std::uint32_t missing = 0;      ///< consecutive no-sample evals
        std::optional<double> last_sample;
        std::optional<double> current;  ///< newest sample seen (for /alerts)
        std::int64_t since_ts = 0;      ///< ts of the newest state change
    };

    void transition_locked(rule_state& rs, alert_state next, std::int64_t ts);

    registry* registry_ = nullptr;
    event_log* log_ = nullptr;

    mutable std::mutex mutex_;
    std::vector<rule_state> rules_;
    std::string notify_command_;
    /// Rendered notify commands queued by transition_locked(), run by
    /// evaluate() after the mutex is released.
    std::vector<std::string> notify_queue_;
    std::uint64_t event_cursor_ = 0;  ///< last event seq consumed
    std::uint64_t evaluations_ = 0;

    counter pending_total_, firing_total_, resolved_total_;
    gauge pending_gauge_, firing_gauge_;
};

}  // namespace v6::obs
