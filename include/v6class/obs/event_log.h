// event_log.h — the repo's first logging subsystem: a leveled,
// structured event log with a JSON-lines representation. Events are
// rare (drift alarms, lifecycle transitions), so this is deliberately
// not a hot-path facility: log() takes a mutex, stamps wall-clock time,
// and retains the event in a bounded in-memory buffer for the
// dashboard's "recent events" pane. `v6stream --events-out=FILE` dumps
// the whole retained log as JSON lines on exit (atomically, via
// tmp-file + rename — see atomic_file.h).
//
// One line per event:
//   {"seq":3,"time":1722950000.125,"level":"warn","kind":"drift",
//    "message":"gamma16_48 shifted","fields":{"day":12,"z":6.1}}
//
// Field values are pre-rendered JSON tokens (see event_field); the
// writer does not guess types.
//
// For long daemon runs, enable_file() turns --events-out into a
// streaming sink instead of an exit dump: every event is appended to
// the file as it is logged, and once the file exceeds its size cap it
// is rotated to "<path>.1" (one generation kept, the common logrotate
// shape) so an unattended run cannot grow it unboundedly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "v6class/obs/metrics.h"

namespace v6::obs {

enum class event_level { info, warn, error };

const char* event_level_name(event_level level) noexcept;

/// One structured field: the value is a pre-rendered JSON token
/// (number, quoted string, ...). Use the event_field() helpers.
using event_fields = std::vector<std::pair<std::string, std::string>>;

std::string event_field_number(double v);
std::string event_field_string(const std::string& v);

/// One event, as retained and as serialized.
struct event {
    std::uint64_t seq = 0;   ///< 1-based sequence number within the log
    double unix_time = 0;    ///< wall-clock seconds since the epoch
    event_level level = event_level::info;
    std::string kind;        ///< machine-matchable family, e.g. "drift"
    std::string message;     ///< one human-readable sentence
    event_fields fields;     ///< structured payload
};

/// Serializes one event as a single JSON object (no trailing newline).
std::string event_json(const event& e);

class event_log {
public:
    /// Retains at most `keep` events in memory (oldest dropped first).
    explicit event_log(std::size_t keep = 4096) : keep_(keep ? keep : 1) {}

    event_log(const event_log&) = delete;
    event_log& operator=(const event_log&) = delete;

    ~event_log();

    /// Appends one event; seq and unix_time are stamped here.
    void log(event_level level, std::string kind, std::string message,
             event_fields fields = {});

    /// Events ever logged (>= retained count).
    std::uint64_t total() const;

    /// The newest `n` retained events, oldest first.
    std::vector<event> recent(std::size_t n) const;

    /// Retained events with seq > `after_seq`, oldest first — the
    /// forwarding cursor: tsdb/alert consumers remember the last seq
    /// they saw and drain only what is new.
    std::vector<event> since(std::uint64_t after_seq) const;

    /// Switches to streaming mode: every subsequent event is appended
    /// to `path` as a JSON line; already-retained events are written
    /// first so the file starts complete. When the file would exceed
    /// `max_bytes` it is renamed to "<path>.1" (replacing any previous
    /// rotation) and a fresh file is started; each rotation bumps
    /// v6class_event_log_rotations_total in `reg` when non-null.
    /// Returns false (mode unchanged) when the file cannot be opened.
    bool enable_file(const std::string& path, std::uint64_t max_bytes,
                     registry* reg = nullptr);

    /// True once enable_file() succeeded — the exit dump is redundant
    /// then (obs_exporter checks this).
    bool file_enabled() const;

    /// Rotations performed so far (also the _rotations_total counter
    /// when a registry was bound).
    std::uint64_t rotations() const;

    /// Bytes in the current streaming file (0 without streaming mode;
    /// also the v6class_event_log_file_bytes gauge when bound).
    std::uint64_t file_bytes() const;

    /// Every retained event as JSON lines (one object per line).
    std::string json_lines() const;

    /// Writes json_lines() to `path` atomically (tmp + rename). Returns
    /// false when the file cannot be written.
    bool dump(const std::string& path) const;

    /// The process-wide log, mirroring registry::global(): the stream
    /// engine reports here unless stream_config injects another, and
    /// --events-out dumps it.
    static event_log& global();

private:
    void rotate_file_locked();

    mutable std::mutex mutex_;
    std::size_t keep_;
    std::uint64_t total_ = 0;
    std::deque<event> events_;

    std::FILE* file_ = nullptr;  ///< null until enable_file()
    std::string file_path_;
    std::uint64_t file_max_bytes_ = 0;
    std::uint64_t file_bytes_ = 0;
    std::uint64_t rotation_count_ = 0;
    counter rotations_;
    gauge file_bytes_gauge_;
};

}  // namespace v6::obs
