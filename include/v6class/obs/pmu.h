// pmu.h — hardware performance counters for the obs layer: per-thread
// perf_event_open(2) counter groups (cycles, instructions, cache
// references/misses, branches/branch misses, plus software task-clock
// and page-faults) read back with one read(2) of the grouped ring and
// scaled for multiplexing via time_enabled/time_running.
//
// Three integration surfaces:
//   * pmu_scope — opt-in RAII companion to obs::span that attributes
//     counter deltas to a named site ("shard.ingest_batch", "par.task",
//     ...). Sites accumulate process-wide; derived rates (IPC,
//     cache-miss rate, branch-miss rate) export through the metrics
//     registry into /metrics, the tsdb, and the dashboard.
//   * thread/site snapshots — the /pmu endpoint and --pmu-out dumps
//     render a per-thread topdown-style table from snapshot_json() /
//     topdown_html().
//   * benches — bench_gbench.h meters whole benchmark runs and emits
//     v6_bench_ipc / v6_bench_cache_misses_per_item for gating.
//
// Availability is probed once per process and degrades in tiers:
//   hardware  — the full group opened (reason "ok"),
//   software  — no hardware PMU (VMs, perf_event_paranoid, seccomp),
//               but software clocks count; IPC/cache rates are absent,
//   unavailable — perf_event_open denied outright, or disabled via
//               V6CLASS_DISABLE_PMU=1; everything is a no-op.
// The v6class_pmu_available gauge carries the tier and the reason, so
// a dump from a locked-down container explains itself.
//
// Disabled cost mirrors the tracer: constructing a pmu_scope while
// counting is off is one relaxed atomic load and a branch. Enabled
// cost is two read(2) syscalls per scope (~1-2 us), so scopes belong
// on batch-grained paths, not per-record ones.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace v6::obs {

class registry;

namespace pmu {

/// Counter slots in a group, in read-back order. Hardware slots may be
/// individually absent (the kernel rejects events the CPU lacks);
/// software slots survive everywhere perf_event_open works at all.
enum class counter : unsigned {
    cycles = 0,
    instructions,
    cache_references,
    cache_misses,
    branches,
    branch_misses,
    task_clock_ns,
    page_faults,
};
inline constexpr std::size_t counter_slots = 8;

const char* counter_name(counter c) noexcept;

enum class mode : int { unavailable = 0, software = 1, hardware = 2 };

const char* mode_name(mode m) noexcept;

/// Result of the one-shot process-wide probe.
struct availability {
    mode tier = mode::unavailable;
    std::string reason;  ///< "ok", or why the tier is degraded
    bool counting() const noexcept { return tier != mode::unavailable; }
    bool hardware() const noexcept { return tier == mode::hardware; }
};

/// Probes perf_event_open on first call (cheap afterwards). Honors
/// V6CLASS_DISABLE_PMU=1, which forces `unavailable` without touching
/// the syscall at all.
const availability& available();

/// Arms pmu_scope delta collection. No-op (stays disabled) when
/// available().counting() is false, so callers need no guard.
void enable() noexcept;
void disable() noexcept;
bool enabled() noexcept;

/// Multiplexing correction: the kernel rotates groups when more are
/// open than the PMU has slots, and reports how long this group was
/// scheduled (`running`) out of how long it was enabled (`enabled`).
/// Returns raw * enabled / running (raw when the group was never
/// descheduled, 0 when it never ran). Pure — unit-testable against
/// synthetic times.
std::uint64_t scale_value(std::uint64_t raw, std::uint64_t enabled,
                          std::uint64_t running) noexcept;

/// One group read: raw counter values plus the group's scheduling
/// times. Values are raw; scaled(c) applies scale_value.
struct sample {
    std::array<std::uint64_t, counter_slots> raw{};
    std::array<bool, counter_slots> present{};
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
    bool ok = false;

    bool has(counter c) const noexcept {
        return present[static_cast<unsigned>(c)];
    }
    std::uint64_t operator[](counter c) const noexcept {
        return raw[static_cast<unsigned>(c)];
    }
    std::uint64_t scaled(counter c) const noexcept {
        return scale_value((*this)[c], time_enabled, time_running);
    }
};

/// Reads the calling thread's counter group, opening it on first use
/// (lazy: threads that never count never pay the fds). sample.ok is
/// false when the group cannot be opened or read.
sample read_current() noexcept;

/// Accumulated deltas of one pmu_scope site. Totals are multiplexing-
/// scaled at scope end; nested scopes both count their overlap (the
/// outer span includes the inner, exactly like span durations).
struct site_stats {
    const char* name = "";
    std::uint64_t spans = 0;
    std::array<std::uint64_t, counter_slots> total{};
    std::array<bool, counter_slots> present{};

    std::uint64_t operator[](counter c) const noexcept {
        return total[static_cast<unsigned>(c)];
    }
    bool has(counter c) const noexcept {
        return present[static_cast<unsigned>(c)];
    }
    /// Instructions per cycle; 0 when either counter is absent/zero.
    double ipc() const noexcept;
    /// cache_misses / cache_references (0 when absent).
    double cache_miss_rate() const noexcept;
    /// branch_misses / branches (0 when absent).
    double branch_miss_rate() const noexcept;
};

/// Every site that has recorded at least one scope, registration order.
std::vector<site_stats> site_snapshot();

/// One named site's totals (zeros when the site never recorded).
site_stats site_totals(const char* name);

/// One live thread's current cumulative counters.
struct thread_sample {
    std::string name;  ///< from note_thread_name, else "tid-<n>"
    std::uint32_t tid = 0;
    sample s;
};

/// Reads every registered thread's group from the calling thread
/// (perf fds are readable cross-thread). Threads appear once they
/// have opened a group; exited threads drop out.
std::vector<thread_sample> thread_snapshot();

/// Names the calling thread in /pmu output. tracer::set_thread_name
/// forwards here, so pool/stream workers are named with no extra call.
void note_thread_name(const std::string& name);

/// Full snapshot (mode, reason, threads, sites) as JSON — the /pmu
/// endpoint body and the --pmu-out file format.
std::string snapshot_json();

/// The same snapshot as a self-contained HTML topdown table
/// (/pmu?format=html).
std::string topdown_html();

/// Exports v6class_pmu_available{mode,reason} and per-site derived
/// gauges (v6class_pmu_ipc{site=...}, cache/branch miss rates,
/// task-clock seconds) into `reg`. Called from update_process_gauges.
void export_gauges(registry& reg);

/// Test hook: closes the calling thread's group, forgets all sites and
/// the cached probe (so V6CLASS_DISABLE_PMU set after startup takes
/// effect), and disables counting. Not thread-safe against concurrent
/// scopes — tests only.
void reset_for_test();

namespace detail {
// Hot-path gate, exposed so pmu_scope inlines to one relaxed load and
// a branch while counting is off (the common case).
extern std::atomic<bool> pmu_enabled;
struct site_rec;
site_rec* intern_site(const char* name) noexcept;
void scope_end(site_rec* site, const sample& begin) noexcept;
}  // namespace detail

}  // namespace pmu

/// RAII counter-delta scope: reads the thread's group at construction
/// and destruction and adds the multiplexing-scaled delta to `site`'s
/// totals. `site` must be a string literal (interned by pointer, then
/// by content). No-op unless pmu::enable() has been called and the
/// probe succeeded.
class pmu_scope {
public:
    explicit pmu_scope(const char* site) noexcept {
        if (pmu::detail::pmu_enabled.load(std::memory_order_relaxed))
            begin(site);
    }
    ~pmu_scope() {
        if (site_) pmu::detail::scope_end(site_, begin_);
    }

    pmu_scope(const pmu_scope&) = delete;
    pmu_scope& operator=(const pmu_scope&) = delete;

private:
    void begin(const char* site) noexcept;

    pmu::detail::site_rec* site_ = nullptr;
    pmu::sample begin_{};
};

}  // namespace v6::obs
