// sketch.h — streaming approximations feeding the live classification
// dashboard: a HyperLogLog distinct-count estimator and a P² streaming
// quantile estimator.
//
// Both are fixed-size after construction and allocation-free per
// update, so they can sit on the ingest hot path next to the metric
// handles (see DESIGN.md "Observability"). Neither locks: callers
// provide the synchronization (the stream engine keeps one HLL set per
// shard, written only by that shard's worker, and merges them under the
// seal's exclusive section — HLL register-wise max is an exact union).
//
// Error bounds (asserted by tests/obs_sketch_accuracy_test.cpp):
//   * hyperloglog, precision p: standard error 1.04 / sqrt(2^p); the
//     default p = 14 (16 KiB of registers) gives ~0.8%, comfortably
//     inside the 2% budget at 10^6 distinct /64s.
//   * p2_quantile: rank error well under 1% for the smooth hit-count
//     distributions it watches (P² keeps 5 markers, O(1) per sample).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace v6::obs {

/// HyperLogLog cardinality estimator over caller-supplied 64-bit
/// hashes (Flajolet et al. 2007, with the linear-counting small-range
/// correction). add() applies a 64-bit finalizer internally, so any
/// reasonably-mixed hash — address_hash included — is acceptable input.
class hyperloglog {
public:
    /// 2^precision one-byte registers; precision is clamped to [4, 18].
    explicit hyperloglog(unsigned precision = 14);

    /// Folds one hashed element in: one mask, one count-leading-zeros,
    /// one register max. Duplicate elements are idempotent.
    void add(std::uint64_t hash) noexcept;

    /// The cardinality estimate (0 for an empty sketch).
    double estimate() const noexcept;

    /// Register-wise max: afterwards this estimates the union of both
    /// sketches' element sets. Precondition: equal precision.
    void merge(const hyperloglog& other) noexcept;

    /// Returns to the empty state, keeping the registers allocated.
    void reset() noexcept;

    unsigned precision() const noexcept { return precision_; }
    std::size_t register_count() const noexcept { return registers_.size(); }
    const std::vector<std::uint8_t>& registers() const noexcept {
        return registers_;
    }

    /// Appends the wire form — `u8 precision | 2^precision register
    /// bytes` — to `out`. Deserializing the result reproduces this
    /// sketch bit-for-bit, so serialized sketches can cross process
    /// boundaries and still union exactly (see v6::obs::federate).
    void serialize(std::vector<std::uint8_t>& out) const;

    /// Parses exactly one serialized sketch occupying the whole buffer.
    /// Rejects (nullopt) an out-of-range precision, a short or oversized
    /// buffer, or a register value that add() could never produce.
    static std::optional<hyperloglog> deserialize(const std::uint8_t* data,
                                                  std::size_t size);

    bool operator==(const hyperloglog&) const = default;

private:
    unsigned precision_;
    std::vector<std::uint8_t> registers_;
};

/// P² single-quantile estimator (Jain & Chlamtac 1985): tracks one
/// quantile of a stream with five markers, no samples stored. Exact
/// until the fifth observation, then the classic parabolic marker
/// adjustment.
class p2_quantile {
public:
    /// `q` in (0, 1), e.g. 0.5 for the median, 0.99 for p99.
    explicit p2_quantile(double q = 0.5);

    void observe(double x) noexcept;

    /// Current estimate of the q-quantile (0 before any observation).
    double value() const noexcept;

    double quantile() const noexcept { return q_; }
    std::uint64_t count() const noexcept { return count_; }
    void reset() noexcept;

    /// Appends the complete marker state (q, count, then the four
    /// five-element marker arrays as LE doubles) to `out`. Unlike HLL
    /// there is no exact union for P² state, so the wire form's job is
    /// a faithful round-trip: deserialize(serialize(x)) == x.
    void serialize(std::vector<std::uint8_t>& out) const;

    /// Parses exactly one serialized estimator occupying the whole
    /// buffer; rejects a wrong-sized buffer or a q outside (0, 1).
    static std::optional<p2_quantile> deserialize(const std::uint8_t* data,
                                                  std::size_t size);

    bool operator==(const p2_quantile&) const = default;

private:
    double q_;
    std::uint64_t count_ = 0;
    double height_[5] = {};    // marker heights (q estimates)
    double position_[5] = {};  // actual marker positions (1-based ranks)
    double desired_[5] = {};   // desired positions
    double increment_[5] = {}; // desired-position increments per sample
};

}  // namespace v6::obs
