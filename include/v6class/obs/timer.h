// timer.h — RAII phase timing: scoped spans that feed a latency
// histogram and, when tracing is enabled, the v6::obs::trace span
// tracer (see trace.h).
//
// phase_timer is the cheap primitive: two steady_clock reads around a
// scope, one histogram observation at the end. With a null histogram it
// compiles to nothing (no clock reads), so callers can construct it
// unconditionally and let handle wiring decide.
//
// trace_scope additionally opens a tracer span, so every phase shows up
// in the /trace Chrome-trace export and parents any fan-out launched
// inside it. Load the resulting file in chrome://tracing or
// https://ui.perfetto.dev to see the phases of a run laid out on a
// timeline per thread. Tracing is off until trace_log::enable(path) or
// tracer::enable(); when off, a trace_scope degrades to its
// phase_timer.
#pragma once

#include <chrono>
#include <string>

#include "v6class/obs/metrics.h"
#include "v6class/obs/trace.h"

namespace v6::obs {

/// Observes the scope's elapsed seconds into a histogram on destruction
/// (or on an early stop()).
class phase_timer {
public:
    explicit phase_timer(histogram h) noexcept : h_(h) {
        if (h_) start_ = std::chrono::steady_clock::now();
    }
    ~phase_timer() { stop(); }

    phase_timer(const phase_timer&) = delete;
    phase_timer& operator=(const phase_timer&) = delete;

    /// Observes now instead of at scope exit; returns elapsed seconds.
    /// Subsequent calls (and the destructor) are no-ops.
    double stop() noexcept {
        if (!h_ || stopped_) return 0.0;
        stopped_ = true;
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
        h_.observe(s);
        return s;
    }

private:
    histogram h_;
    std::chrono::steady_clock::time_point start_{};
    bool stopped_ = false;
};

/// File façade over the span tracer for --trace-out: enable(path)
/// turns tracing on and remembers where to write; flush() (and process
/// exit) writes the tracer's Chrome-trace JSON there atomically. Spans
/// are buffered in the tracer's lock-free rings, so tools need no
/// explicit teardown on any return path.
class trace_log {
public:
    /// Starts collecting, to be written to `path`. Idempotent (the last
    /// path wins).
    static void enable(std::string path);
    static bool enabled() noexcept;

    /// Records one complete event (timestamps in microseconds since the
    /// tracer origin) as a parentless span. No-op while disabled.
    static void record(const char* name, double ts_us, double dur_us);

    /// Writes the collected spans to the enabled path. Returns false
    /// when no path is set or the file cannot be written. Spans are
    /// kept, so periodic flushes write ever-longer prefixes of the run.
    static bool flush();

    /// Drops all collected spans and disables collection (tests).
    static void reset();
};

/// phase_timer plus a tracer span named `name`. The span makes this
/// phase the thread's current trace context, so tasks fanned out from
/// inside the scope parent to it.
class trace_scope {
public:
    explicit trace_scope(const char* name, histogram h = {}) noexcept
        : timer_(h), span_(name) {}

    trace_scope(const trace_scope&) = delete;
    trace_scope& operator=(const trace_scope&) = delete;

private:
    phase_timer timer_;
    span span_;  // destroyed first: the span closes before the timer
};

}  // namespace v6::obs
