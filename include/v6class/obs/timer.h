// timer.h — RAII phase timing: scoped spans that feed a latency
// histogram and, when tracing is enabled, a Chrome-trace event log.
//
// phase_timer is the cheap primitive: two steady_clock reads around a
// scope, one histogram observation at the end. With a null histogram it
// compiles to nothing (no clock reads), so callers can construct it
// unconditionally and let handle wiring decide.
//
// trace_scope additionally records a complete ("ph":"X") event into the
// process trace log. Load the resulting file in chrome://tracing or
// https://ui.perfetto.dev to see the phases of a run laid out on a
// timeline per thread. Tracing is off until trace_log::enable(path);
// when off, a trace_scope degrades to its phase_timer.
#pragma once

#include <chrono>
#include <string>

#include "v6class/obs/metrics.h"

namespace v6::obs {

/// Observes the scope's elapsed seconds into a histogram on destruction
/// (or on an early stop()).
class phase_timer {
public:
    explicit phase_timer(histogram h) noexcept : h_(h) {
        if (h_) start_ = std::chrono::steady_clock::now();
    }
    ~phase_timer() { stop(); }

    phase_timer(const phase_timer&) = delete;
    phase_timer& operator=(const phase_timer&) = delete;

    /// Observes now instead of at scope exit; returns elapsed seconds.
    /// Subsequent calls (and the destructor) are no-ops.
    double stop() noexcept {
        if (!h_ || stopped_) return 0.0;
        stopped_ = true;
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
        h_.observe(s);
        return s;
    }

private:
    histogram h_;
    std::chrono::steady_clock::time_point start_{};
    bool stopped_ = false;
};

/// Process-wide Chrome-trace collector. Events are buffered in memory
/// and written as a JSON array on flush() (and automatically at process
/// exit once enabled). Thread-safe; record() takes a mutex, so tracing
/// is a diagnostic mode, not a hot-path default.
class trace_log {
public:
    /// Starts collecting, to be written to `path`. Idempotent (the last
    /// path wins).
    static void enable(std::string path);
    static bool enabled() noexcept;

    /// Records one complete event (timestamps in microseconds since the
    /// first enable). No-op while disabled.
    static void record(const char* name, double ts_us, double dur_us);

    /// Writes the buffered events to the enabled path. Returns false
    /// when disabled or the file cannot be written. The buffer is kept,
    /// so periodic flushes write ever-longer prefixes of the run.
    static bool flush();

    /// Drops all buffered events and disables collection (tests).
    static void reset();
};

/// phase_timer plus a trace event named `name`.
class trace_scope {
public:
    explicit trace_scope(const char* name, histogram h = {}) noexcept;
    ~trace_scope();

    trace_scope(const trace_scope&) = delete;
    trace_scope& operator=(const trace_scope&) = delete;

private:
    const char* name_;
    phase_timer timer_;
    bool tracing_;
    double start_us_ = 0.0;
};

}  // namespace v6::obs
