// population.h — aggregate population distributions (Kohler et al.),
// used for Figure 3 of the paper: the complementary CDF of the number of
// observed addresses (or /64s) per aggregate of a given length.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/ip/address.h"

namespace v6 {

/// Populations of every active /agg_len aggregate: for each /agg_len
/// prefix containing at least one input element, the number of distinct
/// elements it contains. Input is copied, deduplicated internally. The
/// result is sorted ascending.
std::vector<std::uint64_t> aggregate_populations(std::vector<address> elements,
                                                 unsigned agg_len);

/// One point of an empirical complementary CDF.
struct ccdf_point {
    double value = 0.0;       ///< threshold x
    double proportion = 0.0;  ///< P(X >= x)
};

/// Empirical CCDF of a sample: for each distinct value x ascending, the
/// proportion of samples >= x. The first point is always (min, 1.0).
std::vector<ccdf_point> ccdf_of(std::vector<std::uint64_t> samples);

/// Reads a CCDF at a threshold: proportion of samples >= x.
double ccdf_at(const std::vector<ccdf_point>& ccdf, double x) noexcept;

}  // namespace v6
