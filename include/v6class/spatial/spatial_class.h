// spatial_class.h — MRA/density-based address classes.
//
// Section 5.2.1 closes: "While defining MRA-based address classes is
// left for future work, we begin by developing spatial classification by
// identifying dense prefixes." This header finishes that thought: every
// address of a population is assigned a spatial class from the structure
// of its surroundings — the quantity the MRA plot visualizes — so the
// spatial dimension becomes a per-address label like the temporal one.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "v6class/trie/radix_tree.h"

namespace v6 {

/// Where an address sits in the observed population's structure.
enum class spatial_class : std::uint8_t {
    /// Inside an n@/p-dense block: tightly packed neighbours, a natural
    /// scan target (the 2001:db8:10:8::17f kind).
    dense_block,
    /// Shares its /64 with several observed addresses but no dense
    /// block: a busy subnet of distinct hosts (privacy churn, DHCPv6).
    busy_subnet,
    /// Effectively alone under its /64 with a low interface identifier
    /// (::1-style): manual assignment, likely infrastructure or CPE.
    lone_low,
    /// Effectively alone with a high-entropy identifier: the classic
    /// isolated privacy/SLAAC host.
    lone_random,
};

std::string_view to_string(spatial_class c) noexcept;

/// Tuning knobs; the defaults mirror the paper's working parameters.
struct spatial_class_options {
    std::uint64_t dense_n = 2;   ///< the n of n@/p-dense
    unsigned dense_p = 112;      ///< the p of n@/p-dense
    std::uint64_t busy_k = 4;    ///< /64 population that counts as busy
};

/// Classifies addresses of a population against the population itself.
///
/// Build the classifier once over the observed set (each distinct
/// address added to the tree at /128), then query any member. Querying
/// an address absent from the population classifies its *position* the
/// same way (with itself not counted).
class spatial_classifier {
public:
    /// The tree must contain the population as /128 entries; it is
    /// borrowed and must outlive the classifier.
    explicit spatial_classifier(const radix_tree& population,
                                spatial_class_options options = {});

    spatial_class classify(const address& a) const noexcept;

    /// Classifies a whole set and tallies per class (indexed by the enum
    /// value; 4 entries).
    std::vector<std::uint64_t> tally(const std::vector<address>& addrs) const;

private:
    const radix_tree* population_;
    spatial_class_options opt_;
};

}  // namespace v6
