// mra.h — Multi-Resolution Aggregate counts and count ratios
// (Section 5.2.1 of the paper, generalizing Kohler et al.).
//
// For a set of N distinct addresses, the active aggregate count n_p is
// the number of /p prefixes needed to cover the set (n_0 = 1,
// n_128 = N). The MRA count ratio at resolution k is
//
//     gamma^k_p = n_{p+k} / n_p,   1 <= gamma^k_p <= 2^k,
//
// computed canonically at p = 0, k, 2k, ... The product of the ratios of
// one resolution equals N — an invariant the tests exploit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {

/// Aggregate counts for every prefix length, plus ratio accessors.
class mra_series {
public:
    /// Constructs from precomputed aggregate counts n_0..n_128.
    explicit mra_series(std::array<std::uint64_t, 129> counts) noexcept
        : counts_(counts) {}

    /// n_p: the number of /p prefixes covering the address set.
    std::uint64_t aggregate_count(unsigned p) const noexcept { return counts_[p]; }

    /// Number of distinct addresses in the set (n_128).
    std::uint64_t size() const noexcept { return counts_[128]; }

    /// gamma^k_p = n_{p+k} / n_p. Precondition: p + k <= 128. Returns 1
    /// for an empty set.
    double ratio(unsigned p, unsigned k) const noexcept;

    /// The canonical ratio sequence for resolution k: gamma^k_p at
    /// p = 0, k, 2k, ..., 128-k (so 128/k values). k must divide 128.
    std::vector<double> ratios(unsigned k) const;

private:
    std::array<std::uint64_t, 129> counts_;
};

/// Computes aggregate counts from an address list (copied, sorted,
/// deduplicated internally). O(N log N).
mra_series compute_mra(std::vector<address> addrs);

/// Same, for input already sorted and deduplicated. O(N).
mra_series compute_mra_sorted(const std::vector<address>& sorted_unique);

/// Trie-backed computation: n_p = 1 + (splits above depth p). The tree
/// must have been built by adding full /128 addresses (duplicates fine).
/// Cross-checks the sorted-array path; useful when a trie already exists.
mra_series compute_mra_from_trie(const radix_tree& tree);

}  // namespace v6
