// gnuplot.h — emit gnuplot scripts + data files for the paper's figures.
//
// The ASCII renderers give an immediate terminal view; these writers
// produce publication-style artifacts: a .dat file per series and a .gp
// script that reproduces the paper's axes (log2 y for MRA plots, log-log
// for CCDFs). Rendering requires gnuplot but generating the files does
// not.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "v6class/spatial/mra_plot.h"
#include "v6class/spatial/population.h"

namespace v6 {

/// Writes `<stem>.dat` and `<stem>.gp` under `dir` for one MRA plot.
/// Returns the path of the script. Throws std::runtime_error on I/O
/// failure.
std::filesystem::path write_mra_gnuplot(const std::filesystem::path& dir,
                                        const std::string& stem,
                                        const mra_plot_data& plot);

/// One CCDF curve with its legend label.
struct labeled_ccdf {
    std::string label;
    std::vector<ccdf_point> points;
};

/// Writes `<stem>_<i>.dat` per curve and one `<stem>.gp` with log-log
/// axes (the Figure 3 / Figure 5a style). Returns the script path.
std::filesystem::path write_ccdf_gnuplot(const std::filesystem::path& dir,
                                         const std::string& stem,
                                         const std::vector<labeled_ccdf>& curves);

}  // namespace v6
