// density.h — prefix-density spatial classes (Sections 5.2.2/5.2.3) and
// the Table 3 accounting built on them.
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/trie/radix_tree.h"

namespace v6 {

/// One row of the paper's Table 3: the "n @ /p" density class evaluated
/// over a dataset.
struct density_row {
    std::uint64_t n = 0;   ///< minimum observed addresses per prefix
    unsigned p = 0;        ///< prefix length of the class
    std::uint64_t dense_prefix_count = 0;  ///< prefixes meeting the class
    std::uint64_t covered_addresses = 0;   ///< observed addrs inside them
    long double possible_addresses = 0;    ///< dense_prefix_count * 2^(128-p)
    long double address_density = 0;       ///< covered / possible
};

/// Evaluates the class n@/p over a tree built from the dataset's distinct
/// addresses (each added once at /128).
density_row compute_density_class(const radix_tree& tree, std::uint64_t n, unsigned p);

/// Evaluates many classes at once (one pass per class over the tree).
std::vector<density_row> compute_density_table(
    const radix_tree& tree,
    const std::vector<std::pair<std::uint64_t, unsigned>>& classes);

/// The addresses of `candidates` that fall inside any of the (sorted,
/// non-overlapping) dense prefixes. Used to count covered WWW client /
/// router addresses and to pick probe targets.
std::vector<address> addresses_covered(const std::vector<dense_prefix>& dense,
                                       std::vector<address> candidates);

/// Enumerates every possible address of the dense prefixes, capped at
/// `limit` outputs — the scan-target expansion the paper proposes for
/// /112-and-smaller blocks. Prefixes wider than 32 host bits are skipped
/// (not feasibly scannable), mirroring the paper's feasibility argument.
std::vector<address> expand_scan_targets(const std::vector<dense_prefix>& dense,
                                         std::size_t limit);

}  // namespace v6
