// mra_plot.h — the Multi-Resolution Aggregate plot (Figures 2 and 5):
// aggregation count ratios at three resolutions (16-bit segments, 4-bit
// nybbles, single bits) against prefix length, on a log2 y scale.
//
// The library renders the plot two ways: as CSV series for external
// plotting, and as a self-contained ASCII chart so the bench binaries can
// show the shape directly in a terminal.
#pragma once

#include <string>
#include <vector>

#include "v6class/spatial/mra.h"

namespace v6 {

/// The plotted data of one MRA plot.
struct mra_plot_data {
    std::string title;
    std::uint64_t address_count = 0;
    std::vector<double> bits;      ///< gamma^1_p, p = 0..127  (128 points)
    std::vector<double> nybbles;   ///< gamma^4_p, p = 0,4,...,124 (32 points)
    std::vector<double> segments;  ///< gamma^16_p, p = 0,16,...,112 (8 points)
};

/// Builds plot data from an MRA series.
mra_plot_data make_mra_plot(const mra_series& mra, std::string title);

/// CSV with header "p,k,ratio", one row per plotted point.
std::string to_csv(const mra_plot_data& plot);

/// ASCII rendering: x = prefix length 0..128, y = log2(ratio) rows from
/// 2^0 up to 2^16. `height` is the number of character rows (default one
/// row per power of two).
std::string render_ascii(const mra_plot_data& plot, unsigned height = 17);

}  // namespace v6
