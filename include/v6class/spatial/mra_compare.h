// mra_compare.h — comparing address populations by MRA shape.
//
// Two networks with the same addressing plan produce near-identical MRA
// ratio curves regardless of their size (the ratios are normalized by
// construction). A distance over log-ratio curves therefore groups
// networks by *practice* — the automation of the paper's visual
// methodology in Section 6.2.1, where plans were compared by eye across
// Figure 5's panels.
#pragma once

#include <cstddef>
#include <vector>

#include "v6class/spatial/mra.h"

namespace v6 {

/// Root-mean-square distance between two MRA series' log2 ratio curves
/// at resolution k (k must divide 128). 0 = identical aggregation
/// structure; curves are compared pointwise across prefix lengths.
double mra_distance(const mra_series& a, const mra_series& b, unsigned k = 4);

/// Simple agglomerative clustering of populations by MRA distance:
/// single-linkage, merging until no pair of clusters is closer than
/// `threshold`. Returns cluster ids, one per input (ids are dense,
/// starting at 0).
std::vector<std::size_t> cluster_by_mra(const std::vector<mra_series>& series,
                                        double threshold, unsigned k = 4);

}  // namespace v6
