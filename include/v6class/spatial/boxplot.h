// boxplot.h — distribution summaries for Figure 5b: per-BGP-prefix
// aggregation-ratio distributions summarized as the paper's box plots
// (median, middle 50%, middle 90%, and whiskers to the absolute extremes).
#pragma once

#include <cstdint>
#include <vector>

namespace v6 {

/// The five-plus-two-number summary the paper's Figure 5b boxes show.
struct boxplot_summary {
    double min = 0, p5 = 0, p25 = 0, median = 0, p75 = 0, p95 = 0, max = 0;
    std::size_t samples = 0;
};

/// Empirical percentile by linear interpolation between order statistics
/// (the common "type 7" estimator). q in [0,1]; samples need not be sorted.
double percentile(std::vector<double> samples, double q);

/// Builds the full summary from a sample (copied and sorted internally).
boxplot_summary summarize(std::vector<double> samples);

}  // namespace v6
