// daily_series.h — a time-indexed collection of daily active-address sets,
// the substrate for temporal (stability) classification.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "v6class/ip/address.h"

namespace v6 {

/// Day index within a study: an integer count of days from an arbitrary
/// study epoch (day 0). The paper's "log processed date".
using day_index = int;

/// Daily sets of active addresses (or of prefixes represented by their
/// base addresses), stored sorted and deduplicated so that the stability
/// analyses can run as linear merges.
class daily_series {
public:
    /// Records the active set for `day`, replacing any previous set.
    /// The input is sorted and deduplicated; hit counts are not retained
    /// here (activity is a yes/no per day for stability purposes).
    void set_day(day_index day, std::vector<address> active);

    /// Merges `active` into the existing set for `day`.
    void merge_day(day_index day, const std::vector<address>& active);

    /// The active set for `day` (empty if never recorded), sorted unique.
    const std::vector<address>& day(day_index d) const noexcept;

    /// True when `a` was active on `d`.
    bool active_on(day_index d, const address& a) const noexcept;

    /// Number of distinct addresses active on `d`.
    std::uint64_t count(day_index d) const noexcept { return day(d).size(); }

    /// Distinct addresses active on at least one day in [from, to].
    std::vector<address> union_over(day_index from, day_index to) const;

    /// All days with a recorded (possibly empty) set, ascending.
    std::vector<day_index> days() const;

    /// Projects every day's set to /len prefixes (masked base addresses,
    /// deduplicated). project(64) turns an address series into the /64
    /// series the paper analyzes in parallel.
    daily_series project(unsigned len) const;

private:
    std::map<day_index, std::vector<address>> days_;
    static const std::vector<address> empty_;
};

/// Sorted-unique intersection of two sorted-unique address vectors — the
/// primitive behind epoch stability ("active in March 2015 and also
/// March 2014").
std::vector<address> intersect_sorted(const std::vector<address>& a,
                                      const std::vector<address>& b);

/// Sorted-unique union of two sorted-unique address vectors.
std::vector<address> union_sorted(const std::vector<address>& a,
                                  const std::vector<address>& b);

}  // namespace v6
