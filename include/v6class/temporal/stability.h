// stability.h — temporal classification of addresses and prefixes
// (Section 5.1 of the paper).
//
// Definitions reproduced here:
//
//   "nd-stable" — an address for which there exist observations of
//   activity on two different days with an intervening period of at
//   least n-1 days (equivalently, day indices d1 < d2 with d2-d1 >= n).
//   nd-stable implies (n-1)d-stable; the classes are not mutually
//   exclusive.
//
//   Daily analysis uses a sliding 15-day window centered on the day of
//   observation: "3d-stable (-7d,+7d)". An address active on the
//   reference day is classified from its activity days within the window.
//
//   Epoch stability ("6m-stable (-6m)", "1y-stable (-1y)") intersects
//   the active sets of two observation periods months apart.
//
// Everything applies unchanged to prefixes of any length via
// daily_series::project().
#pragma once

#include <cstdint>
#include <vector>

#include "v6class/temporal/daily_series.h"

namespace v6 {

/// Window and slew parameters for daily stability analysis.
struct stability_options {
    int window_back = 7;  ///< days before the reference day considered
    int window_fwd = 7;   ///< days after the reference day considered
    /// Extra gap (days) demanded beyond n, compensating for the paper's
    /// log-processing timestamp slew of up to one day: with slew s, the
    /// observed gap must be >= n + s. 0 trusts the timestamps.
    int slew_tolerance = 0;
};

/// Result of classifying one reference day.
struct stability_split {
    std::vector<address> stable;      ///< active on ref day and nd-stable
    std::vector<address> not_stable;  ///< active on ref day, not shown stable
};

/// Stability analyzer over a daily series. Non-owning: the series must
/// outlive the analyzer.
class stability_analyzer {
public:
    explicit stability_analyzer(const daily_series& series,
                                stability_options options = {}) noexcept
        : series_(&series), opt_(options) {}

    /// Splits the addresses active on `ref_day` into nd-stable and not,
    /// using the sliding window around the reference day. An address is
    /// nd-stable when its earliest and latest active days within the
    /// window are at least n (+ slew tolerance) apart.
    stability_split classify_day(day_index ref_day, unsigned n) const;

    /// Count-only variant of classify_day.
    std::uint64_t count_stable(day_index ref_day, unsigned n) const;

    /// Weekly roll-up (the paper's Tables 2c/2d): for each reference day
    /// in [first_day, first_day+6], classify; report the distinct union
    /// of the per-day stable sets, and likewise of the not-stable sets.
    /// (An address can appear in both unions, as in the paper.)
    stability_split classify_week(day_index first_day, unsigned n) const;

    /// Overlap series for Figure 4: for each day d in [from, to], the
    /// number of addresses active on both d and `ref_day`.
    std::vector<std::uint64_t> overlap_series(day_index ref_day, day_index from,
                                              day_index to) const;

private:
    const daily_series* series_;
    stability_options opt_;
};

/// Epoch stability: the members of `current` also present in `past`
/// (both sorted unique). With `current` = active March 2015 and `past` =
/// active September 2014, the result is the "6m-stable (-6m)" class.
inline std::vector<address> epoch_stable(const std::vector<address>& current,
                                         const std::vector<address>& past) {
    return intersect_sorted(current, past);
}

}  // namespace v6
