// observation_store.h — per-address day bitmaps for streaming temporal
// analysis.
//
// daily_series + stability_analyzer answer windowed queries by merging
// sorted day sets; that is ideal when the question is "classify this
// reference day". An ongoing census (Section 5.1 "we wish to perform
// stability analysis on an ongoing basis") instead wants per-address
// lifetime state that is cheap to update as each day's log arrives. This
// store keeps, per distinct address, a bitmap of its active days — the
// design DESIGN.md's ablation #3 compares against merge-based analysis —
// and derives lifetime spectra, return gaps, and stability classes from
// it.
//
// Storage is flat: keys live in two SoA u64 lane arrays (matching the
// v6::simd block layout), records in a parallel vector, and membership is
// an open-addressed power-of-two index of u32 slots.  Compared to the
// former unordered_map<address, record> this removes the per-node heap
// allocation and pointer chase that made ingest degrade superlinearly
// once the distinct population outgrew the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/simd/address_block.h"

namespace v6 {

class observation_store {
public:
    /// When projecting (e.g. /64 analysis) pass the prefix length; every
    /// recorded address is masked to it first. 128 records full
    /// addresses.
    explicit observation_store(unsigned prefix_length = 128) noexcept
        : prefix_length_(prefix_length) {}

    /// Records one day's active set. Days may arrive in any order;
    /// re-recording the same (day, address) is idempotent.
    void record_day(int day, const std::vector<address>& active);

    /// Block-path overload: same semantics, no address materialisation.
    void record_day(int day, const simd::address_block& active);

    /// Number of distinct addresses (or prefixes) ever seen.
    std::size_t distinct_count() const noexcept { return recs_.size(); }

    /// Days on which `a` was active (0 when never seen).
    unsigned days_seen(const address& a) const noexcept;

    /// First and last active day of `a`, if ever seen.
    std::optional<std::pair<int, int>> first_last(const address& a) const noexcept;

    /// True when `a` is nd-stable over the whole record: its activity
    /// span (last - first) is at least n.
    bool is_stable(const address& a, unsigned n) const noexcept;

    /// All addresses whose span is at least n, sorted.
    std::vector<address> stable_addresses(unsigned n) const;

    /// The lifetime spectrum: spectrum[n] = number of addresses whose
    /// activity span is >= n, for n in 0..max_n. spectrum[0] is the
    /// distinct count; the curve is non-increasing, and the paper's
    /// "nd-stable implies (n-1)d-stable" is its monotonicity.
    std::vector<std::uint64_t> stability_spectrum(unsigned max_n) const;

    /// Histogram of return gaps: for every pair of *consecutive* active
    /// days of every address, the gap in days (1 = consecutive days).
    /// Gaps above max_gap accumulate in the last bucket. Reveals return
    /// frequency — the paper notes some long-lived EUI-64 clients return
    /// only infrequently.
    std::vector<std::uint64_t> gap_histogram(unsigned max_gap) const;

private:
    struct record {
        int first_day = 0;
        int last_day = 0;
        // Bitmap of active days relative to first_day; bit 0 is
        // first_day itself. Spans beyond 64 days spill into `overflow`
        // (indexed from bit 64 onward). Re-basing when an *earlier* day
        // arrives is handled by shifting.
        std::uint64_t inline_bits = 0;
        std::unique_ptr<std::vector<std::uint64_t>> overflow;

        void set_bit(unsigned offset);
        bool get_bit(unsigned offset) const noexcept;
        void shift_right(unsigned by);  // make room for an earlier first day
        unsigned popcount() const noexcept;
    };

    static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

    void record_one(int day, std::uint64_t hi, std::uint64_t lo);
    std::uint32_t lookup(std::uint64_t hi, std::uint64_t lo) const noexcept;
    /// Batch-reserve: guarantees room for `additional` new records
    /// without further rehashing (one rehash at most, up front).
    void reserve_for(std::size_t additional);

    unsigned prefix_length_;
    std::vector<std::uint64_t> key_hi_;
    std::vector<std::uint64_t> key_lo_;
    std::vector<record> recs_;
    std::vector<std::uint32_t> index_;  // open-addressed, power-of-two
};

}  // namespace v6
