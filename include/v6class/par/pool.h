// pool.h — a small work pool for the batch drivers: fan an indexed task
// set out across threads, keep the results deterministic.
//
// The model is deliberately minimal, borrowing the sharding idiom from
// v6::stream: the caller names n independent tasks [0, n); workers (plus
// the calling thread) claim indices from a shared atomic cursor; each
// task writes its result into a caller-owned slot keyed by its index.
// Because slot i is written by exactly one task regardless of how the
// indices were interleaved, merging the slots in index order yields
// byte-identical output at any thread count — the determinism guarantee
// the figure/table programs rely on (see DESIGN.md).
//
// Nesting: a task that itself calls run_indexed executes the nested set
// inline on its own thread (workers never block on other workers, so a
// parallel driver may freely call internally-parallel library code).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace v6::par {

/// The thread count run_indexed uses when the caller passes 0: initially
/// std::thread::hardware_concurrency(), overridable process-wide (the
/// bench drivers' --threads flag). Always returns >= 1.
unsigned default_threads() noexcept;

/// Sets the default thread count; 0 restores hardware concurrency.
void set_default_threads(unsigned n) noexcept;

/// Runs fn(i) for every i in [0, n) across up to `threads` threads
/// (0 = default_threads()), the calling thread included. Blocks until
/// every task finished. Tasks must be independent; any order and
/// interleaving may occur. If any task throws, the first exception is
/// rethrown here after all tasks finish or are drained. Each executed
/// task increments the v6_par_tasks_total counter.
void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads = 0);

/// A point-in-time view of the pool for introspection gauges: how many
/// persistent workers exist, how many seats are currently executing
/// tasks (caller threads included), and the cumulative wall time spent
/// inside task execution. Utilization over an interval is
/// delta(busy_ns) / (delta(wall_ns) * seats) — the stream engine
/// surfaces this per day seal.
struct pool_stats {
    unsigned workers = 0;
    unsigned active = 0;
    std::uint64_t busy_ns = 0;
};

pool_stats stats() noexcept;

/// run_indexed producing a vector: out[i] = fn(i). T must be default-
/// constructible and movable; determinism follows from index-keyed slots.
template <typename T, typename Fn>
std::vector<T> map_indexed(std::size_t n, Fn&& fn, unsigned threads = 0) {
    std::vector<T> out(n);
    run_indexed(
        n, [&](std::size_t i) { out[i] = fn(i); }, threads);
    return out;
}

}  // namespace v6::par
