// radix_tree.h — binary Patricia (path-compressed radix) trie over IPv6
// prefixes, with the aggregation operations of Cho et al.'s aguri and the
// paper's "densify" operation (Section 5.2.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/ip/prefix.h"

namespace v6 {

/// One dense prefix reported by a densify query: the prefix plus the
/// number of observed addresses it covers.
struct dense_prefix {
    prefix pfx;
    std::uint64_t observed = 0;

    friend bool operator==(const dense_prefix&, const dense_prefix&) = default;
};

/// A binary Patricia trie whose nodes are IPv6 prefixes carrying counts.
///
/// Counts accumulate at the exact prefix a caller adds (a full address is
/// the /128 prefix); internal branch nodes created by path compression
/// carry a zero own-count until aggregation moves descendants' counts up
/// into them. Subtree sums are therefore invariant under the aggregation
/// operations.
class radix_tree {
public:
    radix_tree() = default;
    radix_tree(radix_tree&&) noexcept = default;
    radix_tree& operator=(radix_tree&&) noexcept = default;

    /// Adds `count` observations of address `a` (at /128).
    void add(const address& a, std::uint64_t count = 1) { add(prefix{a, 128}, count); }

    /// Adds `count` observations attributed to prefix `p` exactly.
    void add(const prefix& p, std::uint64_t count = 1);

    /// Sum of all counts in the tree.
    std::uint64_t total() const noexcept { return total_; }

    /// Number of trie nodes currently allocated (branch + counted).
    std::size_t node_count() const noexcept { return node_count_; }

    /// True when nothing has been added.
    bool empty() const noexcept { return root_ == nullptr; }

    /// Removes everything.
    void clear() noexcept;

    /// Count attributed exactly to `p` (not including descendants).
    std::uint64_t count_at(const prefix& p) const noexcept;

    /// Sum of counts of `p` and all more-specific prefixes beneath it.
    std::uint64_t subtree_count(const prefix& p) const noexcept;

    /// The longest prefix in the tree that covers `a` and carries a
    /// non-zero own count; nullopt when none does.
    std::optional<prefix> longest_match(const address& a) const noexcept;

    /// Visits every node that carries a non-zero own count, in address
    /// order (pre-order), as (prefix, own count).
    void visit(const std::function<void(const prefix&, std::uint64_t)>& fn) const;

    /// Visits the length of every node at which the tree splits (both
    /// children present), in no particular order. For a tree of /128
    /// leaves, the aggregate count n_p equals 1 + the number of split
    /// lengths < p — the basis of the trie-backed MRA computation.
    void visit_splits(const std::function<void(unsigned)>& fn) const;

    /// aguri aggregation (Cho et al.): every node whose *subtree* share of
    /// the total is below `min_share` is folded into its nearest ancestor,
    /// post-order, so the remaining counted nodes each hold at least
    /// `min_share` of the total (the root absorbs any remainder).
    void aggregate_by_share(double min_share);

    /// Densify at one exact prefix length (the paper's `n@/p-dense`
    /// class, used for Table 3): returns every /p prefix covering at
    /// least `min_count` of the tree's counted observations, in address
    /// order. Precondition: p <= 128.
    std::vector<dense_prefix> dense_prefixes_at(std::uint64_t min_count, unsigned p) const;

    /// General densify (Section 5.2.3): returns the least-specific,
    /// non-overlapping prefixes of length <= 127 whose observation count
    /// meets the density n/2^(128-p), i.e. a /q prefix qualifies when it
    /// covers at least n * 2^(p-q) observations. Results are in address
    /// order; every reported prefix covers >= `n` observations.
    std::vector<dense_prefix> densify(std::uint64_t n, unsigned p) const;

private:
    struct node {
        prefix pfx;            // the prefix this node stands for
        std::uint64_t count = 0;  // observations attributed exactly here
        std::unique_ptr<node> child[2];
    };

    void add_recursive(std::unique_ptr<node>& slot, const prefix& p, std::uint64_t count);
    const node* find_node(const prefix& p) const noexcept;
    static std::uint64_t subtree_sum(const node& n) noexcept;

    std::unique_ptr<node> root_;
    std::uint64_t total_ = 0;
    std::size_t node_count_ = 0;
};

/// Reference implementation of the exact-length dense query by the
/// paper's footnote-3 recipe — print addresses as fixed-width hex, cut to
/// p/4 characters, sort, uniq -c — for cross-checking the trie. The
/// address list is copied and sorted internally; duplicates count once
/// per occurrence, matching radix_tree::add of each element.
std::vector<dense_prefix> dense_prefixes_by_sort(std::vector<address> addrs,
                                                 std::uint64_t min_count, unsigned p);

}  // namespace v6
