// radix_tree.h — binary Patricia (path-compressed radix) trie over IPv6
// prefixes, with the aggregation operations of Cho et al.'s aguri and the
// paper's "densify" operation (Section 5.2.3).
//
// Storage is a contiguous arena: nodes live in one std::vector and refer
// to each other by 32-bit indices (sentinel `nil`), so building a tree is
// bump allocation into one growing block rather than one heap allocation
// per node, walks chase indices within a contiguous region, and clear()
// keeps the arena's capacity for reuse. Nodes removed by aggregation go
// onto an intrusive free list threaded through child[0].
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "v6class/ip/address.h"
#include "v6class/ip/prefix.h"

namespace v6 {

/// One dense prefix reported by a densify query: the prefix plus the
/// number of observed addresses it covers.
struct dense_prefix {
    prefix pfx;
    std::uint64_t observed = 0;

    friend bool operator==(const dense_prefix&, const dense_prefix&) = default;
};

/// A binary Patricia trie whose nodes are IPv6 prefixes carrying counts.
///
/// Counts accumulate at the exact prefix a caller adds (a full address is
/// the /128 prefix); internal branch nodes created by path compression
/// carry a zero own-count until aggregation moves descendants' counts up
/// into them. Subtree sums are therefore invariant under the aggregation
/// operations.
///
/// Thread safety: const queries are pure reads of the arena, so any
/// number of threads may query one tree concurrently (the parallel
/// density-table and MRA paths rely on this); mutation requires
/// exclusive access.
class radix_tree {
public:
    radix_tree() = default;
    radix_tree(radix_tree&&) noexcept = default;
    radix_tree& operator=(radix_tree&&) noexcept = default;

    /// Adds `count` observations of address `a` (at /128).
    void add(const address& a, std::uint64_t count = 1) { add(prefix{a, 128}, count); }

    /// Adds `count` observations attributed to prefix `p` exactly.
    void add(const prefix& p, std::uint64_t count = 1);

    /// Pre-sizes the arena for `nodes` trie nodes (a set of n distinct
    /// addresses needs at most 2n-1).
    void reserve(std::size_t nodes) { nodes_.reserve(nodes); }

    /// Bottom-up bulk construction from addresses sorted ascending
    /// (duplicates allowed; each occurrence adds `count_each`): the trie
    /// over a sorted set is determined by the common-prefix lengths of
    /// adjacent elements — the same fact compute_mra_sorted exploits —
    /// so the whole structure is built leaf-by-leaf against a rightmost
    /// spine with no per-insert descent. Produces a tree identical to
    /// add()-ing every element in any order. Precondition: the tree is
    /// empty (a non-empty tree falls back to incremental add) and the
    /// input is sorted.
    void bulk_build(const std::vector<address>& sorted,
                    std::uint64_t count_each = 1);

    /// Sum of all counts in the tree.
    std::uint64_t total() const noexcept { return total_; }

    /// Number of trie nodes currently live (branch + counted).
    std::size_t node_count() const noexcept { return node_count_; }

    /// Arena occupancy for introspection gauges: how many node slots
    /// the arena holds (`size`), how many are live, how long the
    /// intrusive free list is, and the vector capacity (allocated but
    /// possibly unconstructed slots).
    struct arena_stats {
        std::size_t capacity = 0;   ///< nodes_.capacity()
        std::size_t size = 0;       ///< constructed slots (live + free)
        std::size_t live = 0;       ///< node_count()
        std::size_t free_list = 0;  ///< slots parked for reuse
    };
    arena_stats arena() const noexcept {
        return {nodes_.capacity(), nodes_.size(), node_count_,
                nodes_.size() - node_count_};
    }

    /// True when nothing has been added.
    bool empty() const noexcept { return root_ == nil; }

    /// Removes everything. Keeps the arena's capacity.
    void clear() noexcept;

    /// Count attributed exactly to `p` (not including descendants).
    std::uint64_t count_at(const prefix& p) const noexcept;

    /// Sum of counts of `p` and all more-specific prefixes beneath it.
    std::uint64_t subtree_count(const prefix& p) const noexcept;

    /// The longest prefix in the tree that covers `a` and carries a
    /// non-zero own count; nullopt when none does.
    std::optional<prefix> longest_match(const address& a) const noexcept;

    /// Visits every node that carries a non-zero own count, in address
    /// order (pre-order), as (prefix, own count).
    void visit(const std::function<void(const prefix&, std::uint64_t)>& fn) const;

    /// Visits the length of every node at which the tree splits (both
    /// children present), in no particular order. For a tree of /128
    /// leaves, the aggregate count n_p equals 1 + the number of split
    /// lengths < p — the basis of the trie-backed MRA computation.
    void visit_splits(const std::function<void(unsigned)>& fn) const;

    /// aguri aggregation (Cho et al.): every node whose *subtree* share of
    /// the total is below `min_share` is folded into its nearest ancestor,
    /// post-order, so the remaining counted nodes each hold at least
    /// `min_share` of the total (the root absorbs any remainder). Freed
    /// nodes return to the arena's free list.
    void aggregate_by_share(double min_share);

    /// Densify at one exact prefix length (the paper's `n@/p-dense`
    /// class, used for Table 3): returns every /p prefix covering at
    /// least `min_count` of the tree's counted observations, in address
    /// order. Precondition: p <= 128.
    std::vector<dense_prefix> dense_prefixes_at(std::uint64_t min_count, unsigned p) const;

    /// General densify (Section 5.2.3): returns the least-specific,
    /// non-overlapping prefixes of length <= 127 whose observation count
    /// meets the density n/2^(128-p), i.e. a /q prefix qualifies when it
    /// covers at least n * 2^(p-q) observations. Results are in address
    /// order; every reported prefix covers >= `n` observations.
    std::vector<dense_prefix> densify(std::uint64_t n, unsigned p) const;

private:
    static constexpr std::uint32_t nil = 0xffffffffu;

    struct node {
        prefix pfx;               // the prefix this node stands for
        std::uint64_t count = 0;  // observations attributed exactly here
        std::uint32_t child[2] = {nil, nil};
    };

    std::uint32_t alloc_node(const prefix& pfx, std::uint64_t count);
    void free_node(std::uint32_t idx) noexcept;
    void set_slot(std::uint32_t parent, unsigned side, std::uint32_t v) noexcept {
        if (parent == nil)
            root_ = v;
        else
            nodes_[parent].child[side] = v;
    }
    std::uint32_t find_index(const prefix& p) const noexcept;
    std::uint64_t subtree_sum(std::uint32_t idx) const;
    /// Arena-indexed subtree sums (reverse pre-order pass); slots of free
    /// nodes are left zero.
    std::vector<std::uint64_t> subtree_sums() const;

    std::vector<node> nodes_;      // the arena
    std::uint32_t root_ = nil;
    std::uint32_t free_head_ = nil;  // intrusive free list via child[0]
    std::uint64_t total_ = 0;
    std::size_t node_count_ = 0;
};

/// Reference implementation of the exact-length dense query by the
/// paper's footnote-3 recipe — print addresses as fixed-width hex, cut to
/// p/4 characters, sort, uniq -c — for cross-checking the trie. The
/// address list is copied and sorted internally; duplicates count once
/// per occurrence, matching radix_tree::add of each element.
std::vector<dense_prefix> dense_prefixes_by_sort(const std::vector<address>& addrs,
                                                 std::uint64_t min_count, unsigned p);

}  // namespace v6
