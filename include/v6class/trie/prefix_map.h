// prefix_map.h — a longest-prefix-match map from IPv6 prefixes to
// arbitrary values, on the same Patricia structure as radix_tree.
//
// This is the routing-table abstraction the measurement pipeline leans
// on: BGP origin lookup, policy tagging, per-prefix aggregation keys.
// Unlike radix_tree (which accumulates counts), prefix_map stores one
// value per inserted prefix and answers exact and longest-match queries.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "v6class/ip/prefix.h"

namespace v6 {

template <typename Value>
class prefix_map {
public:
    prefix_map() = default;
    prefix_map(prefix_map&&) noexcept = default;
    prefix_map& operator=(prefix_map&&) noexcept = default;

    /// Inserts or replaces the value at `p`. Returns true when a new
    /// entry was created (false when an existing one was overwritten).
    bool insert(const prefix& p, Value value) {
        return insert_recursive(root_, p, std::move(value));
    }

    /// The value stored exactly at `p`, if any.
    const Value* find(const prefix& p) const noexcept {
        const node* n = root_.get();
        while (n) {
            const unsigned meet = meet_length(n->pfx, p);
            if (meet < n->pfx.length()) return nullptr;
            if (n->pfx.length() == p.length())
                return n->has_value ? &n->value : nullptr;
            n = n->child[p.base().bit(n->pfx.length())].get();
        }
        return nullptr;
    }

    /// The (prefix, value) of the most specific entry covering `a`.
    std::optional<std::pair<prefix, std::reference_wrapper<const Value>>>
    longest_match(const address& a) const noexcept {
        const node* best = nullptr;
        const node* n = root_.get();
        while (n) {
            if (!n->pfx.contains(a)) break;
            if (n->has_value) best = n;
            if (n->pfx.length() == 128) break;
            n = n->child[a.bit(n->pfx.length())].get();
        }
        if (!best) return std::nullopt;
        return std::make_pair(best->pfx, std::cref(best->value));
    }

    /// Visits every entry in address order.
    void visit(const std::function<void(const prefix&, const Value&)>& fn) const {
        visit_recursive(root_.get(), fn);
    }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    void clear() noexcept {
        root_.reset();
        size_ = 0;
    }

private:
    struct node {
        prefix pfx;
        bool has_value = false;
        Value value{};
        std::unique_ptr<node> child[2];
    };

    static unsigned meet_length(const prefix& a, const prefix& b) noexcept {
        const unsigned common = a.base().common_prefix_length(b.base());
        return common < a.length() ? (common < b.length() ? common : b.length())
               : a.length() < b.length() ? a.length()
                                         : b.length();
    }

    bool insert_recursive(std::unique_ptr<node>& slot, const prefix& p, Value value) {
        if (!slot) {
            slot = std::make_unique<node>();
            slot->pfx = p;
            slot->has_value = true;
            slot->value = std::move(value);
            ++size_;
            return true;
        }
        node& n = *slot;
        const unsigned meet = meet_length(n.pfx, p);
        if (meet == n.pfx.length() && meet == p.length()) {
            const bool fresh = !n.has_value;
            n.has_value = true;
            n.value = std::move(value);
            if (fresh) ++size_;
            return fresh;
        }
        if (meet == n.pfx.length()) {
            const unsigned bit = p.base().bit(n.pfx.length());
            return insert_recursive(n.child[bit], p, std::move(value));
        }
        if (meet == p.length()) {
            auto covering = std::make_unique<node>();
            covering->pfx = p;
            covering->has_value = true;
            covering->value = std::move(value);
            const unsigned bit = n.pfx.base().bit(p.length());
            covering->child[bit] = std::move(slot);
            slot = std::move(covering);
            ++size_;
            return true;
        }
        auto branch = std::make_unique<node>();
        branch->pfx = prefix{p.base(), meet};
        auto leaf = std::make_unique<node>();
        leaf->pfx = p;
        leaf->has_value = true;
        leaf->value = std::move(value);
        const unsigned existing_bit = n.pfx.base().bit(meet);
        branch->child[existing_bit] = std::move(slot);
        branch->child[1 - existing_bit] = std::move(leaf);
        slot = std::move(branch);
        ++size_;
        return true;
    }

    static void visit_recursive(
        const node* n, const std::function<void(const prefix&, const Value&)>& fn) {
        if (!n) return;
        if (n->has_value) fn(n->pfx, n->value);
        visit_recursive(n->child[0].get(), fn);
        visit_recursive(n->child[1].get(), fn);
    }

    std::unique_ptr<node> root_;
    std::size_t size_ = 0;
};

}  // namespace v6
