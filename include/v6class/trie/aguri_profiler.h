// aguri_profiler.h — memory-bounded online address profiler in the style
// of Cho et al.'s aguri (QofIS 2001), which the paper adapts for
// structure discovery under resource constraints (Section 2, Section 5.2).
#pragma once

#include <cstddef>
#include <vector>

#include "v6class/trie/radix_tree.h"

namespace v6 {

/// One line of an aguri-style profile: an aggregate, the count it
/// accumulated, and its share of the total.
struct profile_entry {
    prefix pfx;
    std::uint64_t count = 0;
    double share = 0.0;
};

/// Streams addresses into a radix tree while keeping the tree within a
/// node budget: whenever the tree grows past `node_budget`, sub-threshold
/// aggregates are folded into their parents (aguri's periodic reclaim).
///
/// The final profile lists every aggregate holding at least `min_share`
/// of the observations, least-specific first, with any residue that could
/// not meet the share accumulated at ::/0.
class aguri_profiler {
public:
    /// `node_budget` bounds trie memory; `min_share` is the aggregation
    /// threshold (default 1%, aguri's customary resolution).
    explicit aguri_profiler(std::size_t node_budget = 4096, double min_share = 0.01);

    void observe(const address& a, std::uint64_t count = 1);

    std::uint64_t total() const noexcept { return tree_.total(); }
    std::size_t node_count() const noexcept { return tree_.node_count(); }

    /// Aggregates to the final threshold and returns the profile in
    /// address order.
    std::vector<profile_entry> profile();

private:
    radix_tree tree_;
    std::size_t node_budget_;
    double min_share_;
};

}  // namespace v6
