// exp_ptr_scan — the Section 6.2.3 experiment: ip6.arpa PTR queries for
// every possible address of the 3@/120-dense router prefixes harvest
// substantially more names than querying only active WWW client
// addresses (the paper reports +47K names).
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/dnssim/reverse_zone.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Section 6.2.3: PTR harvest from dense-prefix scanning", opt);
    const world w(world_cfg(opt));
    const router_topology topo(w);
    const reverse_zone zone = build_world_zone(w, &topo);
    std::printf("reverse zone holds %s PTR records\n\n",
                format_count(static_cast<double>(zone.size())).c_str());

    radix_tree routers;
    for (const address& a : topo.interfaces()) routers.add(a);

    // Strategy A: query only the addresses seen as active WWW clients.
    const auto active = w.active_addresses(kMar2015);
    const auto active_scan = zone.scan(active);
    std::printf("A. query active WWW clients:        %8s queries -> %s names\n",
                format_count(static_cast<double>(active_scan.queries)).c_str(),
                format_count(static_cast<double>(active_scan.names_found)).c_str());

    // Strategy B: expand the 3@/120-dense router prefixes (the bolded
    // Table 3 row) into all their possible addresses and query those.
    const auto dense = routers.dense_prefixes_at(3, 120);
    const auto targets = expand_scan_targets(dense, 5'000'000);
    const auto dense_scan = zone.scan(targets);
    std::printf("B. scan 3@/120-dense possibilities: %8s queries -> %s names\n",
                format_count(static_cast<double>(dense_scan.queries)).c_str(),
                format_count(static_cast<double>(dense_scan.names_found)).c_str());

    // How many names did B add beyond A?
    reverse_zone::scan_result combined = active_scan;
    std::vector<address> both = active;
    both.insert(both.end(), targets.begin(), targets.end());
    combined = zone.scan(std::move(both));
    const std::uint64_t extra = combined.names_found - active_scan.names_found;
    std::printf("\nadditional names unlocked by dense scanning: %s "
                "(paper: +47K over active-only)\n",
                format_count(static_cast<double>(extra)).c_str());

    std::puts(
        "\npaper shape check: provisioning-range PTRs (routers, static CPE,\n"
        "DHCPv6 pools) are invisible to active-address queries but fall\n"
        "inside dense prefixes, so the dense scan harvests strictly more.");
    return 0;
}
