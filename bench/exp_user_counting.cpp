// exp_user_counting — the Section 7.1 experiment the paper could only
// argue qualitatively: "the number of active /64s observed in a week's
// time can miscount IPv6 WWW client devices by a factor of 100 in either
// direction... estimating IPv6 user counts should be informed by
// addressing practice on a per-network basis."
//
// The simulator holds the ground truth (how many subscribers really were
// active), so both estimators can be scored exactly: the naive
// window-/64 count versus the practice-aware estimate from the inferred
// network profile.
#include <cmath>
#include <map>

#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/network_profile.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Section 7.1: counting IPv6 subscribers", opt);
    const world w(world_cfg(opt));

    const int ref = kMar2015;
    daily_series raw = w.series(ref - 7, ref + 7);
    daily_series native;
    for (const int d : raw.days())
        native.set_day(d, cull_transition(raw.day(d)).other);
    const auto profiles = profile_networks(w.registry(), native, ref);

    std::map<std::uint32_t, std::uint64_t> truth;
    for (const auto& model : w.models())
        truth[model->asn()] += model->expected_active_subscribers(ref);

    std::printf("%-9s %10s %12s %12s %9s %9s  %s\n", "ASN", "truth", "naive-64",
                "practice", "err(naive)", "err(prac)", "inferred practice");
    double naive_log_err = 0, practice_log_err = 0, worst_naive = 1;
    std::uint64_t scored = 0;
    for (const network_profile& p : profiles) {
        const auto it = truth.find(p.asn);
        if (it == truth.end() || it->second == 0 ||
            p.guess == practice_guess::unknown)
            continue;
        const double t = static_cast<double>(it->second);
        const double naive_factor = p.naive_64_estimate / t;
        const double practice_factor = p.subscriber_estimate / t;
        naive_log_err += std::fabs(std::log10(naive_factor));
        practice_log_err += std::fabs(std::log10(practice_factor));
        worst_naive = std::max(
            worst_naive, std::max(naive_factor, 1.0 / naive_factor));
        ++scored;
        if (t > 50)  // keep the table readable: the bigger networks
            std::printf("%-9s %10s %12s %12s %8.2fx %8.2fx  %s\n",
                        ("AS" + std::to_string(p.asn)).c_str(),
                        format_count(t).c_str(),
                        format_count(p.naive_64_estimate).c_str(),
                        format_count(p.subscriber_estimate).c_str(), naive_factor,
                        practice_factor,
                        std::string(to_string(p.guess)).c_str());
    }
    std::printf(
        "\nacross %llu networks: geometric-mean error factor %0.2fx naive vs "
        "%0.2fx practice-aware;\nworst naive miscount %.0fx (paper: 'up to "
        "100x in either direction').\n",
        static_cast<unsigned long long>(scored),
        std::pow(10.0, naive_log_err / static_cast<double>(scored)),
        std::pow(10.0, practice_log_err / static_cast<double>(scored)),
        worst_naive);

    std::puts(
        "\npaper shape check: naive /64 counting over- and under-shoots by\n"
        "large factors depending on practice (dense networks undercount,\n"
        "pools overcount); informing the estimate with the inferred\n"
        "practice pulls every network toward truth.");
    return 0;
}
