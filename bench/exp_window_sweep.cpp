// exp_window_sweep — ablation the paper calls for in Section 6.1.1:
// "more research is warranted ... varying the number of days or the
// sliding window size". Sweeps n and the window half-width and reports
// the stable share of addresses and /64s.
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv, 0.3);
    banner("Ablation: stability class vs n and window size", opt);
    const world w(world_cfg(opt));

    const int ref = kMar2015;
    const int max_half = 10;
    const daily_series addrs = w.series(ref - max_half, ref + max_half);
    const daily_series p64s = addrs.project(64);

    std::puts("stable share of reference-day actives:");
    std::printf("%-22s %12s %12s\n", "class", "addresses", "/64s");
    for (const int half : {3, 7, 10}) {
        for (const unsigned n : {1u, 2u, 3u, 5u, 7u}) {
            stability_options so;
            so.window_back = half;
            so.window_fwd = half;
            stability_analyzer addr_an(addrs, so);
            stability_analyzer pfx_an(p64s, so);
            const double addr_share =
                static_cast<double>(addr_an.count_stable(ref, n)) /
                static_cast<double>(addrs.count(ref));
            const double pfx_share =
                static_cast<double>(pfx_an.count_stable(ref, n)) /
                static_cast<double>(p64s.count(ref));
            std::printf("%ud-stable (-%dd,+%dd)%*s %12s %12s\n", n, half, half,
                        n >= 10 ? 0 : 1, "", format_pct(addr_share).c_str(),
                        format_pct(pfx_share).c_str());
        }
    }

    std::puts("\nslew tolerance (gap must exceed n by s days):");
    for (const int slew : {0, 1, 2}) {
        stability_options so;
        so.slew_tolerance = slew;
        stability_analyzer an(addrs, so);
        std::printf("  s=%d: 3d-stable addresses = %s\n", slew,
                    format_count(static_cast<double>(an.count_stable(ref, 3)))
                        .c_str());
    }

    std::puts(
        "\nexpected shape: stable share falls monotonically in n, grows with\n"
        "window width (more chances to observe recurrence), and shrinks as\n"
        "slew tolerance demands wider observed gaps.");
    return 0;
}
