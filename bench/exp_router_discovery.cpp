// exp_router_discovery — the Section 6.1.1 experiment: probing a random
// subset of 3d-stable addresses discovers substantially more router
// addresses than the long-standing IPv4-style strategy (recursive
// resolvers + random active WWW clients). The paper reports +129%.
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/routersim/targets.h"
#include "v6class/routersim/topology.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Section 6.1.1: router discovery by target-selection strategy", opt);
    const world w(world_cfg(opt));
    const router_topology topo(w);
    std::printf("router plant: %s interface addresses in total\n",
                format_count(static_cast<double>(topo.interfaces().size())).c_str());

    const daily_series series = w.series(kMar2015 - 7, kMar2015 + 7);
    stability_analyzer an(series);
    const stability_split split = an.classify_day(kMar2015, 3);
    std::printf("3d-stable addresses available as targets: %s\n\n",
                format_count(static_cast<double>(split.stable.size())).c_str());

    // Probes run five days after target selection; targets that vanished
    // by then never elicit their last-hop router.
    const std::vector<address>& live = series.day(kMar2015 + 5);

    for (const std::size_t budget : {1000ul, 5000ul, 20000ul}) {
        const auto baseline = ipv4_style_targets(
            topo.resolver_addresses(), series.day(kMar2015), budget, opt.seed);
        const auto informed =
            stable_informed_targets(split.stable, budget, opt.seed);
        const auto base_found = topo.probe_campaign(baseline, live);
        const auto informed_found = topo.probe_campaign(informed, live);
        const double gain =
            base_found.empty()
                ? 0.0
                : 100.0 * (static_cast<double>(informed_found.size()) /
                               static_cast<double>(base_found.size()) -
                           1.0);
        std::printf(
            "budget %6zu probes | IPv4-style: %5zu routers | 3d-stable: %5zu "
            "routers | gain %+.0f%%\n",
            budget, base_found.size(), informed_found.size(), gain);
    }

    std::puts(
        "\npaper shape check: the 3d-stable strategy discovers well over\n"
        "+100% more routers (paper: +129%, 1.8M additional). The mechanism:\n"
        "probes toward vanished ephemeral addresses stop at aggregation and\n"
        "never reveal last-hop edge routers; stable targets are still live.");
    return 0;
}
