// table3 — regenerates the paper's Table 3: dense prefixes identified at
// various density classes over the router-address dataset, plus the
// closing Section 6.2.2 figures for WWW client addresses.
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/density.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Table 3: dense prefixes at various density classes", opt);
    const world w(world_cfg(opt));
    const router_topology topo(w);

    std::printf("router dataset: %s interface addresses (paper: 3.2M)\n\n",
                format_count(static_cast<double>(topo.interfaces().size())).c_str());
    radix_tree routers;
    {
        const timed_phase build_phase("build_router_trie");
        std::vector<address> sorted = topo.interfaces();
        std::sort(sorted.begin(), sorted.end());
        routers.bulk_build(sorted);
    }

    const std::vector<std::pair<std::uint64_t, unsigned>> classes{
        {2, 124}, {3, 120}, {2, 120}, {2, 116}, {64, 112}, {32, 112},
        {16, 112}, {8, 112}, {4, 112}, {2, 112}, {2, 108}, {2, 104},
    };
    {
        const timed_phase phase("density_table");
        std::fputs(
            render_table3(compute_density_table(routers, classes), "Router")
                .c_str(),
            stdout);
    }

    // Section 6.2.2's closing experiment: the same machinery on the
    // active WWW clients of one day.
    const timed_phase phase("client_dense");
    auto clients = cull_transition(w.active_addresses(kMar2015)).other;
    std::sort(clients.begin(), clients.end());
    radix_tree client_tree;
    client_tree.bulk_build(clients);
    const auto dense = client_tree.dense_prefixes_at(2, 112);
    std::uint64_t covered = 0;
    for (const auto& d : dense) covered += d.observed;
    const long double possible =
        static_cast<long double>(dense.size()) * 65536.0L;
    std::printf(
        "\nWWW clients (Mar 17, 2015): %s 2@/112-dense prefixes, %s client\n"
        "addresses covered, %s possible scan targets (paper: 128K prefixes,\n"
        "1.38M clients, 8.39B possible).\n",
        format_count(static_cast<double>(dense.size())).c_str(),
        format_count(static_cast<double>(covered)).c_str(),
        format_count(static_cast<double>(possible)).c_str());

    std::puts(
        "\npaper shape checks: raising n (at fixed /112) shrinks the dense\n"
        "set but raises per-prefix density; widening p multiplies possible\n"
        "addresses far faster than covered ones, collapsing density.");
    return 0;
}
