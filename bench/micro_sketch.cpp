// micro_sketch — cost of the streaming sketches on the ingest hot path
// and of the sketch primitives in isolation. BM_stream_ingest_sketch/1
// runs the full engine with per-shard day HLLs and P² quantiles;
// /0 is the same pipeline with cfg.sketches=false. The sketch layer's
// budget is 3% of ingest throughput (ISSUE acceptance: compare the two
// items_per_second). The primitive benches bound the per-record cost
// directly: one HLL add is a hash finalizer + mask + clz + byte max,
// one P² observe is a five-marker scan.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "v6class/netgen/rng.h"
#include "v6class/obs/sketch.h"
#include "v6class/stream/engine.h"

namespace {

using namespace v6;

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 10);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

// Arg(0): 1 = sketches on (day HLLs + P² quantiles), 0 = off. The
// guarded budget: the /1 rate must stay within 3% of the /0 rate.
void BM_stream_ingest_sketch(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 99);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        cfg.sketches = state.range(0) != 0;
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().distinct_addresses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(state.range(0) ? "sketches" : "no-sketches");
}
BENCHMARK(BM_stream_ingest_sketch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_hll_add(benchmark::State& state) {
    obs::hyperloglog hll(static_cast<unsigned>(state.range(0)));
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (auto _ : state) {
        hll.add(h);
        h += 0x9e3779b97f4a7c15ull;
    }
    benchmark::DoNotOptimize(hll.estimate());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_hll_add)->Arg(10)->Arg(14);

void BM_hll_estimate(benchmark::State& state) {
    obs::hyperloglog hll(14);
    for (std::uint64_t i = 0; i < 100000; ++i) hll.add(i * 0x9e3779b97f4a7c15ull);
    for (auto _ : state) benchmark::DoNotOptimize(hll.estimate());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_hll_estimate);

void BM_hll_merge(benchmark::State& state) {
    obs::hyperloglog a(14), b(14);
    for (std::uint64_t i = 0; i < 100000; ++i) {
        a.add(i * 0x9e3779b97f4a7c15ull);
        b.add(i * 0xbf58476d1ce4e5b9ull);
    }
    for (auto _ : state) {
        obs::hyperloglog u = a;
        u.merge(b);
        benchmark::DoNotOptimize(u.register_count());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_hll_merge);

void BM_p2_observe(benchmark::State& state) {
    obs::p2_quantile p99(0.99);
    double v = 1.0;
    for (auto _ : state) {
        p99.observe(v);
        v = v > 1e6 ? 1.0 : v * 1.0001;
    }
    benchmark::DoNotOptimize(p99.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_p2_observe);

}  // namespace

BENCHMARK_MAIN();
