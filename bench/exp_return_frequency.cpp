// exp_return_frequency — how often do clients come back? Section 4.1
// notes that "some specific long-lived active IPv6 addresses, e.g.
// EUI-64, return as WWW clients only infrequently", which is why
// stability classification must say "not stable" rather than
// "ephemeral". This bench measures return-gap distributions per address
// kind from the day-bitmap store.
#include "bench_common.h"
#include "v6class/addrtype/classify.h"
#include "v6class/analysis/format.h"
#include "v6class/temporal/observation_store.h"

using namespace v6;
using namespace v6::bench;

namespace {

void report(const char* label, const observation_store& store) {
    const auto gaps = store.gap_histogram(14);
    std::uint64_t total = 0, weighted = 0, infrequent = 0;
    for (unsigned g = 1; g <= 14; ++g) {
        total += gaps[g];
        weighted += static_cast<std::uint64_t>(g) * gaps[g];
        if (g >= 7) infrequent += gaps[g];
    }
    const auto spectrum = store.stability_spectrum(14);
    std::printf("%-22s %9s tracked  %8s returns  mean gap %4.1fd  "
                "gaps>=7d %s\n",
                label,
                format_count(static_cast<double>(store.distinct_count())).c_str(),
                format_count(static_cast<double>(total)).c_str(),
                total ? static_cast<double>(weighted) / static_cast<double>(total)
                      : 0.0,
                format_pct(total ? static_cast<double>(infrequent) /
                                       static_cast<double>(total)
                                 : 0.0)
                    .c_str());
    std::printf("%-22s single-day share: %s\n", "",
                format_pct(1.0 - static_cast<double>(spectrum[1]) /
                                     static_cast<double>(spectrum[0]))
                    .c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Return frequency by address kind", opt);
    const world w(world_cfg(opt));

    observation_store eui_store, low_store, random_store;
    const int first = kMar2015 - 7, last = kMar2015 + 7;
    for (int d = first; d <= last; ++d) {
        std::vector<address> eui, low, random;
        for (const address& a : cull_transition(w.active_addresses(d)).other) {
            switch (classify(a).iid) {
                case iid_kind::eui64: eui.push_back(a); break;
                case iid_kind::low_value: low.push_back(a); break;
                case iid_kind::pseudorandom: random.push_back(a); break;
                default: break;
            }
        }
        eui_store.record_day(d, eui);
        low_store.record_day(d, low);
        random_store.record_day(d, random);
    }

    report("EUI-64 addresses", eui_store);
    report("low-IID addresses", low_store);
    report("pseudorandom (privacy)", random_store);

    std::puts(
        "\nexpected shape: low-IID (CPE/server) addresses return on short\n"
        "gaps; EUI-64 devices return but with a heavier tail of long gaps\n"
        "(the paper's infrequent returners); privacy addresses are\n"
        "overwhelmingly single-day — they have no 'return' to speak of\n"
        "beyond the midnight straddle.");
    return 0;
}
