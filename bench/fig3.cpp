// fig3 — regenerates the paper's Figure 3: aggregate population CCDFs
// for one week of addresses and /64s (32-, 48-, and 112-bit aggregates).
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/spatial/population.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figure 3: aggregate population distributions", opt);
    const world w(world_cfg(opt));

    std::vector<address> addrs, p64s;
    {
        const timed_phase phase("collect_week");
        addrs = week_addresses(w, kMar2015);
        p64s = to_64s(addrs);
    }
    std::printf("one week of activity: %s addresses, %s /64s\n"
                "(paper: 1.87B addrs, 358M /64s)\n\n",
                format_count(static_cast<double>(addrs.size())).c_str(),
                format_count(static_cast<double>(p64s.size())).c_str());

    struct curve {
        const char* label;
        const std::vector<address>* elements;
        unsigned agg;
    };
    const curve curves[] = {
        {"32-agg. of IPv6 addrs", &addrs, 32}, {"32-agg. of /64s", &p64s, 32},
        {"48-agg. of IPv6 addrs", &addrs, 48}, {"48-agg. of /64s", &p64s, 48},
        {"112-agg. of IPv6 addrs", &addrs, 112},
    };
    // Aggregate the five curves concurrently (slot per curve); print in
    // declaration order afterwards so stdout is thread-count invariant.
    const timed_phase phase("aggregate_ccdfs");
    using ccdf_t = decltype(ccdf_of(aggregate_populations(addrs, 32)));
    const auto ccdfs = par::map_indexed<ccdf_t>(
        std::size(curves), [&](std::size_t i) {
            return ccdf_of(
                aggregate_populations(*curves[i].elements, curves[i].agg));
        });
    for (std::size_t i = 0; i < std::size(curves); ++i) {
        const auto& ccdf = ccdfs[i];
        std::printf("--- %s (%zu aggregates) ---\n", curves[i].label, ccdf.size());
        std::fputs(render_ccdf(ccdf, 14).c_str(), stdout);
        std::printf("  P(pop >= 10) = %.6f   P(pop >= 1000) = %.6f\n\n",
                    ccdf_at(ccdf, 10), ccdf_at(ccdf, 1000));
    }

    std::puts(
        "paper shape checks: the 112-aggregate curve dies fastest (few /112s\n"
        "hold 10+ addresses); the 32/48-aggregate curves carry a long heavy\n"
        "tail — a small fraction of prefixes holds most addresses.");
    return 0;
}
