// fig2 — regenerates the paper's Figure 2: annotated MRA plots for a US
// university (privacy addressing, sparse /64s) and a JP telco
// (statically numbered, dense low blocks).
#include "bench_common.h"
#include "v6class/spatial/mra_plot.h"

using namespace v6;
using namespace v6::bench;

namespace {

std::vector<address> week_of(const network_model& m, int first_day) {
    const timed_phase sim_phase("simulate_week");
    std::vector<observation> obs;
    for (int d = first_day; d < first_day + 7; ++d) m.day_activity(d, obs);
    std::vector<address> out;
    out.reserve(obs.size());
    for (const observation& o : obs) out.push_back(o.addr);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figure 2: MRA plots for two contrasting address plans", opt);
    const world w(world_cfg(opt));

    const mra_series univ = compute_mra(week_of(w.university(), kMar2015));
    std::fputs(render_ascii(make_mra_plot(univ, "(a) US university"), 17).c_str(),
               stdout);
    std::printf(
        "\n  signature checks: single-bit ratio at p=64 %.2f (plateau ~2),\n"
        "  at p=70 %.2f (the cleared-u-bit notch), deep-IID tail %.2f (~1);\n"
        "  nybble jump at p=32: %.2f vs %.2f at p=36.\n\n",
        univ.ratio(64, 1), univ.ratio(70, 1), univ.ratio(124, 1),
        univ.ratio(32, 4), univ.ratio(36, 4));

    const mra_series telco = compute_mra(week_of(w.telco(), kMar2015));
    std::fputs(render_ascii(make_mra_plot(telco, "(b) JP telco"), 17).c_str(),
               stdout);
    std::printf(
        "\n  signature checks: 112-128 segment ratio %.1f (the prominence of\n"
        "  tightly packed CPE blocks) vs 64-80 segment %.2f; such /112s are\n"
        "  scannable 64K blocks.\n",
        telco.ratio(112, 16), telco.ratio(64, 16));

    std::puts("\nCSV series (for external plotting):");
    std::fputs(to_csv(make_mra_plot(univ, "us-university")).c_str(), stdout);
    return 0;
}
