// exp_plan_clustering — automated Figure-5 reading: cluster the world's
// networks by MRA shape and check that addressing practices group
// together (the "automatically discover operator practice" direction of
// Sections 6.2.1/7.2).
#include <map>

#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/spatial/mra_compare.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Clustering networks by MRA shape", opt);
    const world w(world_cfg(opt));

    const auto week = week_addresses(w, kMar2015);
    const auto groups = group_by_asn(w.registry(), week);

    std::vector<std::uint32_t> asns;
    std::vector<mra_series> series;
    for (const auto& [asn, addrs] : groups) {
        if (addrs.size() < 200) continue;  // tiny networks have no shape yet
        asns.push_back(asn);
        series.push_back(compute_mra(addrs));
    }
    std::printf("%zu networks with enough activity to have a shape\n\n",
                asns.size());

    const double threshold = 0.5;  // log2-ratio RMS units
    const auto ids = cluster_by_mra(series, threshold);
    std::map<std::size_t, std::vector<std::uint32_t>> clusters;
    for (std::size_t i = 0; i < ids.size(); ++i)
        clusters[ids[i]].push_back(asns[i]);

    std::printf("clusters at distance threshold %.2f:\n", threshold);
    for (const auto& [id, members] : clusters) {
        std::printf("  cluster %zu (%zu networks):", id, members.size());
        std::size_t shown = 0;
        for (const std::uint32_t asn : members) {
            if (shown++ >= 10) {
                std::printf(" ...");
                break;
            }
            std::printf(" AS%u", asn);
        }
        std::puts("");
    }

    // Ground truth check: the two mobile carriers share a cluster, and
    // neither shares one with the Japanese ISP.
    auto cluster_of = [&](std::uint32_t asn) -> std::size_t {
        for (std::size_t i = 0; i < asns.size(); ++i)
            if (asns[i] == asn) return ids[i];
        return static_cast<std::size_t>(-1);
    };
    std::printf(
        "\nground truth: mobiles together=%s, mobile vs JP separated=%s\n",
        cluster_of(20001) == cluster_of(20002) ? "yes" : "NO",
        cluster_of(20001) != cluster_of(20004) ? "yes" : "NO");
    std::puts(
        "\nexpected shape: networks sharing an addressing practice (the two\n"
        "mobile pools; the static-64 wireline ISPs) land in common clusters\n"
        "without any labels — MRA shape alone separates the plans that the\n"
        "paper distinguished by eye across Figure 5's panels.");
    return 0;
}
