// exp_spatial_classes — the MRA-based address classes (the paper's
// Section 5.2.1 future-work item, implemented in spatial_class.h)
// applied to one day of WWW clients and to the router dataset: what
// fraction of each population is scannable-dense, busy, or isolated?
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/routersim/topology.h"
#include "v6class/spatial/spatial_class.h"

using namespace v6;
using namespace v6::bench;

namespace {

void report(const char* label, const std::vector<address>& population) {
    radix_tree tree;
    for (const address& a : population) tree.add(a);
    const spatial_classifier cls(tree);
    const auto counts = cls.tally(population);
    std::printf("%s (%s addresses):\n", label,
                format_count(static_cast<double>(population.size())).c_str());
    static constexpr spatial_class classes[] = {
        spatial_class::dense_block, spatial_class::busy_subnet,
        spatial_class::lone_low, spatial_class::lone_random};
    for (const spatial_class c : classes) {
        const std::uint64_t n = counts[static_cast<std::size_t>(c)];
        std::printf("  %-12s %10s (%s)\n", std::string(to_string(c)).c_str(),
                    format_count(static_cast<double>(n)).c_str(),
                    format_pct(static_cast<double>(n) /
                               static_cast<double>(population.size()))
                        .c_str());
    }
    std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Spatial address classes (Section 5.2.1 extension)", opt);
    const world w(world_cfg(opt));

    report("WWW clients, one day",
           cull_transition(w.active_addresses(kMar2015)).other);

    const router_topology topo(w);
    report("router interfaces", topo.interfaces());

    std::puts(
        "expected shape: WWW clients are mostly isolated privacy hosts\n"
        "(lone-random) with a dense minority (the scan-target pool);\n"
        "router interfaces are overwhelmingly dense-block — the premise\n"
        "of Table 3 and of dense-prefix target selection.");
    return 0;
}
