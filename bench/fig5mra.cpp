// fig5mra — regenerates the paper's Figures 5c..5h: MRA plots for the
// whole native client population, the 6to4 clients, and four contrasting
// operator networks, with the signature metrics the paper reads off each.
#include <optional>

#include "bench_common.h"
#include "v6class/spatial/mra_plot.h"

using namespace v6;
using namespace v6::bench;

namespace {

std::vector<address> week_of(const network_model& m, int first_day) {
    std::vector<observation> obs;
    for (int d = first_day; d < first_day + 7; ++d) m.day_activity(d, obs);
    std::vector<address> out;
    out.reserve(obs.size());
    for (const observation& o : obs) out.push_back(o.addr);
    return out;
}

void show(const char* title, const mra_series& mra) {
    std::fputs(render_ascii(make_mra_plot(mra, title), 17).c_str(), stdout);
    std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figures 5c-5h: MRA plots across the active address space", opt);
    const world w(world_cfg(opt));
    const int day = kMar2015;

    std::vector<address> native, six_to_four;
    {
        const timed_phase phase("collect_addresses");
        for (int d = day; d < day + 7; ++d) {
            for (const address& a : w.active_addresses(d)) {
                if (is_6to4(a))
                    six_to_four.push_back(a);
                else if (!is_teredo(a) && !is_isatap(a))
                    native.push_back(a);
            }
        }
    }

    // Compute the six MRA series concurrently — each panel's address
    // collection and sort is independent — then render in panel order so
    // stdout is byte-identical at any thread count.
    std::vector<std::optional<mra_series>> mras(6);
    const timed_phase phase("compute_mras");
    par::run_indexed(6, [&](std::size_t i) {
        switch (i) {
            case 0: mras[0] = compute_mra(std::move(native)); break;
            case 1: mras[1] = compute_mra(std::move(six_to_four)); break;
            case 2: mras[2] = compute_mra(week_of(w.mobile1(), day)); break;
            case 3: mras[3] = compute_mra(week_of(w.europe(), day)); break;
            case 4: mras[4] = compute_mra(week_of(w.department(), day)); break;
            case 5: mras[5] = compute_mra(week_of(w.japan(), day)); break;
        }
    });

    const mra_series& all = *mras[0];
    show("(c) all native IPv6 clients", all);
    std::printf("  check: more aggregation in bits 32-64 than 0-32 "
                "(gamma16: %.1f/%.1f vs %.1f/%.1f)\n\n",
                all.ratio(32, 16), all.ratio(48, 16), all.ratio(0, 16),
                all.ratio(16, 16));

    const mra_series& s64 = *mras[1];
    show("(d) 6to4 clients", s64);
    std::printf("  check: the embedded IPv4 address dominates bits 16-48 "
                "(gamma16 at 16: %.1f, at 32: %.1f)\n\n",
                s64.ratio(16, 16), s64.ratio(32, 16));

    const mra_series& mob = *mras[2];
    show("(e) US mobile carrier", mob);
    std::printf("  check: the 44-64 pool segment near-saturated over a week "
                "(gamma16 at 48: %.0f of 65536 max)\n\n",
                mob.ratio(48, 16));

    const mra_series& eu = *mras[3];
    show("(f) European ISP prefix", eu);
    std::printf("  check: heavy use of bits 40-64 (gamma16 at 48: %.1f); "
                "pseudorandom field visible as near-2 bit ratios at 41.. "
                "(gamma1 at 44: %.2f)\n\n",
                eu.ratio(48, 16), eu.ratio(44, 1));

    const mra_series& dept = *mras[4];
    show("(g) EU university department /64", dept);
    std::printf("  check: aggregation concentrated at 72-80 and 112-128 "
                "(gamma1 at 76: %.2f; gamma16 at 112: %.1f), none in 80-112 "
                "(gamma16 at 96: %.2f)\n\n",
                dept.ratio(76, 1), dept.ratio(112, 16), dept.ratio(96, 16));

    const mra_series& jp = *mras[5];
    show("(h) Japanese ISP prefix", jp);
    std::printf("  check: flat 48-64 segment (gamma16 at 48: %.2f — 'seemingly "
                "no aggregation') with busy 24-48.\n",
                jp.ratio(48, 16));
    return 0;
}
