// micro_wire_ingest — prices the network ingest front end: v6wire
// encode, raw decode, the enrichment lookup primitive, and the full
// collector-equivalent ingest path (decode + enrich + ledger + engine)
// with and without enrichment. The tracked claim (BENCH_wire.json,
// gated by scripts/check.sh): enabling ASN/geo enrichment costs less
// than 10% of the full wire-ingest path — the LPM walk and ledger
// update are small next to the engine's sharded day accounting.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_gbench.h"
#include "v6class/net/collector.h"
#include "v6class/net/enrich.h"
#include "v6class/net/wire.h"
#include "v6class/netgen/rng.h"

namespace {

using namespace v6;

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(64);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

std::vector<std::vector<std::uint8_t>> make_datagrams(
    const std::vector<stream_record>& feed) {
    net::wire_encoder enc;
    std::vector<std::vector<std::uint8_t>> datagrams;
    enc.encode_all(feed, [&](const std::vector<std::uint8_t>& d) {
        datagrams.push_back(d);
    });
    return datagrams;
}

/// A routing table shaped like the feed: one /64 per network the pool
/// draws from, plus a covering /32 — every lookup walks to a real leaf.
const char* make_db_file() {
    static const char* path = [] {
        std::vector<net::enrich_entry> entries;
        entries.push_back({prefix::must_parse("2001:db8::/32"), {64496, {'z', 'z'}}});
        for (std::uint64_t i = 0; i < 64; ++i)
            entries.push_back(
                {prefix{address::from_pair(0x20010db800000000ull | i, 0), 64},
                 {static_cast<std::uint32_t>(64500 + i), {'d', 'e'}}});
        const char* p = "/tmp/v6class_bench_wire.db";
        if (!net::write_asn_db(p, entries)) {
            std::fprintf(stderr, "cannot write %s\n", p);
            std::abort();
        }
        return p;
    }();
    return path;
}

void BM_wire_encode(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 7);
    v6::bench::pmu_meter pmu(state, feed.size());
    for (auto _ : state) {
        net::wire_encoder enc;
        std::uint64_t bytes = 0;
        enc.encode_all(feed, [&](const std::vector<std::uint8_t>& d) {
            bytes += d.size();
        });
        benchmark::DoNotOptimize(bytes);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
}
BENCHMARK(BM_wire_encode);

void BM_wire_decode(benchmark::State& state) {
    const auto datagrams = make_datagrams(make_feed(50000, 4, 7));
    std::size_t total = 0;
    v6::bench::pmu_meter pmu(state, 50000 * 4);
    for (auto _ : state) {
        net::wire_decoder dec;
        std::vector<stream_record> records;
        for (const auto& d : datagrams) {
            records.clear();
            dec.decode(d.data(), d.size(), records);
            benchmark::DoNotOptimize(records.data());
        }
        total = dec.stats().records;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                            state.iterations());
}
BENCHMARK(BM_wire_decode);

void BM_enrich_lookup(benchmark::State& state) {
    net::enrichment enrich(make_db_file());
    if (!enrich.reload()) state.SkipWithError("db reload failed");
    const auto feed = make_feed(50000, 1, 7);
    std::shared_ptr<const net::asn_db> snap;
    std::uint64_t hits = 0;
    v6::bench::pmu_meter pmu(state, feed.size());
    for (auto _ : state)
        for (const stream_record& r : feed)
            if (enrich.lookup(r.addr, snap)) ++hits;
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
}
BENCHMARK(BM_enrich_lookup);

// The collector rx loop minus the socket: decode every datagram and
// push the records through ingest_batch into a live engine. Arg(0) is
// the raw path; Arg(1) tags every record through the enrichment
// snapshot and the per-ASN ledger. The tracked claim is that /1 stays
// within 10% of /0 (items_per_second).
void BM_wire_ingest(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 7);
    const auto datagrams = make_datagrams(feed);
    net::enrichment enrich(make_db_file());
    if (!enrich.reload()) state.SkipWithError("db reload failed");
    const bool enriched = state.range(0) != 0;
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        stream_engine engine(cfg);
        net::asn_ledger ledger;
        net::wire_decoder dec;
        net::lookup_cache cache;
        std::vector<stream_record> records;
        for (const auto& d : datagrams) {
            records.clear();
            dec.decode(d.data(), d.size(), records);
            net::ingest_batch(engine, records, enriched ? &enrich : nullptr,
                              enriched ? &ledger : nullptr, &cache);
        }
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().records);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(enriched ? "enriched" : "raw");
}
// Real time, not CPU time: the engine's shard threads do the bulk of
// the work off the timing thread, and wall clock is what the <10%
// enrichment-overhead claim is about.
BENCHMARK(BM_wire_ingest)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The block twin: decode each datagram straight into SoA lanes and feed
// the engine one push_block per datagram (a single push-lock
// acquisition), the path the collector rx loop and replay drivers run.
void BM_wire_ingest_block(benchmark::State& state) {
    const auto feed = make_feed(50000, 4, 7);
    const auto datagrams = make_datagrams(feed);
    net::enrichment enrich(make_db_file());
    if (!enrich.reload()) state.SkipWithError("db reload failed");
    const bool enriched = state.range(0) != 0;
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        stream_engine engine(cfg);
        net::asn_ledger ledger;
        net::wire_decoder dec;
        net::lookup_cache cache;
        simd::record_block block;
        for (const auto& d : datagrams) {
            block.clear();
            dec.decode(d.data(), d.size(), block);
            net::ingest_block(engine, block, enriched ? &enrich : nullptr,
                              enriched ? &ledger : nullptr, &cache);
        }
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().records);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(enriched ? "enriched" : "raw");
}
BENCHMARK(BM_wire_ingest_block)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_wire_decode_block(benchmark::State& state) {
    // Raw decode into lanes, no engine: pairs with BM_wire_decode.
    const auto datagrams = make_datagrams(make_feed(50000, 4, 7));
    std::size_t total = 0;
    v6::bench::pmu_meter pmu(state, 50000 * 4);
    for (auto _ : state) {
        net::wire_decoder dec;
        simd::record_block block;
        for (const auto& d : datagrams) {
            block.clear();
            dec.decode(d.data(), d.size(), block);
            benchmark::DoNotOptimize(block.addrs.hi());
        }
        total = dec.stats().records;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                            state.iterations());
}
BENCHMARK(BM_wire_decode_block);

}  // namespace

int main(int argc, char** argv) {
    return v6::bench::run_gbench_main(argc, argv, "BENCH_wire.json");
}
