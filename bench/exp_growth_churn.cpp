// exp_growth_churn — the dynamics behind Table 1's growth row: the
// active population doubles over the study year, but most of every day's
// addresses are freshly minted privacy identifiers, while /64s are the
// stable skeleton that actually grows with subscribers.
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/growth.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Growth and churn decomposition (Table 1 dynamics)", opt);
    const world w(world_cfg(opt));

    const daily_series addrs = w.series(kMar2015 - 4, kMar2015 + 4);
    const daily_series p64s = addrs.project(64);

    std::puts("day-over-day composition of the active address set:");
    std::printf("%-6s %10s %12s %10s %10s %12s\n", "day", "active", "returning",
                "revenant", "fresh", "fresh share");
    for (const churn_day& row : churn_analysis(addrs))
        std::printf("%-6d %10s %12s %10s %10s %12s\n", row.day,
                    format_count(static_cast<double>(row.active)).c_str(),
                    format_count(static_cast<double>(row.returning)).c_str(),
                    format_count(static_cast<double>(row.revenant)).c_str(),
                    format_count(static_cast<double>(row.fresh)).c_str(),
                    format_pct(row.fresh_share()).c_str());

    std::puts("\nand of the active /64 set:");
    std::printf("%-6s %10s %12s %10s %10s %12s\n", "day", "active", "returning",
                "revenant", "fresh", "fresh share");
    for (const churn_day& row : churn_analysis(p64s))
        std::printf("%-6d %10s %12s %10s %10s %12s\n", row.day,
                    format_count(static_cast<double>(row.active)).c_str(),
                    format_count(static_cast<double>(row.returning)).c_str(),
                    format_count(static_cast<double>(row.revenant)).c_str(),
                    format_count(static_cast<double>(row.fresh)).c_str(),
                    format_pct(row.fresh_share()).c_str());

    // Epoch growth, as in Table 1's columns.
    const daily_series epochs = w.series(kMar2014, kMar2014);
    daily_series both;
    both.set_day(kMar2014, epochs.day(kMar2014));
    both.set_day(kMar2015, addrs.day(kMar2015));
    const growth_report year = epoch_growth(both, kMar2014, kMar2015);
    std::printf(
        "\nMar'14 -> Mar'15: %s -> %s active addresses (factor %.2f; paper: "
        "149M -> 318M, 2.13x);\nonly %s (%s of the early set) survived the "
        "year as addresses.\n",
        format_count(static_cast<double>(year.early_active)).c_str(),
        format_count(static_cast<double>(year.late_active)).c_str(),
        year.growth_factor,
        format_count(static_cast<double>(year.common)).c_str(),
        format_pct(year.survivor_share).c_str());

    std::puts(
        "\nexpected shape: the address set is dominated by fresh privacy\n"
        "identifiers every single day (high fresh share), while the /64 set\n"
        "is mostly returning — growth in Table 1 is subscriber expansion on\n"
        "a churning address surface.");
    return 0;
}
