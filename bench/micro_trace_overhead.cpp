// micro_trace_overhead — cost of the execution tracer on the two hot
// paths the acceptance criteria name: streaming ingest (1M records
// through the sharded engine) and trie densify (1M addresses). Each
// pair runs the identical pipeline with the tracer disabled (/0) and
// enabled (/1); the /1 rate must stay within 3% of /0, and the
// disabled-span primitives at the bottom price the /0 residue (a
// relaxed load + branch, sub-nanosecond). The pmu pair prices
// obs::pmu_scope the same way (two perf read(2)s per batch when armed;
// the same relaxed load + branch when not). Dumps BENCH_trace.json via
// the shared registry reporter.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_gbench.h"
#include "v6class/netgen/iid.h"
#include "v6class/netgen/rng.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/trace.h"
#include "v6class/stream/engine.h"
#include "v6class/trie/radix_tree.h"

namespace {

using namespace v6;

/// Flips the tracer for the duration of one benchmark run and restores
/// the disabled state (discarding the rings) afterwards, so benchmarks
/// cannot observe each other's spans.
class tracer_toggle {
public:
    explicit tracer_toggle(bool enabled) {
        if (enabled) obs::tracer::enable();
    }
    ~tracer_toggle() { obs::tracer::reset(); }
};

/// Same idea for pmu_scope collection; restores the prior state so the
/// other benchmarks keep whatever run_gbench_main armed.
class pmu_toggle {
public:
    explicit pmu_toggle(bool on) : was_(obs::pmu::enabled()) {
        if (on)
            obs::pmu::enable();
        else
            obs::pmu::disable();
    }
    ~pmu_toggle() {
        if (was_)
            obs::pmu::enable();
        else
            obs::pmu::disable();
    }

private:
    bool was_;
};

std::vector<stream_record> make_feed(std::size_t per_day, int days,
                                     std::uint64_t seed) {
    rng r{seed};
    std::vector<address> pool;
    pool.reserve(per_day / 2);
    for (std::size_t i = 0; i < per_day / 2; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 10);
        const std::uint64_t lo = r.uniform(1u << 20);
        pool.push_back(address::from_pair(hi, lo));
    }
    std::vector<stream_record> feed;
    feed.reserve(per_day * static_cast<std::size_t>(days));
    for (int d = 0; d < days; ++d)
        for (std::size_t i = 0; i < per_day; ++i)
            feed.push_back({d, pool[r.uniform(pool.size())], 1 + r.uniform(4)});
    return feed;
}

std::vector<address> make_addresses(std::size_t n, std::uint64_t seed) {
    rng r{seed};
    std::vector<address> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t hi = 0x20010db800000000ull | r.uniform(1u << 14);
        const std::uint64_t lo =
            r.chance(0.6) ? privacy_iid(r()) : r.uniform(1u << 12);
        out.push_back(address::from_pair(hi, lo));
    }
    return out;
}

// Arg(0): 1 = tracer enabled, 0 = disabled. 1M records through the
// 4-shard engine — the span-per-batch + queue-wait-per-batch path.
void BM_stream_ingest_trace(benchmark::State& state) {
    const auto feed = make_feed(250000, 4, 99);
    const tracer_toggle toggle(state.range(0) != 0);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        cfg.metrics = false;  // isolate the tracer from the metrics cost
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().distinct_addresses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(state.range(0) ? "traced" : "untraced");
}
BENCHMARK(BM_stream_ingest_trace)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Arg(0): 1 = pmu_scope deltas collected, 0 = off. The identical
// 1M-record ingest with the tracer quiet, so the pair isolates the
// counter-scope cost on shard.ingest_batch/shard.seal/par.task. The
// acceptance bar (scripts/check.sh): /1 within 5% of /0. Where no PMU
// is exposed the scopes no-op and the pair measures the same code.
void BM_stream_ingest_pmu(benchmark::State& state) {
    const auto feed = make_feed(250000, 4, 99);
    const tracer_toggle quiet(false);
    const pmu_toggle toggle(state.range(0) != 0);
    for (auto _ : state) {
        stream_config cfg;
        cfg.shards = 4;
        cfg.metrics = false;
        stream_engine engine(cfg);
        for (const stream_record& rec : feed) engine.push(rec);
        engine.finish();
        benchmark::DoNotOptimize(engine.stats().distinct_addresses);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(feed.size()) *
                            state.iterations());
    state.SetLabel(state.range(0) ? "pmu" : "no-pmu");
}
BENCHMARK(BM_stream_ingest_pmu)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Arg(0) as above. Densify over a 1M-address trie wrapped in one span —
// a long span over a hot kernel, the worst case for per-span cost
// amortisation being irrelevant and the best case for the disabled
// branch predictor.
void BM_densify_trace(benchmark::State& state) {
    const auto addrs = make_addresses(1000000, 4);
    radix_tree t;
    for (const address& a : addrs) t.add(a);
    const tracer_toggle toggle(state.range(0) != 0);
    for (auto _ : state) {
        const obs::span span("bench.densify");
        benchmark::DoNotOptimize(t.densify(2, 112));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(addrs.size()) *
                            state.iterations());
    state.SetLabel(state.range(0) ? "traced" : "untraced");
}
BENCHMARK(BM_densify_trace)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The primitives in isolation: a disabled span is one relaxed load and
// a branch; an enabled span adds two clock reads and a seqlock write
// into the calling thread's ring.
void BM_span_disabled(benchmark::State& state) {
    const tracer_toggle toggle(false);
    for (auto _ : state) {
        const obs::span span("bench.noop");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_span_disabled);

void BM_span_enabled(benchmark::State& state) {
    const tracer_toggle toggle(true);
    for (auto _ : state) {
        const obs::span span("bench.hot");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_span_enabled);

void BM_pmu_scope_disabled(benchmark::State& state) {
    const pmu_toggle toggle(false);
    for (auto _ : state) {
        const obs::pmu_scope scope("bench.pmu_noop");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_pmu_scope_disabled);

void BM_pmu_scope_enabled(benchmark::State& state) {
    // Two group read(2)s per scope where the probe succeeded; identical
    // to the disabled case where it did not.
    const pmu_toggle toggle(true);
    for (auto _ : state) {
        const obs::pmu_scope scope("bench.pmu_hot");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_pmu_scope_enabled);

void BM_context_scope_enabled(benchmark::State& state) {
    const tracer_toggle toggle(true);
    const obs::span root("bench.root");
    for (auto _ : state) {
        const obs::context_scope adopt(root.context());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_context_scope_enabled);

}  // namespace

int main(int argc, char** argv) {
    return v6::bench::run_gbench_main(argc, argv, "BENCH_trace.json");
}
