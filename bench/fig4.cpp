// fig4 — regenerates the paper's Figure 4: the daily active counts and
// their overlap with two reference days (March 17 and March 23, 2015),
// for full addresses (a) and /64 prefixes (b).
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

namespace {

void print_panel(const char* title, const daily_series& series, int from, int to,
                 int ref_a, int ref_b) {
    stability_analyzer an(series);
    const auto overlap_a = an.overlap_series(ref_a, from, to);
    const auto overlap_b = an.overlap_series(ref_b, from, to);
    std::printf("%s\n", title);
    std::printf("%-8s %14s %16s %16s\n", "day", "active", "overlap(ref A)",
                "overlap(ref B)");
    for (int d = from; d <= to; ++d) {
        std::printf("%-8d %14s %16s %16s%s%s\n", d,
                    format_count(static_cast<double>(series.count(d))).c_str(),
                    format_count(static_cast<double>(
                                     overlap_a[static_cast<std::size_t>(d - from)]))
                        .c_str(),
                    format_count(static_cast<double>(
                                     overlap_b[static_cast<std::size_t>(d - from)]))
                        .c_str(),
                    d == ref_a ? "  <- ref A (Mar 17)" : "",
                    d == ref_b ? "  <- ref B (Mar 23)" : "");
    }
    std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figure 4: stability time-series around March 2015", opt);
    const world w(world_cfg(opt));

    // The paper's x axis runs March 10 .. March 30.
    const int from = kMar2015 - 7;
    const int to = kMar2015 + 13;
    const int ref_a = kMar2015;      // March 17
    const int ref_b = kMar2015 + 6;  // March 23
    std::printf("simulating days %d..%d...\n\n", from, to);
    const daily_series addrs = w.series(from, to);
    print_panel("(a) IPv6 address stability", addrs, from, to, ref_a, ref_b);
    print_panel("(b) /64 prefix stability", addrs.project(64), from, to, ref_a,
                ref_b);

    std::puts(
        "paper shape checks: overlap with the reference day drops steeply —\n"
        "stepwise — with distance (one day out retains a modest fraction of\n"
        "addresses), roughly symmetrically before/after; /64 overlap decays\n"
        "far more slowly than address overlap.");
    return 0;
}
