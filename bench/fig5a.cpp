// fig5a — regenerates the paper's Figure 5a: CCDFs across ASNs of the
// counts of active addresses, active /64s, EUI-64 addresses, and
// 6-month-stable /64s.
#include <map>

#include "bench_common.h"
#include "v6class/addrtype/classify.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"
#include "v6class/spatial/population.h"
#include "v6class/temporal/stability.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figure 5a: per-ASN count distributions", opt);
    const world w(world_cfg(opt));

    const auto now_week = week_addresses(w, kMar2015);
    const auto past_week = week_addresses(w, kSep2014);
    const auto stable_64s = epoch_stable(to_64s(now_week), to_64s(past_week));

    // The two group-by passes only read the registry (routes() is a pure
    // const accessor since the sorted-insert fix), so they fan out
    // through the pool; each task writes its own maps, and the emit
    // order below fixes stdout at any thread count.
    std::map<std::uint32_t, std::uint64_t> addrs_per_asn, p64s_per_asn,
        eui_per_asn, stable64_per_asn;
    {
        const timed_phase phase("group_by_asn");
        par::run_indexed(2, [&](std::size_t task) {
            if (task == 0) {
                const auto groups = group_by_asn(w.registry(), now_week);
                for (const auto& [asn, list] : groups) {
                    addrs_per_asn[asn] = list.size();
                    p64s_per_asn[asn] = to_64s(list).size();
                    std::uint64_t eui = 0;
                    for (const address& a : list)
                        if (is_eui64(a)) ++eui;
                    if (eui) eui_per_asn[asn] = eui;
                }
            } else {
                for (const auto& [asn, list] :
                     group_by_asn(w.registry(), stable_64s))
                    stable64_per_asn[asn] = list.size();
            }
        });
    }

    const auto emit = [](const char* label,
                         const std::map<std::uint32_t, std::uint64_t>& counts) {
        std::vector<std::uint64_t> samples;
        std::uint64_t max = 0;
        for (const auto& [asn, c] : counts) {
            samples.push_back(c);
            max = std::max(max, c);
        }
        std::printf("--- %s (%zu ASNs, max %s) ---\n", label, samples.size(),
                    format_count(static_cast<double>(max)).c_str());
        std::fputs(render_ccdf(ccdf_of(std::move(samples)), 12).c_str(), stdout);
        std::puts("");
    };
    emit("active addresses per ASN", addrs_per_asn);
    emit("active /64s per ASN", p64s_per_asn);
    emit("active EUI-64 addresses per ASN", eui_per_asn);
    emit("active 6-month-stable /64s per ASN", stable64_per_asn);

    // The paper's headline concentration figure: "74% of the /64s
    // observed as active during two weeks separated by 6 months are
    // associated with just 1 ASN."
    std::uint64_t top = 0, all = 0;
    for (const auto& [asn, c] : stable64_per_asn) {
        top = std::max(top, c);
        all += c;
    }
    std::printf("top ASN holds %s of the 6-month-stable /64s (paper: 74%%;\n"
                "our world is deliberately less mobile-dominated, so the\n"
                "plurality is smaller — concentration direction preserved)\n\n",
                format_pct(all ? static_cast<double>(top) /
                                     static_cast<double>(all)
                               : 0)
                    .c_str());

    std::puts(
        "paper shape checks: one exceptional ASN dominates the address count\n"
        "(the mobile carrier, 500M in the paper); most 6-month-stable /64s\n"
        "concentrate in a few ASNs — the long-lived /64s live in few networks.");
    return 0;
}
