// table1 — regenerates the paper's Table 1: active IPv6 WWW client
// address characteristics per day (a) and per week (b), at the three
// measurement epochs March 2014 / September 2014 / March 2015.
#include "bench_common.h"
#include "v6class/analysis/reports.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Table 1: active IPv6 WWW client address characteristics", opt);
    const world w(world_cfg(opt));

    std::puts("(a) Address characteristics per day");
    std::vector<table1_column> daily;
    daily.push_back(build_table1_column("Mar 17, 2014",
                                        w.active_addresses(kMar2014)));
    daily.push_back(build_table1_column("Sep 17, 2014",
                                        w.active_addresses(kSep2014)));
    daily.push_back(build_table1_column("Mar 17, 2015",
                                        w.active_addresses(kMar2015)));
    std::fputs(render_table1(daily).c_str(), stdout);

    std::puts("\n(b) Address characteristics per week");
    std::vector<table1_column> weekly;
    weekly.push_back(
        build_table1_column("Mar 17-23, 2014", week_addresses(w, kMar2014)));
    weekly.push_back(
        build_table1_column("Sep 17-23, 2014", week_addresses(w, kSep2014)));
    weekly.push_back(
        build_table1_column("Mar 17-23, 2015", week_addresses(w, kMar2015)));
    std::fputs(render_table1(weekly).c_str(), stdout);

    std::puts(
        "\npaper shape checks: Other >90% and growing; 6to4 share declining\n"
        "(~8% -> ~4%); Teredo/ISATAP vestigial; weekly addrs-per-/64 above\n"
        "daily; EUI-64 share ~1-2% and declining.");
    return 0;
}
