// fig5b — regenerates the paper's Figure 5b: the distribution of 16-bit
// segment MRA count ratios across all BGP prefixes, as box plots
// (median, middle 50%, middle 90%, whiskers to the extremes).
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/reports.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Figure 5b: 16-bit segment aggregation across BGP prefixes", opt);
    const world w(world_cfg(opt));

    const auto week = week_addresses(w, kMar2015);
    const auto groups = group_by_bgp_prefix(w.registry(), week);
    std::printf("%zu BGP prefixes with active clients (paper: 6.87K)\n\n",
                groups.size());

    const auto dist = segment_ratio_distribution(groups);
    text_table table({"segment", "min", "p5", "p25", "median", "p75", "p95",
                      "max"});
    for (std::size_t seg = 0; seg < dist.size(); ++seg) {
        const boxplot_summary& s = dist[seg];
        table.add_row({std::to_string(seg * 16) + "-" + std::to_string(seg * 16 + 16),
                       format_fixed(s.min, 2), format_fixed(s.p5, 2),
                       format_fixed(s.p25, 2), format_fixed(s.median, 2),
                       format_fixed(s.p75, 2), format_fixed(s.p95, 2),
                       format_fixed(s.max, 1)});
    }
    std::fputs(table.to_string().c_str(), stdout);

    std::puts(
        "\npaper shape checks: most aggregation falls in the three segments\n"
        "between bits 32 and 80; the 0-16 and 16-32 segments are flat\n"
        "(medians ~1); a visible upper quartile in the 112-128 segment marks\n"
        "the prefixes with dense low blocks (the Figure 5g kind).");
    return 0;
}
