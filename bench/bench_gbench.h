// bench_gbench.h — shared google-benchmark plumbing for the micro
// benches: a reporter that mirrors every finished run into the
// process-wide v6::obs registry, and the common main() body that arms
// the BENCH_<name>.json exit dump exactly like the table/figure drivers.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

namespace v6::bench {

/// Mirrors every finished run into the process-wide registry so the
/// bench_common exit dump writes a machine-readable baseline alongside
/// the console table.
class registry_reporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& reports) override {
        for (const Run& run : reports) {
            if (run.error_occurred) continue;
            const std::string name = run.benchmark_name();
            const double iters =
                run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
            obs::registry::global()
                .get_dgauge("v6_bench_benchmark_seconds", {{"benchmark", name}},
                            "Mean wall seconds per iteration of one "
                            "microbenchmark.")
                .set(run.real_accumulated_time / iters);
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end())
                obs::registry::global()
                    .get_dgauge("v6_bench_items_per_second",
                                {{"benchmark", name}},
                                "Throughput reported by one microbenchmark.")
                    .set(items->second.value);
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

/// The common micro-bench main(): google-benchmark flags first, then the
/// v6-style flags (--metrics-out, --no-metrics, --threads), then the run
/// with the registry reporter. `default_out` overrides the
/// BENCH_<argv0>.json default dump name (still beaten by --metrics-out).
inline int run_gbench_main(int argc, char** argv,
                           const char* default_out = nullptr) {
    benchmark::Initialize(&argc, argv);
    const options opt = parse_options(argc, argv);
    if (opt.metrics && detail::metrics_path().empty()) {
        detail::metrics_path() =
            !opt.metrics_out.empty() ? opt.metrics_out
            : default_out            ? std::string(default_out)
                                     : "BENCH_" + opt.program + ".json";
        // Construct the registry singleton BEFORE registering the dump:
        // exit teardown is LIFO, so the registry must predate the handler.
        (void)obs::registry::global();
        std::atexit(detail::dump_metrics_at_exit);
    }
    registry_reporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    return 0;
}

}  // namespace v6::bench
