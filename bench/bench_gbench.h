// bench_gbench.h — shared google-benchmark plumbing for the micro
// benches: a reporter that mirrors every finished run into the
// process-wide v6::obs registry, and the common main() body that arms
// the BENCH_<name>.json exit dump exactly like the table/figure drivers.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "v6class/obs/pmu.h"

namespace v6::bench {

/// Meters one benchmark's whole timing loop with the thread's PMU
/// group: construct before `for (auto _ : state)`, and the destructor
/// attaches `pmu_ipc` and `pmu_cache_misses_per_item` counters to the
/// run (which registry_reporter exports as v6_bench_ipc /
/// v6_bench_cache_misses_per_item). Counters only appear where the
/// hardware tier probed successfully, so baselines from PMU-less boxes
/// simply lack them and the IPC gate skips.
class pmu_meter {
public:
    pmu_meter(benchmark::State& state, std::size_t items_per_iteration)
        : state_(state),
          items_per_iteration_(items_per_iteration),
          begin_(obs::pmu::read_current()) {}

    ~pmu_meter() {
        using obs::pmu::counter;
        const obs::pmu::sample end = obs::pmu::read_current();
        if (!begin_.ok || !end.ok) return;
        if (!begin_.has(counter::cycles) || !begin_.has(counter::instructions))
            return;
        const std::uint64_t d_en = end.time_enabled - begin_.time_enabled;
        const std::uint64_t d_run = end.time_running - begin_.time_running;
        const auto delta = [&](counter c) {
            const std::uint64_t d =
                end[c] >= begin_[c] ? end[c] - begin_[c] : 0;
            return obs::pmu::scale_value(d, d_en, d_run);
        };
        const std::uint64_t cycles = delta(counter::cycles);
        if (cycles > 0)
            state_.counters["pmu_ipc"] = benchmark::Counter(
                static_cast<double>(delta(counter::instructions)) /
                static_cast<double>(cycles));
        const double items = static_cast<double>(state_.iterations()) *
                             static_cast<double>(items_per_iteration_);
        if (begin_.has(counter::cache_misses) && items > 0)
            state_.counters["pmu_cache_misses_per_item"] = benchmark::Counter(
                static_cast<double>(delta(counter::cache_misses)) / items);
    }

    pmu_meter(const pmu_meter&) = delete;
    pmu_meter& operator=(const pmu_meter&) = delete;

private:
    benchmark::State& state_;
    std::size_t items_per_iteration_;
    obs::pmu::sample begin_;
};

/// Mirrors every finished run into the process-wide registry so the
/// bench_common exit dump writes a machine-readable baseline alongside
/// the console table.
class registry_reporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& reports) override {
        for (const Run& run : reports) {
            if (run.error_occurred) continue;
            const std::string name = run.benchmark_name();
            const double iters =
                run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
            obs::registry::global()
                .get_dgauge("v6_bench_benchmark_seconds", {{"benchmark", name}},
                            "Mean wall seconds per iteration of one "
                            "microbenchmark.")
                .set(run.real_accumulated_time / iters);
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end())
                obs::registry::global()
                    .get_dgauge("v6_bench_items_per_second",
                                {{"benchmark", name}},
                                "Throughput reported by one microbenchmark.")
                    .set(items->second.value);
            const auto ipc = run.counters.find("pmu_ipc");
            if (ipc != run.counters.end())
                obs::registry::global()
                    .get_dgauge("v6_bench_ipc", {{"benchmark", name}},
                                "Instructions per cycle over the benchmark's "
                                "timing loop (hardware PMU only).")
                    .set(ipc->second.value);
            const auto misses = run.counters.find("pmu_cache_misses_per_item");
            if (misses != run.counters.end())
                obs::registry::global()
                    .get_dgauge("v6_bench_cache_misses_per_item",
                                {{"benchmark", name}},
                                "Last-level cache misses per processed item "
                                "(hardware PMU only).")
                    .set(misses->second.value);
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

/// The common micro-bench main(): google-benchmark flags first, then the
/// v6-style flags (--metrics-out, --no-metrics, --threads), then the run
/// with the registry reporter. `default_out` overrides the
/// BENCH_<argv0>.json default dump name (still beaten by --metrics-out).
inline int run_gbench_main(int argc, char** argv,
                           const char* default_out = nullptr) {
    benchmark::Initialize(&argc, argv);
    const options opt = parse_options(argc, argv);
    // Counting costs two read(2)s per metered benchmark run — nothing
    // inside the timing loop — so arm it whenever the probe succeeds.
    obs::pmu::enable();
    if (opt.metrics && detail::metrics_path().empty()) {
        detail::metrics_path() =
            !opt.metrics_out.empty() ? opt.metrics_out
            : default_out            ? std::string(default_out)
                                     : "BENCH_" + opt.program + ".json";
        // Construct the registry singleton BEFORE registering the dump:
        // exit teardown is LIFO, so the registry must predate the handler.
        (void)obs::registry::global();
        std::atexit(detail::dump_metrics_at_exit);
    }
    registry_reporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    return 0;
}

}  // namespace v6::bench
