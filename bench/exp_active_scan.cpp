// exp_active_scan — the Section 6.2.2 feasibility claim, quantified:
// surveying the spatially discovered dense blocks yields real hit rates,
// while blind scanning of the active BGP prefixes finds essentially
// nothing. ("A /112 prefix covers 2^16 addresses, the same as a /16 in
// IPv4, and is easily scanned, whereas scanning across a /64 is not
// practical.")
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/routersim/scan.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv);
    banner("Section 6.2.2: dense-block surveying vs blind scanning", opt);
    const world w(world_cfg(opt));

    // Live hosts on the scan day; dense prefixes learned from the
    // previous day's passive observations (the paper's workflow).
    const auto learn = cull_transition(w.active_addresses(kMar2015)).other;
    auto live = cull_transition(w.active_addresses(kMar2015 + 1)).other;
    std::sort(live.begin(), live.end());

    radix_tree tree;
    for (const address& a : learn) tree.add(a);
    const auto dense = tree.dense_prefixes_at(2, 112);
    std::printf("learned %zu 2@/112-dense prefixes from %s passive addrs\n\n",
                dense.size(),
                format_count(static_cast<double>(learn.size())).c_str());

    std::vector<prefix> bgp;
    for (const bgp_route& r : w.registry().routes()) bgp.push_back(r.pfx);

    std::printf("%-34s %10s %10s %12s\n", "strategy", "probes", "hits",
                "hit rate");
    for (const std::uint64_t budget : {100'000ull, 1'000'000ull}) {
        const survey_outcome survey = run_dense_survey(dense, live, budget);
        std::printf("%-34s %10s %10s %12.6f%%\n",
                    ("dense /112 survey (" +
                     std::to_string(survey.blocks_completed) + " blocks)")
                        .c_str(),
                    format_count(static_cast<double>(survey.scan.probes)).c_str(),
                    format_count(static_cast<double>(survey.scan.responders))
                        .c_str(),
                    survey.scan.hit_rate() * 100.0);
        const scan_outcome blind = run_random_scan(bgp, live, budget, opt.seed);
        std::printf("%-34s %10s %10s %12.6f%%\n", "blind scan of BGP prefixes",
                    format_count(static_cast<double>(blind.probes)).c_str(),
                    format_count(static_cast<double>(blind.responders)).c_str(),
                    blind.hit_rate() * 100.0);
    }

    std::puts(
        "\npaper shape check: the dense survey's hit rate is finite and\n"
        "useful (the blocks were chosen because multiple clients live\n"
        "there); blind probing of 2^64+ host spaces rounds to zero — the\n"
        "reason IPv6-wide ZMap-style sweeps are impossible and spatial\n"
        "classification is necessary.");
    return 0;
}
