// bench_common.h — shared plumbing for the experiment binaries: flag
// parsing and the week/day collection helpers every table and figure
// driver needs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "v6class/cdnsim/world.h"

namespace v6::bench {

/// Parses "--scale=X" and "--seed=N" style flags; anything else is
/// ignored so binaries can be launched uniformly.
struct options {
    double scale = 0.5;
    std::uint64_t seed = 42;
    unsigned tail_isps = 40;
};

inline options parse_options(int argc, char** argv, double default_scale = 0.5) {
    options opt;
    opt.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0)
            opt.scale = std::atof(arg + 8);
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
        else if (std::strncmp(arg, "--tail-isps=", 12) == 0)
            opt.tail_isps = static_cast<unsigned>(std::atoi(arg + 12));
    }
    return opt;
}

inline world_config world_cfg(const options& opt) {
    world_config cfg;
    cfg.seed = opt.seed;
    cfg.scale = opt.scale;
    cfg.tail_isps = opt.tail_isps;
    return cfg;
}

/// Distinct addresses active during the 7 days starting at `first_day`.
inline std::vector<address> week_addresses(const world& w, int first_day) {
    std::vector<address> out;
    for (int d = first_day; d < first_day + 7; ++d) {
        const auto day = w.active_addresses(d);
        out.insert(out.end(), day.begin(), day.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/// Masks to /64 and deduplicates.
inline std::vector<address> to_64s(const std::vector<address>& addrs) {
    std::vector<address> out;
    out.reserve(addrs.size());
    for (const address& a : addrs) out.push_back(a.masked(64));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

inline void banner(const char* title, const options& opt) {
    std::printf("=== %s ===\n", title);
    std::printf("(synthetic world: scale=%.2f seed=%llu; absolute counts are\n"
                " simulation-scale — compare shapes and proportions with the "
                "paper)\n\n",
                opt.scale, static_cast<unsigned long long>(opt.seed));
}

}  // namespace v6::bench
