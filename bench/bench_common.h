// bench_common.h — shared plumbing for the experiment binaries: flag
// parsing and the week/day collection helpers every table and figure
// driver needs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "v6class/cdnsim/world.h"
#include "v6class/obs/atomic_file.h"
#include "v6class/obs/metrics.h"
#include "v6class/obs/pmu.h"
#include "v6class/obs/profile.h"
#include "v6class/obs/timer.h"
#include "v6class/par/pool.h"

namespace v6::bench {

namespace detail {
inline std::string& metrics_path() {
    static std::string path;
    return path;
}
inline void dump_metrics_at_exit() {
    if (detail::metrics_path().empty()) return;
    if (!obs::registry::global().write_file(detail::metrics_path()))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     detail::metrics_path().c_str());
}
inline std::string& pmu_path() {
    static std::string path;
    return path;
}
inline void dump_pmu_at_exit() {
    if (detail::pmu_path().empty()) return;
    if (!obs::atomic_write_file(detail::pmu_path(),
                                obs::pmu::snapshot_json()))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     detail::pmu_path().c_str());
}
inline std::string& profile_path() {
    static std::string path;
    return path;
}
inline void dump_profile_at_exit() {
    if (detail::profile_path().empty()) return;
    obs::profiler::stop();
    if (!obs::atomic_write_file(detail::profile_path(),
                                obs::profiler::folded_text()))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     detail::profile_path().c_str());
}
}  // namespace detail

/// Parses "--scale=X" and "--seed=N" style flags; anything else is
/// ignored so binaries can be launched uniformly.
struct options {
    double scale = 0.5;
    std::uint64_t seed = 42;
    unsigned tail_isps = 40;
    std::string program = "bench";  // argv[0] basename, for BENCH_<name>.json
    std::string metrics_out;        // --metrics-out=F override
    bool metrics = true;            // --no-metrics disables the exit dump
    unsigned threads = 0;           // --threads=N; 0 = hardware concurrency
    std::string trace_out;          // --trace-out=F: span trace Chrome JSON
    std::string profile_out;        // --profile-out=F: folded stacks
    unsigned profile_hz = 97;       // --profile-hz=N sampling rate
    std::string pmu_out;            // --pmu-out=F: final PMU snapshot JSON
};

inline options parse_options(int argc, char** argv, double default_scale = 0.5) {
    options opt;
    opt.scale = default_scale;
    if (argc > 0 && argv[0] && *argv[0]) {
        const char* slash = std::strrchr(argv[0], '/');
        opt.program = slash ? slash + 1 : argv[0];
    }
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0)
            opt.scale = std::atof(arg + 8);
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
        else if (std::strncmp(arg, "--tail-isps=", 12) == 0)
            opt.tail_isps = static_cast<unsigned>(std::atoi(arg + 12));
        else if (std::strncmp(arg, "--metrics-out=", 14) == 0)
            opt.metrics_out = arg + 14;
        else if (std::strcmp(arg, "--no-metrics") == 0)
            opt.metrics = false;
        else if (std::strncmp(arg, "--threads=", 10) == 0)
            opt.threads = static_cast<unsigned>(std::atoi(arg + 10));
        else if (std::strncmp(arg, "--trace-out=", 12) == 0)
            opt.trace_out = arg + 12;
        else if (std::strncmp(arg, "--profile-out=", 14) == 0)
            opt.profile_out = arg + 14;
        else if (std::strncmp(arg, "--profile-hz=", 13) == 0)
            opt.profile_hz = static_cast<unsigned>(std::atoi(arg + 13));
        else if (std::strncmp(arg, "--pmu-out=", 10) == 0)
            opt.pmu_out = arg + 10;
    }
    // Results are deterministic at any width (index-keyed slots; see
    // DESIGN.md), so the flag only trades wall time.
    par::set_default_threads(opt.threads);
    if (!opt.trace_out.empty()) obs::trace_log::enable(opt.trace_out);
    if (!opt.profile_out.empty()) {
        detail::profile_path() = opt.profile_out;
        if (obs::profiler::start(opt.profile_hz))
            std::atexit(detail::dump_profile_at_exit);
    }
    if (!opt.pmu_out.empty()) {
        obs::pmu::enable();  // no-op where perf_event_open is denied
        detail::pmu_path() = opt.pmu_out;
        std::atexit(detail::dump_pmu_at_exit);
    }
    return opt;
}

/// RAII timer for a named section of a driver. Feeds the process-wide
/// registry (one v6_bench_phase_seconds series per phase label) and the
/// Chrome trace, so BENCH_<name>.json and the tools' --metrics-out share
/// one schema.
class timed_phase {
public:
    explicit timed_phase(const char* name)
        : span_(name, obs::registry::global().get_histogram(
                          "v6_bench_phase_seconds", obs::latency_buckets(),
                          {{"phase", name}},
                          "Wall time of one named bench-driver phase.")) {}

private:
    obs::trace_scope span_;
};

inline world_config world_cfg(const options& opt) {
    world_config cfg;
    cfg.seed = opt.seed;
    cfg.scale = opt.scale;
    cfg.tail_isps = opt.tail_isps;
    return cfg;
}

/// Distinct addresses active during the 7 days starting at `first_day`.
inline std::vector<address> week_addresses(const world& w, int first_day) {
    std::vector<address> out;
    for (int d = first_day; d < first_day + 7; ++d) {
        const auto day = w.active_addresses(d);
        out.insert(out.end(), day.begin(), day.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/// Masks to /64 and deduplicates.
inline std::vector<address> to_64s(const std::vector<address>& addrs) {
    std::vector<address> out;
    out.reserve(addrs.size());
    for (const address& a : addrs) out.push_back(a.masked(64));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

inline void banner(const char* title, const options& opt) {
    std::printf("=== %s ===\n", title);
    std::printf("(synthetic world: scale=%.2f seed=%llu; absolute counts are\n"
                " simulation-scale — compare shapes and proportions with the "
                "paper)\n\n",
                opt.scale, static_cast<unsigned long long>(opt.seed));
    // Every driver that prints a banner also dumps its timings on exit:
    // BENCH_<name>.json next to the cwd (or --metrics-out=F; --no-metrics
    // to skip), in the same JSON schema the tools' --metrics-out emits.
    if (opt.metrics && detail::metrics_path().empty()) {
        detail::metrics_path() = opt.metrics_out.empty()
                                     ? "BENCH_" + opt.program + ".json"
                                     : opt.metrics_out;
        // Construct the registry singleton BEFORE registering the dump:
        // exit teardown is LIFO, so the registry must predate the handler
        // or the dump would read a destroyed object.
        (void)obs::registry::global();
        std::atexit(detail::dump_metrics_at_exit);
    }
}

}  // namespace v6::bench
