// exp_stable_prefixes — the Section 7.2 proposal, implemented: discover
// the longest stable prefixes of network identifiers by tracking EUI-64
// beacons over time, and show they expose each operator's address plan.
#include "bench_common.h"
#include "v6class/analysis/format.h"
#include "v6class/analysis/plan_recon.h"

using namespace v6;
using namespace v6::bench;

int main(int argc, char** argv) {
    const options opt = parse_options(argc, argv, 0.4);
    banner("Section 7.2: longest stable prefixes from EUI-64 tracking", opt);
    const world w(world_cfg(opt));
    const int days = 45;

    struct subject {
        const char* label;
        const network_model* model;
        const char* expectation;
    };
    const subject subjects[] = {
        {"JP ISP (static /48s)", &w.japan(),
         "lengths pile up at 64: devices never leave their /64"},
        {"EU ISP (renumber-on-demand)", &w.europe(),
         "lengths pile up just above 40: bits 41.. churn"},
        {"US mobile (dynamic pools)", &w.mobile1(),
         "short lengths: /64s are pool slots, nothing deep is stable"},
    };

    for (const subject& s : subjects) {
        plan_reconstructor recon;
        for (int d = 0; d < days; ++d) {
            std::vector<observation> obs;
            s.model->day_activity(d, obs);
            std::vector<address> addrs;
            addrs.reserve(obs.size());
            for (const observation& o : obs) addrs.push_back(o.addr);
            recon.observe_day(addrs);
        }
        const auto hist = recon.length_histogram(2);
        std::uint64_t devices = 0;
        double weighted = 0;
        unsigned mode = 0;
        for (unsigned len = 0; len <= 128; ++len) {
            devices += hist[len];
            weighted += static_cast<double>(hist[len]) * len;
            if (hist[len] > hist[mode]) mode = len;
        }
        std::printf("%-30s devices=%6s  mean-len=%5.1f  modal-len=/%u\n",
                    s.label, format_count(static_cast<double>(devices)).c_str(),
                    devices ? weighted / static_cast<double>(devices) : 0.0, mode);
        std::printf("%-30s expectation: %s\n\n", "", s.expectation);
    }

    std::puts(
        "shape check: the three practices separate cleanly by stable-prefix\n"
        "length — a passive outside observer recovers where each operator's\n"
        "stable network identifier ends, i.e. the address plan's boundary.");
    return 0;
}
